//! Distributed-serve-tier integration tests — the guarantees behind
//! `qas coordinator` (see `qarchsearch::cluster`):
//!
//! * killing a shard (SIGKILL, no warning) migrates its incomplete jobs
//!   to a survivor and the final `SearchReport` is **bit-identical** to
//!   an undisturbed single-node run — both when a depth checkpoint was
//!   journaled (resumed migration) and when none was (from-scratch),
//! * per-tenant quotas reject at the edge with a retry-after hint and
//!   re-open when the tenant's jobs finish,
//! * a full cluster queue backpressures inside the bounded wait and
//!   rejects with a retry-after hint past it — never a bare `QueueFull`,
//! * the token-bucket rate limit rejects with a computed retry hint,
//! * `qas serve --port` serves multiple TCP connections concurrently.
//!
//! Shards are real `qas serve --port` subprocesses (debug build, so
//! `--fault-plan` drain delays are armed); the coordinator runs
//! in-process so the tests can reach its introspection API.

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::report::SearchReport;
use qarchsearch_suite::qarchsearch::{ClusterConfig, Coordinator, ShardEndpoint};
use qarchsearch_suite::serde_json::{self, json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn qas_bin() -> &'static str {
    env!("CARGO_BIN_EXE_qas")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qas-cluster-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An armed drain delay: every `worker.rung` hit sleeps, which slows the
/// shard's event drain (and therefore checkpoint/result journaling)
/// without perturbing the deterministic search itself — exactly the
/// window a kill test needs.
fn delay_plan(millis: u64) -> String {
    format!(
        r#"{{"faults":[{{"site":"worker.rung","job":null,"hit":0,"action":{{"Delay":{{"millis":{millis}}}}}}}]}}"#
    )
}

/// One `qas serve --port` shard subprocess with a durable state dir.
struct ShardProc {
    child: Child,
    addr: String,
    state_dir: PathBuf,
}

impl ShardProc {
    fn spawn(tag: &str, extra_args: &[&str]) -> ShardProc {
        let port = {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap().port()
        };
        let state_dir = temp_dir(tag);
        let child = Command::new(qas_bin())
            .args([
                "serve",
                "--port",
                &port.to_string(),
                "--bind",
                "127.0.0.1",
                "--state-dir",
                state_dir.to_str().unwrap(),
                "--shard-id",
                tag,
            ])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let addr = format!("127.0.0.1:{port}");
        let deadline = Instant::now() + Duration::from_secs(20);
        while TcpStream::connect(&addr).is_err() {
            assert!(
                Instant::now() < deadline,
                "shard {tag} never started listening on {addr}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        ShardProc {
            child,
            addr,
            state_dir,
        }
    }

    fn endpoint(&self) -> ShardEndpoint {
        ShardEndpoint::new(self.addr.clone()).with_state_dir(self.state_dir.clone())
    }

    /// SIGKILL — no shutdown handshake, no journal flushes beyond what
    /// already hit the filesystem.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Wait for the process to exit on its own (after a protocol
    /// `shutdown`), failing the test if it lingers.
    fn await_exit(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            if self.child.try_wait().unwrap().is_some() {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "shard did not exit after shutdown"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
        let _ = std::fs::remove_dir_all(&self.state_dir);
    }
}

/// Test-speed cluster config: fast heartbeats, quick death verdicts.
fn cluster_config(shards: Vec<ShardEndpoint>) -> ClusterConfig {
    let mut config = ClusterConfig::new(shards);
    config.heartbeat_ms = 100;
    config.heartbeat_misses = 2;
    config.connect_timeout_ms = 500;
    config.request_timeout_ms = 5_000;
    config
}

/// A multi-depth, multi-rung job: enough journal records for the kill
/// windows, fast enough to re-run from scratch.
fn cluster_spec(seed: u64, max_depth: usize) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(max_depth)
        .max_gates_per_mixer(1)
        .optimizer_budget(30)
        .halving(10, 2)
        .backend(qarchsearch_suite::qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    let graphs = vec![Graph::connected_erdos_renyi(6, 0.5, seed, 50)];
    JobSpec::new(config, graphs).name(format!("cluster-{seed}"))
}

/// The undisturbed single-node baseline: same spec through an in-process
/// `JobServer`, reduced to timing-free report bytes.
fn reference_report(spec: JobSpec) -> String {
    let server = JobServer::start(JobServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..JobServerConfig::default()
    });
    let id = server.submit(spec).unwrap();
    let report = SearchReport::from(&server.wait(id).unwrap().unwrap())
        .without_timings()
        .to_json();
    server.shutdown();
    report
}

/// Externally-tagged event kinds ("Started", "DepthCompleted",
/// "Migrated", …); unit variants serialize as bare strings.
fn event_kinds(events: &[Value]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| {
            e.as_str().map(str::to_string).or_else(|| {
                e.as_object()
                    .and_then(|entries| entries.first())
                    .map(|(k, _)| k.clone())
            })
        })
        .collect()
}

fn find_migrated_event(events: &[Value]) -> Option<Value> {
    events.iter().find_map(|e| {
        e.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == "Migrated"))
            .map(|(_, v)| v.clone())
    })
}

/// Shared body of the two kill tests: submit, wait for `ready` on the
/// event stream, kill the owner, and assert the migrated result is
/// byte-identical to the single-node baseline.
fn kill_and_assert_bit_identical(
    seed: u64,
    drain_delay_ms: u64,
    post_detect_sleep_ms: u64,
    ready: impl Fn(&[String]) -> bool,
) -> (Value, Vec<Value>) {
    let spec = cluster_spec(seed, 2);
    let baseline = reference_report(spec.clone());

    let plan = delay_plan(drain_delay_ms);
    let mut s1 = ShardProc::spawn(
        &format!("kill-{seed}-a"),
        &["--workers", "1", "--fault-plan", &plan],
    );
    let mut s2 = ShardProc::spawn(
        &format!("kill-{seed}-b"),
        &["--workers", "1", "--fault-plan", &plan],
    );
    let coordinator =
        Coordinator::start(cluster_config(vec![s1.endpoint(), s2.endpoint()])).unwrap();

    let submission = coordinator.submit(spec, None).unwrap();
    let id = submission.id;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (events, _) = coordinator.events(id, 0).unwrap();
        let kinds = event_kinds(&events);
        assert!(
            !kinds.iter().any(|k| k == "Finished"),
            "job drained to completion before the kill; raise the drain delay"
        );
        if ready(&kinds) {
            break;
        }
        assert!(Instant::now() < deadline, "kill window never opened");
        std::thread::sleep(Duration::from_millis(10));
    }
    if post_detect_sleep_ms > 0 {
        std::thread::sleep(Duration::from_millis(post_detect_sleep_ms));
    }
    let owner = coordinator.shard_of(id).expect("job is placed on a shard");
    if owner == s1.addr {
        s1.kill();
    } else {
        s2.kill();
    }

    let envelope = coordinator.wait(id).unwrap();
    assert_eq!(
        envelope.get("done").and_then(Value::as_bool),
        Some(true),
        "wait must return a terminal envelope: {envelope:?}"
    );
    assert!(
        envelope.get("error").is_none(),
        "migrated job failed: {envelope:?}"
    );
    assert!(
        coordinator.migrations() >= 1,
        "the kill must have migrated at least one job"
    );

    let (events, _) = coordinator.events(id, 0).unwrap();
    assert!(
        event_kinds(&events).iter().any(|k| k == "Migrated"),
        "event stream must narrate the migration: {events:?}"
    );

    let report_value = envelope.get("report").cloned().expect("report present");
    let report: SearchReport = serde_json::from_value(&report_value).unwrap();
    assert!(
        report.migrated,
        "the moved job's report must carry the migrated flag"
    );
    assert_eq!(
        report.without_timings().to_json(),
        baseline,
        "migrated run diverged from the undisturbed single-node run"
    );
    coordinator.shutdown(true);
    (envelope, events)
}

#[test]
fn sigkill_after_a_checkpoint_resumes_on_a_survivor_bit_identically() {
    // Kill once depth 1's checkpoint is journaled (the DepthCompleted
    // event and its checkpoint record are written back-to-back; the
    // short sleep covers the gap). The drain delay then holds the
    // terminal result back for ≥2 more rung delays, so the journal the
    // coordinator replays has the checkpoint but no result: a resumed
    // migration.
    let (_, events) = kill_and_assert_bit_identical(11, 900, 150, |kinds| {
        kinds.iter().any(|k| k == "DepthCompleted")
    });
    let migrated = find_migrated_event(&events).expect("Migrated event recorded");
    assert_eq!(
        migrated.get("resumed").and_then(Value::as_bool),
        Some(true),
        "a journaled checkpoint must make the migration a resume: {migrated:?}"
    );
}

#[test]
fn sigkill_before_any_checkpoint_restarts_from_scratch_bit_identically() {
    // Kill as soon as the first rung lands, well inside the ≥900 ms the
    // drain delay leaves before depth 1's checkpoint can be journaled:
    // the replayed journal holds only the submission, so the job
    // restarts from scratch on the survivor.
    let (_, events) = kill_and_assert_bit_identical(13, 900, 0, |kinds| {
        kinds.iter().any(|k| k == "RungCompleted") && !kinds.iter().any(|k| k == "DepthCompleted")
    });
    let migrated = find_migrated_event(&events).expect("Migrated event recorded");
    assert_eq!(
        migrated.get("resumed").and_then(Value::as_bool),
        Some(false),
        "without a checkpoint the migration must restart from scratch: {migrated:?}"
    );
}

#[test]
fn tenant_quota_rejects_at_the_edge_and_releases_on_completion() {
    let plan = delay_plan(700);
    let shard = ShardProc::spawn("quota", &["--workers", "2", "--fault-plan", &plan]);
    let mut config = cluster_config(vec![shard.endpoint()]);
    config.admission.tenant_quota = 2;
    let coordinator = Coordinator::start(config).unwrap();

    // Two acme jobs in flight fill the quota (distinct seeds: identical
    // specs would dedupe on the shard and be born terminal).
    let a = coordinator
        .submit(cluster_spec(71, 1), Some("acme".to_string()))
        .unwrap();
    let b = coordinator
        .submit(cluster_spec(72, 1), Some("acme".to_string()))
        .unwrap();
    let denied = coordinator
        .submit(cluster_spec(73, 1), Some("acme".to_string()))
        .unwrap_err();
    match denied {
        SearchError::AdmissionDenied {
            reason,
            retry_after_ms,
        } => {
            assert!(reason.contains("quota"), "unexpected reason: {reason}");
            assert!(retry_after_ms >= 1, "hint must suggest a wait");
        }
        other => panic!("expected AdmissionDenied, got {other:?}"),
    }

    // Other tenants and anonymous submissions are unaffected.
    let c = coordinator
        .submit(cluster_spec(74, 1), Some("globex".to_string()))
        .unwrap();
    for id in [a.id, b.id, c.id] {
        let envelope = coordinator.wait(id).unwrap();
        assert!(envelope.get("error").is_none(), "{envelope:?}");
    }

    // Observed terminal states hand the quota slots back.
    let again = coordinator
        .submit(cluster_spec(75, 1), Some("acme".to_string()))
        .unwrap();
    coordinator.wait(again.id).unwrap();

    let stats = coordinator.stats();
    assert_eq!(stats.admission.rejected_quota, 1, "{:?}", stats.admission);
    assert_eq!(stats.admission.admitted, 4, "{:?}", stats.admission);
    coordinator.shutdown(true);
}

#[test]
fn full_cluster_queue_backpressures_then_rejects_with_a_retry_hint() {
    // One slow shard with a one-slot queue: one job running, one queued,
    // everything else is backpressure.
    let plan = delay_plan(600);
    let shard = ShardProc::spawn(
        "backpressure",
        &["--workers", "1", "--queue", "1", "--fault-plan", &plan],
    );

    let mut patient_config = cluster_config(vec![shard.endpoint()]);
    patient_config.admission.max_wait_ms = 20_000;
    patient_config.admission.retry_poll_ms = 25;
    let patient = Coordinator::start(patient_config).unwrap();

    let j1 = patient.submit(cluster_spec(81, 1), None).unwrap();
    let j2 = patient.submit(cluster_spec(82, 1), None).unwrap();
    // The queue is now full: this submission must ride the bounded wait
    // until a slot frees, then place — the edge never surfaces QueueFull.
    let j3 = patient.submit(cluster_spec(83, 1), None).unwrap();

    // A zero-wait edge pointed at the same (still clogged) shard fails
    // fast — but with a retry-after hint, not a bare QueueFull.
    let mut impatient_config = cluster_config(vec![shard.endpoint()]);
    impatient_config.admission.max_wait_ms = 0;
    impatient_config.admission.retry_poll_ms = 25;
    let impatient = Coordinator::start(impatient_config).unwrap();
    match impatient.submit(cluster_spec(84, 1), None).unwrap_err() {
        SearchError::AdmissionDenied {
            reason,
            retry_after_ms,
        } => {
            assert!(reason.contains("queue"), "unexpected reason: {reason}");
            assert!(retry_after_ms >= 1, "hint must suggest a wait");
        }
        other => panic!("expected AdmissionDenied, got {other:?}"),
    }
    assert_eq!(impatient.stats().admission.rejected_backpressure, 1);
    impatient.shutdown(false);

    for id in [j1.id, j2.id, j3.id] {
        let envelope = patient.wait(id).unwrap();
        assert!(envelope.get("error").is_none(), "{envelope:?}");
    }
    patient.shutdown(true);
}

#[test]
fn rate_limit_rejects_with_a_computed_retry_hint() {
    let shard = ShardProc::spawn("rate", &["--workers", "1"]);
    let mut config = cluster_config(vec![shard.endpoint()]);
    config.admission.rate_per_sec = 0.2;
    config.admission.burst = 2;
    let coordinator = Coordinator::start(config).unwrap();

    let a = coordinator.submit(cluster_spec(91, 1), None).unwrap();
    let b = coordinator.submit(cluster_spec(92, 1), None).unwrap();
    match coordinator.submit(cluster_spec(93, 1), None).unwrap_err() {
        SearchError::AdmissionDenied {
            reason,
            retry_after_ms,
        } => {
            assert!(reason.contains("rate limit"), "unexpected reason: {reason}");
            // The bucket drains 2 tokens instantly; at 0.2/s the next
            // token is ~5 s out (minus the microseconds already elapsed).
            assert!(
                retry_after_ms > 1_000,
                "hint must reflect the refill rate, got {retry_after_ms}"
            );
        }
        other => panic!("expected AdmissionDenied, got {other:?}"),
    }
    assert_eq!(coordinator.stats().admission.rejected_rate_limit, 1);
    for id in [a.id, b.id] {
        coordinator.wait(id).unwrap();
    }
    coordinator.shutdown(true);
}

#[test]
fn tcp_serve_handles_concurrent_connections() {
    let mut shard = ShardProc::spawn("tcp-concurrent", &["--workers", "1"]);

    let connect = |tag: &str| -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(&shard.addr)
            .unwrap_or_else(|e| panic!("client {tag} cannot connect: {e}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (reader, stream)
    };
    let request = |reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, body: Value| {
        writeln!(writer, "{}", serde_json::to_string(&body).unwrap()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str::<Value>(line.trim()).unwrap()
    };

    // Client A connects first and stays idle; under the old sequential
    // accept loop, client B would block behind it forever.
    let (mut reader_a, mut writer_a) = connect("a");
    let (mut reader_b, mut writer_b) = connect("b");
    let stats_b = request(&mut reader_b, &mut writer_b, json!({ "cmd": "stats" }));
    assert_eq!(stats_b.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        stats_b
            .get("stats")
            .and_then(|s| s.get("shard_id"))
            .and_then(Value::as_str),
        Some("tcp-concurrent"),
        "stats must report the --shard-id: {stats_b:?}"
    );
    // A is still live and interleaves freely with B.
    let stats_a = request(&mut reader_a, &mut writer_a, json!({ "cmd": "stats" }));
    assert_eq!(stats_a.get("ok").and_then(Value::as_bool), Some(true));
    assert!(
        stats_a
            .get("stats")
            .and_then(|s| s.get("uptime_secs"))
            .and_then(Value::as_f64)
            .is_some_and(|u| u >= 0.0),
        "stats must report uptime: {stats_a:?}"
    );

    // A `shutdown` on one connection stops the whole server, including
    // the accept loop and B's idle connection thread.
    let bye = request(&mut reader_b, &mut writer_b, json!({ "cmd": "shutdown" }));
    assert_eq!(bye.get("shutdown").and_then(Value::as_bool), Some(true));
    shard.await_exit();
}
