//! Integration tests that check the qualitative claims of the paper's
//! evaluation section at reduced scale (the full-scale reproduction lives in
//! the `qarchsearch-bench` figure binaries; see EXPERIMENTS.md).

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::evaluator::{Evaluator, EvaluatorConfig};

fn evaluator() -> Evaluator {
    Evaluator::new(EvaluatorConfig {
        backend: Backend::StateVector,
        budget: 60,
        ..EvaluatorConfig::default()
    })
}

#[test]
fn search_space_accounting_matches_the_paper() {
    // §3.1: alphabet of 5, k = 1..4, p = 1..4 → 2500 circuit combinations.
    let alphabet = GateAlphabet::paper_default();
    assert_eq!(alphabet.len(), 5);
    assert_eq!(alphabet.search_space_size(4, 4), 2500);
}

#[test]
fn fig7_rx_ry_is_the_best_candidate_at_p1() {
    // Fig. 7: ('rx','ry') achieves the highest approximation ratio at p = 1
    // on random 4-regular graphs.
    let dataset = graphs::datasets::random_regular_dataset(3, 8, 4, 41);
    let eval = evaluator();
    let mut ratios = Vec::new();
    for mixer in Mixer::fig7_candidates() {
        let result = eval.evaluate(&dataset, &mixer, 1).unwrap();
        ratios.push((mixer.label(), result.mean_approx_ratio));
    }
    let best = ratios
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .clone();
    assert_eq!(best.0, "('rx', 'ry')", "ratios: {ratios:?}");
}

#[test]
fn fig8_qnas_is_competitive_with_baseline_on_er_graphs() {
    // Fig. 8 reports the searched (qnas) mixer slightly ahead of the baseline
    // on ER graphs (both within [0.986, 1.0]). Under exhaustive angle
    // optimization on our seeded instances the shared-β RX·RY mixer is *not*
    // strictly ahead of plain RX at p = 1 (see EXPERIMENTS.md, "Fig. 8
    // deviation"), so the reproducible claim asserted here is comparability:
    // both mixers reach similar, well-above-random ratios.
    let dataset = graphs::datasets::erdos_renyi_dataset(3, 8, 55);
    let eval = evaluator();

    let mut baseline_mean = 0.0;
    let mut qnas_mean = 0.0;
    for p in 1..=2usize {
        baseline_mean += eval
            .evaluate(&dataset, &Mixer::baseline(), p)
            .unwrap()
            .mean_approx_ratio;
        qnas_mean += eval
            .evaluate(&dataset, &Mixer::qnas(), p)
            .unwrap()
            .mean_approx_ratio;
    }
    baseline_mean /= 2.0;
    qnas_mean /= 2.0;
    assert!(
        baseline_mean > 0.6,
        "baseline ratio {baseline_mean} suspiciously low"
    );
    assert!(qnas_mean > 0.6, "qnas ratio {qnas_mean} suspiciously low");
    assert!(
        (baseline_mean - qnas_mean).abs() < 0.12,
        "baseline {baseline_mean} and qnas {qnas_mean} are not comparable"
    );
}

#[test]
fn fig9_both_mixers_are_comparable_on_regular_graphs() {
    // Fig. 9: baseline and qnas perform comparably on 4-regular graphs.
    let dataset = graphs::datasets::random_regular_dataset(3, 8, 4, 71);
    let eval = evaluator();
    for p in 1..=2usize {
        let baseline = eval
            .evaluate(&dataset, &Mixer::baseline(), p)
            .unwrap()
            .mean_approx_ratio;
        let qnas = eval
            .evaluate(&dataset, &Mixer::qnas(), p)
            .unwrap()
            .mean_approx_ratio;
        assert!(
            (baseline - qnas).abs() < 0.15,
            "p={p}: baseline {baseline} and qnas {qnas} diverge"
        );
    }
}

#[test]
fn deeper_qaoa_improves_the_approximation_ratio() {
    // The premise behind sweeping p in Figs. 4 and 9: more layers help (or at
    // least do not hurt) the trained approximation ratio.
    let graph = Graph::random_regular(8, 4, 19).unwrap();
    let eval = evaluator();
    let r1 = eval
        .evaluate_on_graph(&graph, &Mixer::baseline(), 1)
        .unwrap()
        .approx_ratio;
    let r2 = eval
        .evaluate_on_graph(&graph, &Mixer::baseline(), 2)
        .unwrap()
        .approx_ratio;
    assert!(r2 >= r1 - 0.05, "p=2 ratio {r2} much worse than p=1 {r1}");
}

#[test]
fn fig6_winner_emerges_from_a_restricted_search() {
    // With the alphabet restricted to {rx, ry} the exhaustive search over
    // two-gate mixers must rank a mixing two-gate candidate at the top —
    // the structural claim behind Fig. 6 (the winner uses both rotations).
    let graphs = vec![Graph::connected_erdos_renyi(8, 0.5, 23, 50)];
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(1)
        .max_gates_per_mixer(2)
        .optimizer_budget(60)
        .backend(Backend::StateVector)
        .seed(3)
        .build();
    let outcome = SearchDriver::new(config.with_mode(ExecutionMode::Serial))
        .run(&graphs)
        .unwrap();
    assert!(
        !outcome.best.gates.is_empty(),
        "winner should exist, got {:?}",
        outcome.best.gates
    );
    // The winner is at least as good as the plain RX baseline evaluated the
    // same way.
    let eval = evaluator();
    let baseline = eval
        .evaluate(&graphs, &Mixer::baseline(), 1)
        .unwrap()
        .mean_energy;
    assert!(outcome.best.energy >= baseline - 0.05);
}
