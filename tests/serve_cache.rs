//! Integration tests for the serve-path caching tier — the guarantees
//! behind `qas serve`'s result cache and request coalescing:
//!
//! * an identical resubmission is served from the result cache with a
//!   `cache_hit` event and a report bit-identical (timings aside) to the
//!   computed one,
//! * concurrent identical submissions coalesce onto exactly one
//!   execution (singleflight) and all receive bit-identical results,
//! * cancelling a follower only detaches it; cancelling a leader promotes
//!   a follower and the shared execution survives,
//! * forgetting one subscriber's record never evicts the cached result or
//!   another subscriber's terminal record,
//! * the durable cache tier (`--cache-dir`) survives restarts and torn
//!   journal tails without ever serving a partial report,
//! * `ServerOptions { cache: None
//! * `ServerOptions { cache: None     shard_id: None,
//! * `ServerOptions { cache: None }` (the `--no-cache` path) computes
//!   results bit-identical to the cached path.

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::report::SearchReport;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qas-serve-cache-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fast single-depth job (the cached/coalesced subject).
fn subject_spec(seed: u64) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx"]).unwrap())
        .max_depth(1)
        .max_gates_per_mixer(1)
        .optimizer_budget(15)
        .no_prune()
        .backend(qarchsearch_suite::qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    JobSpec::new(config, vec![Graph::cycle(4)])
}

/// A slower job used to occupy the single worker so that identical
/// submissions queue behind it and coalesce deterministically.
fn blocker_spec(seed: u64) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(2)
        .max_gates_per_mixer(2)
        .optimizer_budget(40)
        .no_prune()
        .backend(qarchsearch_suite::qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    JobSpec::new(config, vec![Graph::connected_erdos_renyi(6, 0.5, seed, 50)])
}

fn single_worker_server() -> JobServer {
    JobServer::start(JobServerConfig {
        workers: 1,
        queue_capacity: 32,
        ..JobServerConfig::default()
    })
}

fn report_bytes(outcome: &SearchOutcome) -> String {
    SearchReport::from(outcome).without_timings().to_json()
}

#[test]
fn identical_resubmission_is_served_from_the_result_cache() {
    let server = single_worker_server();
    let first = server.submit(subject_spec(11)).unwrap();
    let computed = report_bytes(&server.wait(first).unwrap().unwrap());

    let second = server.submit(subject_spec(11)).unwrap();
    let cached = report_bytes(&server.wait(second).unwrap().unwrap());
    assert_eq!(cached, computed, "cached report must be bit-identical");

    let status = server.status(second).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert!(status.cache_hit, "second submission must be a cache hit");
    assert!(!status.coalesced);
    assert!(!server.status(first).unwrap().cache_hit);

    // The hit's synthetic stream: a cache_hit event then the terminal
    // finished event, nothing else.
    let (events, _) = server.events_since(second, 0).unwrap();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(kinds, vec!["cache_hit", "finished"]);

    let stats = server.stats();
    let cache = stats.cache.expect("caching is on by default");
    assert_eq!(cache.hits, 1);
    assert_eq!(cache.misses, 1);
    assert_eq!(cache.insertions, 1);
    assert_eq!(cache.entries, 1);
    assert_eq!(stats.jobs_completed, 2);
    server.shutdown();
}

#[test]
fn concurrent_identical_submissions_run_exactly_one_execution() {
    const FAN: usize = 8;
    let server = single_worker_server();
    // Occupy the single worker so the identical fan-out stays queued and
    // attaches to one leader instead of racing the cache.
    let blocker = server.submit(blocker_spec(1)).unwrap();
    let ids: Vec<JobId> = (0..FAN)
        .map(|_| server.submit(subject_spec(42)).unwrap())
        .collect();

    let reports: Vec<String> = ids
        .iter()
        .map(|id| report_bytes(&server.wait(*id).unwrap().unwrap()))
        .collect();
    for report in &reports {
        assert_eq!(report, &reports[0], "all subscribers see the same bytes");
    }
    server.wait(blocker).unwrap().unwrap();

    let stats = server.stats();
    let cache = stats.cache.unwrap();
    // blocker + one leader executed; the other FAN-1 attached in flight.
    assert_eq!(cache.misses, 2, "exactly one execution for the fan-out");
    assert_eq!(cache.coalesced, (FAN - 1) as u64);
    assert_eq!(cache.insertions, 2);
    assert_eq!(cache.hits, 0);

    let mut coalesced = 0;
    for id in &ids {
        let status = server.status(*id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert!(!status.cache_hit);
        assert!(
            status.events_recorded >= 2,
            "followers mirror the full event stream"
        );
        if status.coalesced {
            coalesced += 1;
        }
    }
    assert_eq!(coalesced, FAN - 1);
    server.shutdown();
}

#[test]
fn cancelling_a_follower_detaches_without_stopping_the_shared_run() {
    let server = single_worker_server();
    let blocker = server.submit(blocker_spec(2)).unwrap();
    let leader = server.submit(subject_spec(77)).unwrap();
    let follower_a = server.submit(subject_spec(77)).unwrap();
    let follower_b = server.submit(subject_spec(77)).unwrap();

    assert!(server.cancel(follower_a), "follower cancel detaches");
    let detached = server.wait(follower_a).unwrap();
    assert!(matches!(detached, Err(SearchError::Cancelled)));
    assert_eq!(
        server.status(follower_a).unwrap().state,
        JobState::Cancelled
    );

    // The shared execution is unaffected: leader and the other follower
    // still complete, bit-identically.
    let leader_report = report_bytes(&server.wait(leader).unwrap().unwrap());
    let follower_report = report_bytes(&server.wait(follower_b).unwrap().unwrap());
    assert_eq!(leader_report, follower_report);
    server.wait(blocker).unwrap().unwrap();
    server.shutdown();
}

#[test]
fn cancelling_a_queued_leader_promotes_a_follower() {
    let server = single_worker_server();
    let blocker = server.submit(blocker_spec(3)).unwrap();
    let leader = server.submit(subject_spec(99)).unwrap();
    let follower = server.submit(subject_spec(99)).unwrap();
    assert!(server.status(follower).unwrap().coalesced);

    assert!(server.cancel(leader), "leader cancel is accepted");
    let cancelled = server.wait(leader).unwrap();
    assert!(matches!(cancelled, Err(SearchError::Cancelled)));

    // The follower inherited the execution and still completes.
    let result = server.wait(follower).unwrap().unwrap();
    assert_eq!(server.status(follower).unwrap().state, JobState::Completed);
    let (events, _) = server.events_since(follower, 0).unwrap();
    assert!(
        events.iter().any(|e| e.kind() == "finished"),
        "promoted follower records the terminal event"
    );
    // And the promoted execution's result was cached for later hits.
    let probe = server.submit(subject_spec(99)).unwrap();
    let probe_report = report_bytes(&server.wait(probe).unwrap().unwrap());
    assert!(server.status(probe).unwrap().cache_hit);
    assert_eq!(probe_report, report_bytes(&result));
    server.wait(blocker).unwrap().unwrap();
    server.shutdown();
}

#[test]
fn cancelling_a_running_leader_keeps_followers_alive() {
    let server = single_worker_server();
    // The blocker itself is the shared execution here: submit it, wait for
    // it to start running, then attach a follower to the live run.
    let leader = server.submit(blocker_spec(4)).unwrap();
    for _ in 0..200 {
        if server.status(leader).unwrap().state == JobState::Running {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let follower = server.submit(blocker_spec(4)).unwrap();
    let follower_status = server.status(follower).unwrap();
    // Depending on timing the second submission either coalesced onto the
    // live run or (if the run already finished) hit the cache. Both are
    // valid; only an independent re-execution would be wrong.
    assert!(
        follower_status.coalesced || follower_status.cache_hit,
        "identical submission must attach or hit, got {follower_status:?}"
    );
    if follower_status.coalesced {
        assert!(server.cancel(leader), "running leader cancel is accepted");
        let cancelled = server.wait(leader).unwrap();
        assert!(matches!(cancelled, Err(SearchError::Cancelled)));
    }
    // Either way the follower still gets the full result.
    let result = server.wait(follower).unwrap();
    assert!(result.is_ok(), "promoted follower completes: {result:?}");
    assert_eq!(server.status(follower).unwrap().state, JobState::Completed);
    server.shutdown();
}

#[test]
fn forgetting_one_subscriber_leaves_shared_state_intact() {
    let server = single_worker_server();
    let blocker = server.submit(blocker_spec(5)).unwrap();
    let leader = server.submit(subject_spec(55)).unwrap();
    let follower_a = server.submit(subject_spec(55)).unwrap();
    let follower_b = server.submit(subject_spec(55)).unwrap();

    // Forget refuses non-terminal subscribers (cancel first).
    assert!(!server.forget(follower_a));

    server.wait(blocker).unwrap().unwrap();
    let baseline = report_bytes(&server.wait(leader).unwrap().unwrap());
    server.wait(follower_a).unwrap().unwrap();
    server.wait(follower_b).unwrap().unwrap();

    // Dropping one subscriber's record must not touch the others' records
    // or the cached result.
    assert!(server.forget(follower_a));
    assert!(matches!(
        server.status(follower_a),
        Err(SearchError::UnknownJob { .. })
    ));
    assert_eq!(
        report_bytes(&server.result(leader).unwrap().unwrap().unwrap()),
        baseline
    );
    assert_eq!(
        report_bytes(&server.result(follower_b).unwrap().unwrap().unwrap()),
        baseline
    );
    let (events, _) = server.events_since(follower_b, 0).unwrap();
    assert!(!events.is_empty(), "surviving subscriber keeps its stream");

    let probe = server.submit(subject_spec(55)).unwrap();
    assert!(
        server.status(probe).unwrap().cache_hit,
        "cached result survives forgetting a subscriber"
    );
    assert_eq!(
        report_bytes(&server.wait(probe).unwrap().unwrap()),
        baseline
    );
    server.shutdown();
}

#[test]
fn mismatched_schedule_does_not_coalesce() {
    let server = single_worker_server();
    let blocker = server.submit(blocker_spec(6)).unwrap();
    let leader = server.submit(subject_spec(31)).unwrap();
    // Same content, different deadline: must not ride an execution with a
    // different cancellation schedule.
    let strict = server
        .submit(subject_spec(31).timeout_secs(3600.0))
        .unwrap();
    assert!(!server.status(strict).unwrap().coalesced);
    assert!(server.status(strict).unwrap().state == JobState::Queued);
    server.wait(blocker).unwrap().unwrap();
    let a = report_bytes(&server.wait(leader).unwrap().unwrap());
    let b = report_bytes(&server.wait(strict).unwrap().unwrap());
    assert_eq!(a, b, "both executions still agree bit-for-bit");
    server.shutdown();
}

#[test]
fn durable_cache_survives_restart() {
    let cache_dir = temp_dir("durable-cache");
    let options = || ServerOptions {
        store: None,
        faults: None,
        cache: Some(CacheConfig::with_capacity(8).durable(&cache_dir)),
        shard_id: None,
    };
    let computed = {
        let server = JobServer::launch(JobServerConfig::default(), options()).unwrap();
        let id = server.submit(subject_spec(123)).unwrap();
        let bytes = report_bytes(&server.wait(id).unwrap().unwrap());
        server.shutdown();
        bytes
    };
    let server = JobServer::launch(JobServerConfig::default(), options()).unwrap();
    let id = server.submit(subject_spec(123)).unwrap();
    let recovered = report_bytes(&server.wait(id).unwrap().unwrap());
    assert!(
        server.status(id).unwrap().cache_hit,
        "hit must survive the restart via the cache journal"
    );
    assert_eq!(recovered, computed);
    server.shutdown();
}

#[test]
fn torn_cache_journal_never_serves_a_partial_report() {
    // Reference: one cached outcome, journal captured after shutdown.
    let cache_dir = temp_dir("torn-cache");
    let options = |dir: &std::path::Path| ServerOptions {
        store: None,
        faults: None,
        cache: Some(CacheConfig::with_capacity(8).durable(dir)),
        shard_id: None,
    };
    let computed = {
        let server = JobServer::launch(JobServerConfig::default(), options(&cache_dir)).unwrap();
        let id = server.submit(subject_spec(7)).unwrap();
        let bytes = report_bytes(&server.wait(id).unwrap().unwrap());
        server.shutdown();
        bytes
    };
    let journal = std::fs::read(cache_dir.join("journal.log")).unwrap();
    assert!(!journal.is_empty());

    // Simulate a crash after every byte prefix of the cache journal
    // (including mid-record tears). Recovery must always launch, and the
    // resubmission must always produce the reference bytes — served from
    // the cache when the record survived, recomputed when it tore, never
    // a partial or corrupted report.
    let step = (journal.len() / 24).max(1);
    for cut in (0..=journal.len()).step_by(step) {
        let crash_dir = temp_dir(&format!("torn-cache-{cut}"));
        std::fs::write(crash_dir.join("journal.log"), &journal[..cut]).unwrap();
        let server = JobServer::launch(JobServerConfig::default(), options(&crash_dir)).unwrap();
        let id = server.submit(subject_spec(7)).unwrap();
        let bytes = report_bytes(&server.wait(id).unwrap().unwrap());
        assert_eq!(bytes, computed, "cut at byte {cut}/{}", journal.len());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&crash_dir);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn disabled_cache_is_bit_identical_to_the_cached_path() {
    let cached_server = single_worker_server();
    let uncached_server = JobServer::launch(
        JobServerConfig {
            workers: 1,
            queue_capacity: 32,
            ..JobServerConfig::default()
        },
        ServerOptions {
            store: None,
            faults: None,
            cache: None,
            shard_id: None,
        },
    )
    .unwrap();

    let a = cached_server.submit(subject_spec(500)).unwrap();
    let b = uncached_server.submit(subject_spec(500)).unwrap();
    let cached = report_bytes(&cached_server.wait(a).unwrap().unwrap());
    let uncached = report_bytes(&uncached_server.wait(b).unwrap().unwrap());
    assert_eq!(cached, uncached, "--no-cache pins the pre-cache results");

    // With the cache off, an identical resubmission runs again: no hit,
    // no coalescing, no stats.
    let again = uncached_server.submit(subject_spec(500)).unwrap();
    let rerun = report_bytes(&uncached_server.wait(again).unwrap().unwrap());
    assert_eq!(rerun, uncached);
    let status = uncached_server.status(again).unwrap();
    assert!(!status.cache_hit);
    assert!(!status.coalesced);
    let stats = uncached_server.stats();
    assert!(stats.cache.is_none());
    assert!(stats.energy_cache.is_none());
    cached_server.shutdown();
    uncached_server.shutdown();
}
