//! Integration tests: full searches through the public API of the facade
//! crate, spanning every layer (graphs → qaoa → simulators → search).

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::search::SearchStrategy;

fn small_config() -> SearchConfig {
    SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry", "h"]).unwrap())
        .max_depth(2)
        .max_gates_per_mixer(2)
        .optimizer_budget(30)
        .backend(qarchsearch_suite::qaoa::Backend::StateVector)
        .seed(5)
        .build()
}

fn training_graphs() -> Vec<Graph> {
    vec![
        Graph::connected_erdos_renyi(8, 0.5, 1, 50),
        Graph::connected_erdos_renyi(8, 0.4, 2, 50),
    ]
}

#[test]
fn serial_search_end_to_end() {
    let outcome = SerialSearch::new(small_config())
        .run(&training_graphs())
        .unwrap();
    // Space per depth: 3 + 9 = 12 candidates, 2 depths.
    assert_eq!(outcome.num_candidates_evaluated, 24);
    assert_eq!(outcome.depth_results.len(), 2);
    // The winner must beat the plus-state baseline of every graph (i.e. have
    // learned something) and stay below the optimum.
    assert!(outcome.best.approx_ratio > 0.5);
    assert!(outcome.best.approx_ratio <= 1.0 + 1e-9);
    assert!(outcome.best.energy.is_finite());
    // Timings are recorded for every depth.
    for d in &outcome.depth_results {
        assert!(d.elapsed_seconds > 0.0);
        assert!(d.best_energy <= outcome.best.energy + 1e-9);
    }
}

#[test]
fn parallel_search_matches_serial_winner() {
    // In paper-faithful mode (pruning/warm-start/gate off) the parallel
    // pipeline reproduces the serial full-budget search bit for bit.
    let graphs = training_graphs();
    let serial = SerialSearch::new(small_config()).run(&graphs).unwrap();
    let mut cfg = small_config();
    cfg.threads = Some(2);
    cfg.pipeline = qarchsearch_suite::qarchsearch::PipelineConfig::full_budget();
    let parallel = ParallelSearch::new(cfg).run(&graphs).unwrap();

    assert_eq!(
        serial.num_candidates_evaluated,
        parallel.num_candidates_evaluated
    );
    assert_eq!(serial.best.mixer_label, parallel.best.mixer_label);
    assert_eq!(serial.best.energy, parallel.best.energy);
    assert_eq!(
        serial.total_optimizer_evaluations,
        parallel.total_optimizer_evaluations
    );
}

#[test]
fn budget_aware_pipeline_saves_budget_at_competitive_energy() {
    // The default ParallelSearch pipeline (successive halving + warm
    // starts) spends a fraction of the full budget and still lands within
    // optimizer noise of the exhaustive winner.
    let graphs = training_graphs();
    let mut full_cfg = small_config();
    full_cfg.threads = Some(2);
    full_cfg.pipeline = qarchsearch_suite::qarchsearch::PipelineConfig::full_budget();
    let full = ParallelSearch::new(full_cfg).run(&graphs).unwrap();

    let mut pruned_cfg = small_config();
    pruned_cfg.threads = Some(2);
    pruned_cfg.pipeline.first_rung = 10;
    let pruned = ParallelSearch::new(pruned_cfg).run(&graphs).unwrap();

    assert!(pruned.total_optimizer_evaluations < full.total_optimizer_evaluations);
    assert!(pruned.budget_savings_factor() > 1.0);
    assert!(
        pruned.best.energy >= full.best.energy - 0.1,
        "pruned {} vs full {}",
        pruned.best.energy,
        full.best.energy
    );
    // Rung accounting is visible end to end.
    assert!(pruned.depth_results.iter().all(|d| !d.rungs.is_empty()));
}

#[test]
fn winner_is_a_mixing_circuit() {
    // A purely diagonal mixer cannot beat a mixing one, so the winner must
    // contain at least one non-diagonal gate.
    let outcome = SerialSearch::new(small_config())
        .run(&training_graphs())
        .unwrap();
    let mixing = outcome.best.gates.iter().any(|g| !g.is_diagonal());
    assert!(
        mixing,
        "winner {:?} contains only diagonal gates",
        outcome.best.gates
    );
}

#[test]
fn deeper_search_does_not_lose_energy() {
    // The best over depths 1..=2 is at least as good as the best at depth 1
    // (same candidate space per depth, more depths searched).
    let graphs = training_graphs();
    let mut shallow_cfg = small_config();
    shallow_cfg.max_depth = 1;
    let shallow = SerialSearch::new(shallow_cfg).run(&graphs).unwrap();
    let deep = SerialSearch::new(small_config()).run(&graphs).unwrap();
    assert!(deep.best.energy >= shallow.best.energy - 0.1);
}

#[test]
fn random_strategy_search_runs_through_facade() {
    let mut cfg = small_config();
    cfg.strategy = SearchStrategy::Random {
        samples_per_depth: 5,
    };
    let outcome = ParallelSearch::new(cfg).run(&training_graphs()).unwrap();
    assert_eq!(outcome.num_candidates_evaluated, 10);
    assert!(outcome.best.energy > 0.0);
}

#[test]
fn search_report_serializes() {
    let outcome = SerialSearch::new(small_config())
        .run(&training_graphs())
        .unwrap();
    let report = qarchsearch_suite::qarchsearch::report::SearchReport::from(&outcome);
    let json = report.to_json();
    assert!(json.contains("best_mixer"));
    assert!(json.contains("per_depth_seconds"));
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(
        parsed["candidates"],
        serde_json::json!(outcome.num_candidates_evaluated)
    );
}
