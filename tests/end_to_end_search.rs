//! Integration tests: full searches through the public API of the facade
//! crate, spanning every layer (graphs → qaoa → simulators → search), plus
//! the session layer (event streams, cancellation, checkpoint/resume).

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::search::SearchStrategy;

fn small_config() -> SearchConfig {
    SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry", "h"]).unwrap())
        .max_depth(2)
        .max_gates_per_mixer(2)
        .optimizer_budget(30)
        .backend(qarchsearch_suite::qaoa::Backend::StateVector)
        .seed(5)
        .build()
}

fn training_graphs() -> Vec<Graph> {
    vec![
        Graph::connected_erdos_renyi(8, 0.5, 1, 50),
        Graph::connected_erdos_renyi(8, 0.4, 2, 50),
    ]
}

#[test]
fn serial_search_end_to_end() {
    let outcome = SearchDriver::new(small_config().with_mode(ExecutionMode::Serial))
        .run(&training_graphs())
        .unwrap();
    // Space per depth: 3 + 9 = 12 candidates, 2 depths.
    assert_eq!(outcome.num_candidates_evaluated, 24);
    assert_eq!(outcome.depth_results.len(), 2);
    // The winner must beat the plus-state baseline of every graph (i.e. have
    // learned something) and stay below the optimum.
    assert!(outcome.best.approx_ratio > 0.5);
    assert!(outcome.best.approx_ratio <= 1.0 + 1e-9);
    assert!(outcome.best.energy.is_finite());
    // Timings are recorded for every depth.
    for d in &outcome.depth_results {
        assert!(d.elapsed_seconds > 0.0);
        assert!(d.best_energy <= outcome.best.energy + 1e-9);
    }
}

#[test]
fn parallel_search_matches_serial_winner() {
    // In paper-faithful mode (pruning/warm-start/gate off) the parallel
    // pipeline reproduces the serial full-budget search bit for bit.
    let graphs = training_graphs();
    let serial = SearchDriver::new(small_config().with_mode(ExecutionMode::Serial))
        .run(&graphs)
        .unwrap();
    let mut cfg = small_config();
    cfg.threads = Some(2);
    cfg.pipeline = qarchsearch_suite::qarchsearch::PipelineConfig::full_budget();
    let parallel = SearchDriver::new(cfg.with_mode(ExecutionMode::Parallel))
        .run(&graphs)
        .unwrap();

    assert_eq!(
        serial.num_candidates_evaluated,
        parallel.num_candidates_evaluated
    );
    assert_eq!(serial.best.mixer_label, parallel.best.mixer_label);
    assert_eq!(serial.best.energy, parallel.best.energy);
    assert_eq!(
        serial.total_optimizer_evaluations,
        parallel.total_optimizer_evaluations
    );
}

#[test]
fn budget_aware_pipeline_saves_budget_at_competitive_energy() {
    // The default parallel pipeline (successive halving + warm
    // starts) spends a fraction of the full budget and still lands within
    // optimizer noise of the exhaustive winner.
    let graphs = training_graphs();
    let mut full_cfg = small_config();
    full_cfg.threads = Some(2);
    full_cfg.pipeline = qarchsearch_suite::qarchsearch::PipelineConfig::full_budget();
    let full = SearchDriver::new(full_cfg.with_mode(ExecutionMode::Parallel))
        .run(&graphs)
        .unwrap();

    let mut pruned_cfg = small_config();
    pruned_cfg.threads = Some(2);
    pruned_cfg.pipeline.first_rung = 10;
    let pruned = SearchDriver::new(pruned_cfg.with_mode(ExecutionMode::Parallel))
        .run(&graphs)
        .unwrap();

    assert!(pruned.total_optimizer_evaluations < full.total_optimizer_evaluations);
    assert!(pruned.budget_savings_factor() > 1.0);
    assert!(
        pruned.best.energy >= full.best.energy - 0.1,
        "pruned {} vs full {}",
        pruned.best.energy,
        full.best.energy
    );
    // Rung accounting is visible end to end.
    assert!(pruned.depth_results.iter().all(|d| !d.rungs.is_empty()));
}

#[test]
fn winner_is_a_mixing_circuit() {
    // A purely diagonal mixer cannot beat a mixing one, so the winner must
    // contain at least one non-diagonal gate.
    let outcome = SearchDriver::new(small_config().with_mode(ExecutionMode::Serial))
        .run(&training_graphs())
        .unwrap();
    let mixing = outcome.best.gates.iter().any(|g| !g.is_diagonal());
    assert!(
        mixing,
        "winner {:?} contains only diagonal gates",
        outcome.best.gates
    );
}

#[test]
fn deeper_search_does_not_lose_energy() {
    // The best over depths 1..=2 is at least as good as the best at depth 1
    // (same candidate space per depth, more depths searched).
    let graphs = training_graphs();
    let mut shallow_cfg = small_config();
    shallow_cfg.max_depth = 1;
    let shallow = SearchDriver::new(shallow_cfg.with_mode(ExecutionMode::Serial))
        .run(&graphs)
        .unwrap();
    let deep = SearchDriver::new(small_config().with_mode(ExecutionMode::Serial))
        .run(&graphs)
        .unwrap();
    assert!(deep.best.energy >= shallow.best.energy - 0.1);
}

#[test]
fn random_strategy_search_runs_through_facade() {
    let mut cfg = small_config();
    cfg.strategy = SearchStrategy::Random {
        samples_per_depth: 5,
    };
    let outcome = SearchDriver::new(cfg.with_mode(ExecutionMode::Parallel))
        .run(&training_graphs())
        .unwrap();
    assert_eq!(outcome.num_candidates_evaluated, 10);
    assert!(outcome.best.energy > 0.0);
}

// ---------------------------------------------------------------------------
// Session layer: event streams, cancellation, checkpoint/resume.

/// A pipeline configuration that exercises every event type: pruning rungs,
/// the predictor gate (from depth 2), warm starts.
fn session_config(threads: usize) -> SearchConfig {
    let mut cfg = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(2)
        .max_gates_per_mixer(2)
        .optimizer_budget(30)
        .backend(qarchsearch_suite::qaoa::Backend::StateVector)
        .halving(10, 2)
        .predictor_gate(3)
        .seed(5)
        .threads(threads)
        .build();
    cfg.mode = ExecutionMode::Parallel;
    cfg
}

#[test]
fn event_stream_is_deterministic_across_worker_counts() {
    // Events carry no wall-clock state and are emitted from the driver
    // thread at deterministic points, so the full stream must be identical
    // at 1, 2 and 4 workers for a fixed seed.
    let graphs = training_graphs();
    let reference: Vec<SearchEvent> = {
        let handle = SearchDriver::new(session_config(1)).start(&graphs).unwrap();
        let events = handle.events().iter().collect();
        handle.wait().unwrap();
        events
    };
    assert!(matches!(
        reference.first(),
        Some(SearchEvent::Started { .. })
    ));
    assert!(matches!(
        reference.last(),
        Some(SearchEvent::Finished { .. })
    ));
    // The stream exercises the full taxonomy.
    for kind in [
        "depth_started",
        "session_advanced",
        "rung_completed",
        "candidate_pruned",
        "candidates_gated",
        "candidate_evaluated",
        "depth_completed",
    ] {
        assert!(
            reference.iter().any(|e| e.kind() == kind),
            "no {kind} event in the stream"
        );
    }
    for threads in [2usize, 4] {
        let handle = SearchDriver::new(session_config(threads))
            .start(&graphs)
            .unwrap();
        let events: Vec<SearchEvent> = handle.events().iter().collect();
        handle.wait().unwrap();
        assert_eq!(
            events, reference,
            "event stream diverged at {threads} workers"
        );
    }
}

#[test]
fn cancel_checkpoint_resume_is_bit_identical_to_uninterrupted() {
    // Reference: one uninterrupted run.
    let graphs = training_graphs();
    let mut cfg = session_config(2);
    cfg.max_depth = 3;
    let reference = SearchDriver::new(cfg.clone()).run(&graphs).unwrap();

    // Interrupted run: cancel as soon as the first depth completes, then
    // checkpoint → serialize → deserialize → resume. Whatever boundary the
    // cancellation actually lands on (the engine races ahead of the event
    // consumer), the resumed outcome must reproduce the reference bit for
    // bit — that is the whole point of the checkpoint design.
    let handle = SearchDriver::new(cfg).start(&graphs).unwrap();
    for event in handle.events().iter() {
        if matches!(event, SearchEvent::DepthCompleted { depth: 1, .. }) {
            handle.cancel();
        }
    }
    let partial = handle.wait();
    let checkpoint = handle.checkpoint();
    if let Ok(partial) = &partial {
        // The drained partial outcome only contains completed depths.
        assert_eq!(partial.depth_results.len(), checkpoint.completed.len());
        assert!(partial.depth_results.len() <= 3);
    }
    let json = qarchsearch_suite::serde_json::to_string(&checkpoint).unwrap();
    let restored: SearchCheckpoint = qarchsearch_suite::serde_json::from_str(&json).unwrap();

    let resumed = SearchDriver::resume(restored).unwrap().wait().unwrap();
    assert_eq!(resumed.depth_results.len(), reference.depth_results.len());
    assert_eq!(
        resumed.best.energy.to_bits(),
        reference.best.energy.to_bits()
    );
    assert_eq!(resumed.best.mixer_label, reference.best.mixer_label);
    assert_eq!(
        resumed.total_optimizer_evaluations,
        reference.total_optimizer_evaluations
    );
    for (dr, dref) in resumed.depth_results.iter().zip(&reference.depth_results) {
        assert_eq!(dr.rungs, dref.rungs);
        assert_eq!(dr.gated_out, dref.gated_out);
        for (cr, cref) in dr.candidates.iter().zip(&dref.candidates) {
            assert_eq!(cr.mean_energy.to_bits(), cref.mean_energy.to_bits());
            assert_eq!(cr.per_graph, cref.per_graph);
            assert_eq!(cr.pruned_at_rung, cref.pruned_at_rung);
        }
    }
}

#[test]
fn serial_cancel_checkpoint_resume_matches_uninterrupted() {
    // The serial engine carries no cross-depth state, so its checkpoint is
    // just config + completed depths — resume must still be bit-identical.
    let graphs = training_graphs();
    let mut cfg = small_config();
    cfg.mode = ExecutionMode::Serial;
    let reference = SearchDriver::new(cfg.clone()).run(&graphs).unwrap();

    let handle = SearchDriver::new(cfg).start(&graphs).unwrap();
    for event in handle.events().iter() {
        if matches!(event, SearchEvent::DepthCompleted { depth: 1, .. }) {
            handle.cancel();
        }
    }
    let _ = handle.wait();
    let resumed = SearchDriver::resume(handle.checkpoint())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        resumed.best.energy.to_bits(),
        reference.best.energy.to_bits()
    );
    assert_eq!(
        resumed.total_optimizer_evaluations,
        reference.total_optimizer_evaluations
    );
}

#[test]
fn progress_snapshots_track_depth_boundaries() {
    let graphs = training_graphs();
    let handle = SearchDriver::new(session_config(2)).start(&graphs).unwrap();
    let outcome = handle.wait().unwrap();
    let progress = handle.progress();
    assert_eq!(progress.status, SearchStatus::Finished);
    assert_eq!(progress.depths_completed, 2);
    assert_eq!(
        progress.candidates_evaluated,
        outcome.num_candidates_evaluated
    );
    assert_eq!(
        progress.optimizer_evaluations,
        outcome.total_optimizer_evaluations
    );
    assert_eq!(
        progress.best_energy.map(f64::to_bits),
        Some(outcome.best.energy.to_bits())
    );
}

#[test]
fn search_report_serializes() {
    let outcome = SearchDriver::new(small_config().with_mode(ExecutionMode::Serial))
        .run(&training_graphs())
        .unwrap();
    let report = qarchsearch_suite::qarchsearch::report::SearchReport::from(&outcome);
    let json = report.to_json();
    assert!(json.contains("best_mixer"));
    assert!(json.contains("per_depth_seconds"));
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(
        parsed["candidates"],
        serde_json::json!(outcome.num_candidates_evaluated)
    );
}
