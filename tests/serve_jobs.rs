//! Integration tests for the multi-job [`JobServer`] — the engine behind
//! `qas serve`: concurrent jobs, priorities, the bounded queue, and
//! interleaved cancellation.

use qarchsearch_suite::prelude::*;

fn job_spec(seed: u64, max_depth: usize) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(max_depth)
        .max_gates_per_mixer(2)
        .optimizer_budget(30)
        .halving(10, 2)
        .backend(qarchsearch_suite::qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    let graphs = vec![
        Graph::connected_erdos_renyi(7, 0.5, seed, 50),
        Graph::connected_erdos_renyi(7, 0.4, seed + 1, 50),
    ];
    JobSpec::new(config, graphs).name(format!("job-{seed}"))
}

#[test]
fn concurrent_jobs_complete_with_interleaved_cancellation() {
    // ≥3 concurrent jobs to completion with one more cancelled in between —
    // the acceptance shape of the serve front door.
    let server = JobServer::start(JobServerConfig {
        workers: 2,
        queue_capacity: 16,
        ..JobServerConfig::default()
    });

    let a = server.submit(job_spec(1, 2)).unwrap();
    let b = server.submit(job_spec(2, 2)).unwrap();
    // The victim has more depths so a cooperative cancellation has room to
    // land mid-run; either way its terminal state must be clean.
    let victim = server.submit(job_spec(3, 4)).unwrap();
    let c = server.submit(job_spec(4, 2).priority(3)).unwrap();

    assert!(server.cancel(victim));

    for id in [a, b, c] {
        let result = server.wait(id).unwrap();
        let outcome = result.unwrap_or_else(|e| panic!("job {id} failed: {e}"));
        assert!(outcome.best.energy.is_finite());
        assert_eq!(outcome.depth_results.len(), 2);
        let status = server.status(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert!(status.events_recorded > 0);
        // The recorded stream ends with the terminal event.
        let (events, next) = server.events_since(id, 0).unwrap();
        assert_eq!(next, events.len());
        assert!(events.last().unwrap().is_terminal());
    }

    // The victim reached a terminal state: fully cancelled (instantly from
    // the queue, or cooperatively with a partial outcome) — or, if it was
    // already done before the cancel landed, completed.
    let victim_result = server.wait(victim).unwrap();
    let status = server.status(victim).unwrap();
    match status.state {
        JobState::Cancelled => match victim_result {
            Ok(partial) => assert!(partial.depth_results.len() < 4),
            Err(e) => assert!(matches!(e, SearchError::Cancelled)),
        },
        JobState::Completed => {
            assert_eq!(victim_result.unwrap().depth_results.len(), 4);
        }
        other => panic!("victim in unexpected state {other}"),
    }

    server.shutdown();
}

#[test]
fn job_results_match_a_direct_driver_run_bitwise() {
    // Serving must not change results: a job's outcome equals the same
    // config driven directly, bit for bit.
    let spec = job_spec(7, 2);
    let direct = SearchDriver::new(spec.config.clone())
        .run(&spec.graphs)
        .unwrap();

    let server = JobServer::start(JobServerConfig {
        workers: 3,
        queue_capacity: 8,
        ..JobServerConfig::default()
    });
    // Surround it with noise jobs so the scheduler actually multiplexes.
    let noise1 = server.submit(job_spec(8, 1)).unwrap();
    let id = server.submit(spec).unwrap();
    let noise2 = server.submit(job_spec(9, 1)).unwrap();

    let served = server.wait(id).unwrap().unwrap();
    assert_eq!(served.best.energy.to_bits(), direct.best.energy.to_bits());
    assert_eq!(served.best.mixer_label, direct.best.mixer_label);
    assert_eq!(
        served.total_optimizer_evaluations,
        direct.total_optimizer_evaluations
    );
    for id in [noise1, noise2] {
        server.wait(id).unwrap().unwrap();
    }
    server.shutdown();
}

#[test]
fn shutdown_cancels_queued_jobs() {
    let server = JobServer::start(JobServerConfig {
        workers: 1,
        queue_capacity: 8,
        ..JobServerConfig::default()
    });
    let ids: Vec<JobId> = (0..5)
        .map(|i| server.submit(job_spec(i, 3)).unwrap())
        .collect();
    server.shutdown();
    // Nothing to assert post-shutdown (the server is consumed); reaching
    // here without deadlock is the point. Keep the ids alive for clarity.
    assert_eq!(ids.len(), 5);
}
