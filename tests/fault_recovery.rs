//! Crash-safety integration tests for the durable `JobServer` — the
//! guarantees behind `qas serve --state-dir`:
//!
//! * kill/restart at **every** journal-record boundary resumes to a
//!   bit-identical `SearchReport` (the checkpoint/replay pin),
//! * a torn journal tail is dropped and replay still recovers,
//! * a panicking job is isolated (`Failed` with the panic message) while
//!   its neighbours — and the worker pool — stay healthy,
//! * per-job deadlines expire into `TimedOut`,
//! * injected transient failures retry with backoff and still converge to
//!   the fault-free result,
//! * graceful shutdown suspends in-flight work for the next launch.

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::fault::site;
use qarchsearch_suite::qarchsearch::report::SearchReport;
use std::path::PathBuf;

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qas-fault-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but multi-depth, multi-rung job: enough journal records to make
/// the kill sweep interesting, fast enough to re-run from every prefix.
fn durable_spec(seed: u64, max_depth: usize) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(max_depth)
        .max_gates_per_mixer(2)
        .optimizer_budget(30)
        .halving(10, 2)
        .backend(qarchsearch_suite::qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    let graphs = vec![Graph::connected_erdos_renyi(6, 0.5, seed, 50)];
    JobSpec::new(config, graphs).name(format!("durable-{seed}"))
}

fn durable_server(dir: &std::path::Path, workers: usize) -> JobServer {
    JobServer::launch(
        JobServerConfig {
            workers,
            queue_capacity: 16,
            ..JobServerConfig::default()
        },
        ServerOptions {
            store: Some(StoreConfig::new(dir)),
            faults: None,
            cache: None,
            shard_id: None,
        },
    )
    .unwrap()
}

/// The timing-free report bytes for an outcome (wall-clock seconds are the
/// only nondeterministic fields in a fixed-seed search).
fn report_bytes(outcome: &SearchOutcome) -> String {
    SearchReport::from(outcome).without_timings().to_json()
}

#[test]
fn kill_and_restart_at_every_journal_boundary_is_bit_identical() {
    // Reference run: one durable job to completion; capture the journal
    // *before* shutdown compacts it, so the sweep sees every record.
    let reference_dir = temp_state_dir("sweep-reference");
    let server = durable_server(&reference_dir, 1);
    let id = server.submit(durable_spec(11, 2)).unwrap();
    let baseline = report_bytes(&server.wait(id).unwrap().unwrap());
    let journal = std::fs::read_to_string(reference_dir.join("journal.log")).unwrap();
    server.shutdown();

    let lines: Vec<&str> = journal.lines().collect();
    assert!(
        lines.len() >= 6,
        "expected a multi-record journal, got {} lines",
        lines.len()
    );

    // Simulate a hard kill after every journal record: the surviving
    // prefix must replay + resume to the exact same report. Prefix 0 would
    // be an empty store (no job at all), so start at 1 (the submission).
    for cut in 1..=lines.len() {
        let crash_dir = temp_state_dir(&format!("sweep-{cut}"));
        let mut prefix = lines[..cut].join("\n");
        prefix.push('\n');
        std::fs::write(crash_dir.join("journal.log"), &prefix).unwrap();

        let server = durable_server(&crash_dir, 1);
        let recovery = server.recovery().expect("durable launch reports recovery");
        assert_eq!(
            recovery.resumed_jobs + recovery.requeued_jobs + recovery.terminal_jobs,
            1,
            "cut at {cut}: the job must be recovered in some form: {recovery:?}"
        );
        assert!(
            !recovery.clean_shutdown,
            "cut at {cut} is a crash, not a stop"
        );
        let replayed = report_bytes(&server.wait(id).unwrap().unwrap());
        assert_eq!(
            replayed,
            baseline,
            "cut after journal record {cut}/{} diverged from the uninterrupted run",
            lines.len()
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&crash_dir);
    }

    // A torn tail (the last record half-written by the crash) must be
    // dropped and the rest replayed normally.
    let torn_dir = temp_state_dir("sweep-torn");
    let keep = lines[..lines.len() - 1].join("\n");
    let torn = format!("{keep}\n{}", &lines[lines.len() - 1][..20]);
    std::fs::write(torn_dir.join("journal.log"), torn).unwrap();
    let server = durable_server(&torn_dir, 1);
    let replayed = report_bytes(&server.wait(id).unwrap().unwrap());
    assert_eq!(replayed, baseline, "torn-tail replay diverged");
    server.shutdown();

    let _ = std::fs::remove_dir_all(&reference_dir);
    let _ = std::fs::remove_dir_all(&torn_dir);
}

#[test]
fn torn_journal_tail_is_reported_and_compacted() {
    let dir = temp_state_dir("torn-report");
    let server = durable_server(&dir, 1);
    let id = server.submit(durable_spec(5, 1)).unwrap();
    server.wait(id).unwrap().unwrap();
    let journal = std::fs::read_to_string(dir.join("journal.log")).unwrap();
    server.shutdown();

    // Rewrite the journal with a half-record tail, as a crash mid-append
    // would leave it.
    let torn = format!("{}deadbeef {{\"Trunc", journal);
    std::fs::write(dir.join("journal.log"), torn).unwrap();

    let server = durable_server(&dir, 1);
    let recovery = server.recovery().unwrap().clone();
    assert_eq!(recovery.dropped_records, 1, "{recovery:?}");
    assert_eq!(recovery.terminal_jobs, 1, "{recovery:?}");
    // The store auto-compacted the torn tail away: a fresh replay of the
    // rewritten journal is clean.
    server.shutdown();
    let replayed = qarchsearch_suite::qarchsearch::store::replay(&dir.join("journal.log")).unwrap();
    assert_eq!(replayed.dropped_records, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_is_isolated_and_the_worker_survives() {
    // Job 2's engine panics at its first pipeline rung; jobs 1 and 3 — and
    // a job submitted *after* the panic — must complete untouched.
    let plan = FaultPlan::panic_at(site::PIPELINE_RUNG, 1, "injected rung panic").for_job(2);
    let server = JobServer::launch(
        JobServerConfig {
            workers: 2,
            queue_capacity: 16,
            ..JobServerConfig::default()
        },
        ServerOptions {
            store: None,
            faults: Some(FaultInjector::new(plan)),
            cache: None,
            shard_id: None,
        },
    )
    .unwrap();

    let healthy_a = server.submit(durable_spec(21, 1)).unwrap();
    let victim = server.submit(durable_spec(22, 1)).unwrap();
    let healthy_b = server.submit(durable_spec(23, 1)).unwrap();

    let result = server.wait(victim).unwrap();
    match result {
        Err(SearchError::Panicked { message }) => {
            assert!(
                message.contains("injected rung panic"),
                "panic message lost: {message}"
            );
        }
        other => panic!("victim must fail with the panic, got {other:?}"),
    }
    let status = server.status(victim).unwrap();
    match &status.state {
        JobState::Failed {
            panic: Some(message),
        } => {
            assert!(message.contains("injected rung panic"))
        }
        other => panic!("victim state must carry the panic, got {other:?}"),
    }
    // The recorded event stream still ends on a terminal event.
    let (events, _) = server.events_since(victim, 0).unwrap();
    assert!(events.last().unwrap().is_terminal());

    // Neighbours and post-panic submissions complete: the worker survived.
    let late = server.submit(durable_spec(24, 1)).unwrap();
    for id in [healthy_a, healthy_b, late] {
        let outcome = server.wait(id).unwrap().unwrap_or_else(|e| {
            panic!("healthy job {id} must complete, got {e}");
        });
        assert!(outcome.best.energy.is_finite());
        assert_eq!(server.status(id).unwrap().state, JobState::Completed);
    }
    server.shutdown();
}

#[test]
fn deadline_expiry_times_the_job_out() {
    let server = JobServer::start(JobServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..JobServerConfig::default()
    });
    // Heavy enough that a 50 ms deadline always lands mid-search.
    let mut spec = durable_spec(31, 4).timeout_secs(0.05);
    spec.config.evaluator.budget = 400;
    spec.config.pipeline.first_rung = 200;
    let slow = server.submit(spec).unwrap();
    let unbounded = server.submit(durable_spec(32, 1)).unwrap();

    let result = server.wait(slow).unwrap();
    assert!(
        matches!(result, Err(SearchError::DeadlineExceeded { .. })),
        "expected a deadline error, got {result:?}"
    );
    let status = server.status(slow).unwrap();
    assert_eq!(status.state, JobState::TimedOut);
    assert_eq!(status.retries, 0, "deadlines are not retried");

    // The deadline of one job never leaks into another.
    server.wait(unbounded).unwrap().unwrap();
    assert_eq!(server.status(unbounded).unwrap().state, JobState::Completed);
    server.shutdown();
}

#[test]
fn transient_failure_retries_and_converges_to_the_fault_free_result() {
    // Fault-free reference.
    let reference = JobServer::start(JobServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..JobServerConfig::default()
    });
    let id = reference.submit(durable_spec(41, 2)).unwrap();
    let baseline = report_bytes(&reference.wait(id).unwrap().unwrap());
    reference.shutdown();

    // Same job, but depth 2's advance hits an injected transient failure
    // once; one retry resumes from the depth-1 checkpoint.
    let plan = FaultPlan::io_error_at(site::SESSION_ADVANCE, 2, "flaky backend").for_job(1);
    let server = JobServer::launch(
        JobServerConfig {
            workers: 1,
            queue_capacity: 4,
            ..JobServerConfig::default()
        },
        ServerOptions {
            store: None,
            faults: Some(FaultInjector::new(plan)),
            cache: None,
            shard_id: None,
        },
    )
    .unwrap();
    let job = server
        .submit(durable_spec(41, 2).max_retries(2).retry_backoff_ms(1))
        .unwrap();
    let outcome = server.wait(job).unwrap().unwrap_or_else(|e| {
        panic!("retried job must converge, got {e}");
    });
    assert_eq!(
        report_bytes(&outcome),
        baseline,
        "retry diverged from fault-free run"
    );
    let status = server.status(job).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(
        status.retries, 1,
        "exactly one retry must have been consumed"
    );
    server.shutdown();

    // The same fault with no retry budget is a terminal failure.
    let plan = FaultPlan::io_error_at(site::SESSION_ADVANCE, 2, "flaky backend").for_job(1);
    let server = JobServer::launch(
        JobServerConfig {
            workers: 1,
            queue_capacity: 4,
            ..JobServerConfig::default()
        },
        ServerOptions {
            store: None,
            faults: Some(FaultInjector::new(plan)),
            cache: None,
            shard_id: None,
        },
    )
    .unwrap();
    let job = server.submit(durable_spec(41, 2)).unwrap();
    let result = server.wait(job).unwrap();
    assert!(
        matches!(result, Err(SearchError::Transient { .. })),
        "without budget the transient error surfaces, got {result:?}"
    );
    assert!(matches!(
        server.status(job).unwrap().state,
        JobState::Failed { panic: None }
    ));
    server.shutdown();
}

#[test]
fn graceful_shutdown_suspends_and_the_next_launch_resumes() {
    // Fault-free reference for the final report.
    let reference = JobServer::start(JobServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..JobServerConfig::default()
    });
    let id = reference.submit(durable_spec(51, 3)).unwrap();
    let baseline = report_bytes(&reference.wait(id).unwrap().unwrap());
    reference.shutdown();

    let dir = temp_state_dir("graceful");
    let server = durable_server(&dir, 1);
    let job = server.submit(durable_spec(51, 3)).unwrap();
    // Let the job make some progress so the suspension has a checkpoint to
    // journal, then stop the server underneath it.
    loop {
        let status = server.status(job).unwrap();
        if status.state.is_terminal()
            || status
                .progress
                .as_ref()
                .is_some_and(|p| p.depths_completed > 0)
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    server.shutdown();

    let server = durable_server(&dir, 1);
    let recovery = server.recovery().unwrap().clone();
    assert!(recovery.clean_shutdown, "{recovery:?}");
    // The job either finished before the shutdown landed (terminal) or was
    // suspended and must now resume; both converge to the same report.
    assert_eq!(
        recovery.resumed_jobs + recovery.requeued_jobs + recovery.terminal_jobs,
        1,
        "{recovery:?}"
    );
    let resumed = report_bytes(&server.wait(job).unwrap().unwrap());
    assert_eq!(resumed, baseline, "suspended job diverged after resume");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_restart_preserves_job_ids_and_terminal_results() {
    let dir = temp_state_dir("ids");
    let server = durable_server(&dir, 1);
    let first = server.submit(durable_spec(61, 1)).unwrap();
    server.wait(first).unwrap().unwrap();
    server.shutdown();

    // Terminal results survive the restart; new submissions continue the
    // id sequence instead of reusing journaled ids.
    let server = durable_server(&dir, 1);
    let restored = server.result(first).unwrap();
    assert!(matches!(restored, Some(Ok(_))), "terminal result lost");
    assert_eq!(server.status(first).unwrap().state, JobState::Completed);
    let second = server.submit(durable_spec(62, 1)).unwrap();
    assert!(second.0 > first.0, "job ids must not be reused");
    server.wait(second).unwrap().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
