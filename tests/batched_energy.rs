//! Differential suite for batched multi-parameter energy evaluation
//! (ISSUE 6 tentpole).
//!
//! The batched statevector sweep is an optimization, not a semantic change:
//! every test here pins **bitwise** equality between the batch path and the
//! sequential reference it amortizes —
//!
//! 1. `CompiledEnergy::energy_batch_in` ≡ one `energy_flat_in` per point,
//!    as exact `f64` bit patterns, for batch sizes 1, 2, 7 and 64, for every
//!    shipped problem family;
//! 2. training through the optimizer batch-step protocol
//!    (`TrainingSession::advance_batched_in`) ≡ scalar `advance_in`, for all
//!    five bundled optimizers, including interrupted/mixed rung sequences;
//! 3. the full search pipeline (which now routes through the batch path)
//!    stays thread-count-deterministic — the pinned byte-exact searches in
//!    `tests/problems.rs` complete this claim against pre-batching captures.

use qarchsearch_suite::prelude::*;

const BATCH_SIZES: [usize; 4] = [1, 2, 7, 64];

/// Deterministic parameter points spread over the QAOA angle range.
fn points(count: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..dim)
                .map(|j| 0.11 + 0.37 * (i as f64) - 0.23 * (j as f64) + 0.013 * (i * j) as f64)
                .map(|x| (x % 3.0) - 1.5)
                .collect()
        })
        .collect()
}

#[test]
fn energy_batch_in_matches_energy_flat_in_bitwise_for_every_problem() {
    let graph = Graph::erdos_renyi(7, 0.5, 41);
    for kind in ProblemKind::all(41) {
        let problem = kind.instantiate(&graph);
        let eval =
            EnergyEvaluator::for_problem(&graph, problem.clone(), Backend::StateVector).unwrap();
        let ansatz = QaoaAnsatz::for_problem(&problem, 2, Mixer::qnas()).unwrap();
        let compiled = eval.compile(&ansatz).unwrap();
        let mut scratch = BatchScratch::new();
        let mut state = StateVector::zero_state(compiled.num_qubits()).unwrap();
        for batch in BATCH_SIZES {
            let pts = points(batch, 4);
            let batched = compiled.energy_batch_in(&pts, &mut scratch).unwrap();
            assert_eq!(batched.len(), batch, "{}", problem.name());
            for (p, &e) in pts.iter().zip(&batched) {
                let scalar = compiled.energy_flat_in(p, &mut state).unwrap();
                assert_eq!(
                    e.to_bits(),
                    scalar.to_bits(),
                    "{} B={batch}: batched {e} vs sequential {scalar} at {p:?}",
                    problem.name()
                );
            }
        }
    }
}

#[test]
fn energy_batch_internal_and_external_scratch_agree_bitwise() {
    let graph = Graph::erdos_renyi(6, 0.5, 17);
    let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
    let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
    let compiled = eval.compile(&ansatz).unwrap();
    let mut scratch = BatchScratch::new();
    for batch in BATCH_SIZES {
        let pts = points(batch, 4);
        let external = compiled.energy_batch_in(&pts, &mut scratch).unwrap();
        let internal = compiled.energy_batch(&pts).unwrap();
        for (a, b) in external.iter().zip(&internal) {
            assert_eq!(a.to_bits(), b.to_bits(), "B={batch}");
        }
    }
}

/// One training rung per optimizer through the batch protocol vs the scalar
/// protocol: identical energies, angles and evaluation counts to the bit.
#[test]
fn batched_training_is_bit_identical_for_all_five_optimizers() {
    let graph = Graph::erdos_renyi(7, 0.5, 23);
    for kind in [
        ProblemKind::MaxCut,
        ProblemKind::MaxIndependentSet { penalty: 2.0 },
    ] {
        let problem = kind.instantiate(&graph);
        let eval =
            EnergyEvaluator::for_problem(&graph, problem.clone(), Backend::StateVector).unwrap();
        let ansatz = QaoaAnsatz::for_problem(&problem, 2, Mixer::qnas()).unwrap();
        for opt_kind in OptimizerKind::all() {
            let opt = opt_kind.build_resumable();
            let mut scalar = eval.begin_training(&ansatz, &*opt, None, 80).unwrap();
            let a = scalar.advance(&*opt, 80).unwrap();

            let mut batched = eval.begin_training(&ansatz, &*opt, None, 80).unwrap();
            let mut scratch = BatchScratch::new();
            let b = batched
                .advance_batched_in(&*opt, 80, Some(&mut scratch))
                .unwrap();

            let ctx = format!("{} with {opt_kind}", problem.name());
            assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{ctx}: energy");
            assert_eq!(a.gammas, b.gammas, "{ctx}: gammas");
            assert_eq!(a.betas, b.betas, "{ctx}: betas");
            assert_eq!(a.evaluations, b.evaluations, "{ctx}: evaluations");
            assert_eq!(
                a.approx_ratio.to_bits(),
                b.approx_ratio.to_bits(),
                "{ctx}: ratio"
            );
        }
    }
}

/// Interrupted runs stay interchangeable: a session advanced in batched
/// rungs, scalar rungs, or any mix lands on the same bits.
#[test]
fn mixed_batched_and_scalar_rungs_are_bit_identical() {
    let graph = Graph::erdos_renyi(7, 0.5, 29);
    let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
    let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
    for opt_kind in OptimizerKind::all() {
        let opt = opt_kind.build_resumable();
        let mut reference = eval.begin_training(&ansatz, &*opt, None, 90).unwrap();
        reference.advance(&*opt, 25).unwrap();
        reference.advance(&*opt, 60).unwrap();
        let r = reference.advance(&*opt, 90).unwrap();

        // batched → scalar → batched
        let mut mixed = eval.begin_training(&ansatz, &*opt, None, 90).unwrap();
        mixed.advance_batched(&*opt, 25).unwrap();
        mixed.advance(&*opt, 60).unwrap();
        let m = mixed.advance_batched(&*opt, 90).unwrap();

        // scalar → batched → scalar
        let mut other = eval.begin_training(&ansatz, &*opt, None, 90).unwrap();
        other.advance(&*opt, 25).unwrap();
        other.advance_batched(&*opt, 60).unwrap();
        let o = other.advance(&*opt, 90).unwrap();

        assert_eq!(r.energy.to_bits(), m.energy.to_bits(), "{opt_kind} b-s-b");
        assert_eq!(r.evaluations, m.evaluations, "{opt_kind} b-s-b");
        assert_eq!(r.gammas, m.gammas, "{opt_kind} b-s-b");
        assert_eq!(r.energy.to_bits(), o.energy.to_bits(), "{opt_kind} s-b-s");
        assert_eq!(r.evaluations, o.evaluations, "{opt_kind} s-b-s");
        assert_eq!(r.betas, o.betas, "{opt_kind} s-b-s");
    }
}

/// The batched pipeline is thread-count-deterministic end to end, for a
/// batching-friendly optimizer (SPSA proposes ± probe pairs every step).
#[test]
fn batched_pipeline_search_is_thread_count_deterministic() {
    let dataset = qarchsearch_suite::graphs::datasets::erdos_renyi_dataset(2, 7, 301);
    let cfg = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(2)
        .max_gates_per_mixer(2)
        .optimizer_budget(40)
        .backend(Backend::StateVector)
        .optimizer(OptimizerKind::Spsa)
        .halving(10, 2)
        .seed(301)
        .build();
    let one = SearchDriver::new(SearchConfig {
        threads: Some(1),
        ..cfg.clone()
    })
    .run(&dataset)
    .unwrap();
    let four = SearchDriver::new(SearchConfig {
        threads: Some(4),
        ..cfg
    })
    .run(&dataset)
    .unwrap();
    assert_eq!(one.best.energy.to_bits(), four.best.energy.to_bits());
    assert_eq!(one.best.mixer_label, four.best.mixer_label);
    assert_eq!(
        one.total_optimizer_evaluations,
        four.total_optimizer_evaluations
    );
    for (da, db) in one.depth_results.iter().zip(&four.depth_results) {
        for (ca, cb) in da.candidates.iter().zip(&db.candidates) {
            assert_eq!(ca.mixer_label, cb.mixer_label);
            assert_eq!(
                ca.mean_energy.to_bits(),
                cb.mean_energy.to_bits(),
                "{} at depth {}",
                ca.mixer_label,
                da.depth
            );
        }
    }
}
