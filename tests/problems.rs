//! Integration suite for the pluggable problem layer.
//!
//! Three claims are pinned here:
//!
//! 1. **Max-Cut is bit-identical to the pre-refactor code path.** The
//!    `maxcut_search_*_pre_refactor` tests compare full search outputs
//!    (per-candidate, per-graph energies as exact f64 bit patterns) against
//!    values captured from the repository immediately before the problem
//!    layer landed. Any deviation — in the cost evaluation, the ansatz
//!    lowering, the compiled diagonal, or the classical reference — fails
//!    these tests.
//! 2. **Every backend agrees on every shipped problem.** Property-style
//!    sweeps assert that the dense state vector, the light-cone tensor
//!    network, and the compiled program produce the same expectation to
//!    1e-10 on random instances and random angles.
//! 3. **Every shipped problem searches end-to-end** through the same
//!    pipeline the CLI drives.

use qarchsearch_suite::prelude::*;

fn er_dataset(count: usize, nodes: usize, seed: u64) -> Vec<Graph> {
    qarchsearch_suite::graphs::datasets::erdos_renyi_dataset(count, nodes, seed)
}

/// Assert two outcomes agree bit-for-bit on everything except wall-clock
/// timings (which can never reproduce).
fn assert_outcomes_bitwise_equal(a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.problem, b.problem);
    assert_eq!(a.best.mixer_label, b.best.mixer_label);
    assert_eq!(a.best.depth, b.best.depth);
    assert_eq!(a.best.energy.to_bits(), b.best.energy.to_bits());
    assert_eq!(a.num_candidates_evaluated, b.num_candidates_evaluated);
    assert_eq!(a.total_optimizer_evaluations, b.total_optimizer_evaluations);
    assert_eq!(a.full_budget_evaluations, b.full_budget_evaluations);
    assert_eq!(a.depth_results.len(), b.depth_results.len());
    for (da, db) in a.depth_results.iter().zip(&b.depth_results) {
        assert_eq!(da.depth, db.depth);
        assert_eq!(da.rungs, db.rungs);
        assert_eq!(da.gated_out, db.gated_out);
        assert_eq!(da.best_energy.to_bits(), db.best_energy.to_bits());
        assert_eq!(da.candidates.len(), db.candidates.len());
        for (ca, cb) in da.candidates.iter().zip(&db.candidates) {
            assert_eq!(ca.mixer_label, cb.mixer_label);
            assert_eq!(ca.mean_energy.to_bits(), cb.mean_energy.to_bits());
            assert_eq!(
                ca.mean_approx_ratio.to_bits(),
                cb.mean_approx_ratio.to_bits()
            );
            assert_eq!(ca.total_evaluations, cb.total_evaluations);
            assert_eq!(ca.pruned_at_rung, cb.pruned_at_rung);
            assert_eq!(ca.per_graph, cb.per_graph);
        }
    }
}

/// Pre-refactor capture: statevector backend, pruning pipeline (first rung
/// 10, eta 2), 2 threads, seed 2023, 2 ER graphs on 8 nodes, alphabet
/// {rx, ry}, pmax 2, kmax 2, budget 40. Values are `f64::to_bits()` of each
/// candidate's (mean energy, per-graph energies) in proposal order.
#[test]
fn maxcut_pipeline_search_is_bit_identical_to_pre_refactor() {
    let dataset = er_dataset(2, 8, 2023);
    let cfg = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(2)
        .max_gates_per_mixer(2)
        .optimizer_budget(40)
        .backend(Backend::StateVector)
        .halving(10, 2)
        .threads(2)
        .seed(2023)
        .build();
    let outcome = SearchDriver::new(cfg.clone()).run(&dataset).unwrap();

    // Driver vs driver: a second run at a different worker count must
    // reproduce the first bit for bit (thread count never leaks into
    // results — including through the batched energy path).
    let other = SearchDriver::new(SearchConfig {
        threads: Some(1),
        ..cfg
    })
    .run(&dataset)
    .unwrap();
    assert_outcomes_bitwise_equal(&outcome, &other);

    assert_eq!(outcome.problem, "maxcut");
    assert_eq!(outcome.best.mixer_label, "('rx', 'rx')");
    assert_eq!(outcome.best.energy.to_bits(), 0x40214183065013c5);

    // (label, mean-energy bits, per-graph energy bits, evaluations)
    #[rustfmt::skip]
    let pinned: [(usize, &str, u64, [u64; 2], usize); 12] = [
        (1, "('rx')",       0x401ea4067c8431c2, [0x4014f62964e33189, 0x402428f1ca1298fd], 83),
        (1, "('ry')",       0x401996f79eea35fd, [0x400e49a7811fa15b, 0x4022048dbea24da6], 20),
        (1, "('rx', 'rx')", 0x401feffd5a123f3c, [0x4014f62920c4052b, 0x402574e8c9b03ca7], 82),
        (1, "('rx', 'ry')", 0x401c66a3ec7d6222, [0x401181c742ea8d89, 0x4023a5c04b081b5d], 41),
        (1, "('ry', 'rx')", 0x4019cdb6575a20e6, [0x400bc409be2b2d9e, 0x4022dcb3e7cf557f], 23),
        (1, "('ry', 'ry')", 0x4019fa25f43e93de, [0x400fe897b6b0ad26, 0x4022000006926895], 22),
        (2, "('rx')",       0x4020e0cac414efb8, [0x4017b5a5eff98b5a, 0x4025e6c2902d19c3], 81),
        (2, "('ry')",       0x401a02ba660e5dec, [0x400f602b6052db1a, 0x40222aaf8df9a725], 25),
        (2, "('rx', 'rx')", 0x40214183065013c5, [0x4017b760bce9ac11, 0x4026a755ae2b5181], 83),
        (2, "('rx', 'ry')", 0x401f93b2e6c3a201, [0x4014c317e1803328, 0x40253226f603886d], 40),
        (2, "('ry', 'rx')", 0x401d8ea5fc821f51, [0x4014a58826980562, 0x40233be1e9361ca0], 21),
        (2, "('ry', 'ry')", 0x401983fd55f3a132, [0x400d97eea32fc84b, 0x40221e01ad27af1f], 21),
    ];

    let candidates: Vec<_> = outcome
        .depth_results
        .iter()
        .flat_map(|d| d.candidates.iter().map(move |c| (d.depth, c)))
        .collect();
    assert_eq!(candidates.len(), pinned.len());
    for ((depth, cand), (p_depth, p_label, p_mean, p_graphs, p_evals)) in
        candidates.iter().zip(&pinned)
    {
        assert_eq!(depth, p_depth);
        assert_eq!(&cand.mixer_label, p_label);
        assert_eq!(
            cand.mean_energy.to_bits(),
            *p_mean,
            "{p_label} at depth {p_depth}: mean energy drifted"
        );
        assert_eq!(cand.per_graph.len(), 2);
        for (t, bits) in cand.per_graph.iter().zip(p_graphs) {
            assert_eq!(
                t.energy.to_bits(),
                *bits,
                "{p_label} at depth {p_depth}: per-graph energy drifted"
            );
        }
        assert_eq!(cand.total_evaluations, *p_evals, "{p_label}");
    }
}

/// Pre-refactor capture: tensor-network backend (the paper default), serial
/// full-budget scheduler, 1 ER graph on 6 nodes, alphabet {rx, ry}, pmax 1,
/// kmax 1, budget 25, seed 7.
#[test]
fn maxcut_serial_tensornet_search_is_bit_identical_to_pre_refactor() {
    let dataset = er_dataset(1, 6, 7);
    let cfg = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(1)
        .max_gates_per_mixer(1)
        .optimizer_budget(25)
        .no_prune()
        .serial()
        .seed(7)
        .build();
    let outcome = SearchDriver::new(cfg.clone()).run(&dataset).unwrap();

    // Driver vs driver: a repeated serial run reproduces the first bit for
    // bit.
    let again = SearchDriver::new(cfg).run(&dataset).unwrap();
    assert_outcomes_bitwise_equal(&outcome, &again);

    assert_eq!(outcome.best.mixer_label, "('ry')");
    assert_eq!(outcome.best.energy.to_bits(), 0x4017ff6229602e46);

    let pinned: [(&str, u64, u64, usize); 2] = [
        ("('rx')", 0x40152e807cfa99f8, 0x3fe83525211e66d2, 26),
        ("('ry')", 0x4017ff6229602e46, 0x3feb6d02786debbe, 27),
    ];
    let cands = &outcome.depth_results[0].candidates;
    assert_eq!(cands.len(), 2);
    for (cand, (label, mean, ratio, evals)) in cands.iter().zip(&pinned) {
        assert_eq!(&cand.mixer_label, label);
        assert_eq!(cand.mean_energy.to_bits(), *mean, "{label} energy drifted");
        assert_eq!(
            cand.mean_approx_ratio.to_bits(),
            *ratio,
            "{label} approximation ratio drifted"
        );
        assert_eq!(cand.total_evaluations, *evals);
    }
}

fn shipped_problems(graph: &Graph, seed: u64) -> Vec<Problem> {
    ProblemKind::all(seed)
        .into_iter()
        .map(|k| k.instantiate(graph))
        .collect()
}

/// Deterministic pseudo-random angles for the agreement sweeps.
fn angles(seed: u64, count: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map the top bits into (−π, π).
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0 * std::f64::consts::PI
        })
        .collect()
}

/// Statevec, tensornet (parallel and sequential), and the compiled program
/// agree to 1e-10 for every shipped problem on random graphs and angles.
#[test]
fn backends_agree_on_every_problem_on_random_instances() {
    for seed in 0..4u64 {
        let graph = Graph::erdos_renyi(6, 0.5, 100 + seed);
        for problem in shipped_problems(&graph, seed) {
            for depth in [1usize, 2] {
                let ansatz = QaoaAnsatz::for_problem(&problem, depth, Mixer::qnas()).unwrap();
                let a = angles(seed * 31 + depth as u64, 2 * depth);
                let (gammas, betas) = a.split_at(depth);
                let circuit = ansatz.bind(gammas, betas).unwrap();

                let sv = Backend::StateVector
                    .expectation(&circuit, &problem)
                    .unwrap();
                let tn = Backend::TensorNetwork
                    .expectation(&circuit, &problem)
                    .unwrap();
                let tns = Backend::TensorNetworkSequential
                    .expectation(&circuit, &problem)
                    .unwrap();

                let eval =
                    EnergyEvaluator::for_problem(&graph, problem.clone(), Backend::StateVector)
                        .unwrap();
                let compiled = eval.compile(&ansatz).unwrap();
                let fast = compiled.energy_flat(&a).unwrap();

                // 1e-10 relative: partition energies reach ~1e4, where an
                // absolute 1e-10 would be below f64 resolution.
                let tol = 1e-10 * (1.0 + sv.abs());
                let label = format!("{} seed {seed} depth {depth}", problem.name());
                assert!((sv - tn).abs() < tol, "{label}: sv {sv} vs tn {tn}");
                assert!((tn - tns).abs() < tol, "{label}: tn {tn} vs tns {tns}");
                assert!(
                    (sv - fast).abs() < tol,
                    "{label}: sv {sv} vs compiled {fast}"
                );
            }
        }
    }
}

/// The trained energy never beats the exact classical optimum, and the
/// ratio convention keeps r in [0, 1], for every shipped problem.
#[test]
fn trained_energies_respect_classical_optima() {
    let graph = Graph::erdos_renyi(7, 0.5, 77);
    for problem in shipped_problems(&graph, 77) {
        let eval =
            EnergyEvaluator::for_problem(&graph, problem.clone(), Backend::StateVector).unwrap();
        let ansatz = QaoaAnsatz::for_problem(&problem, 2, Mixer::qnas()).unwrap();
        let trained = eval
            .train(&ansatz, &CobylaOptimizer::default(), 80)
            .unwrap();
        assert!(
            trained.energy <= eval.classical_optimum() + 1e-9,
            "{}: {} vs {}",
            problem.name(),
            trained.energy,
            eval.classical_optimum()
        );
        assert!(trained.approx_ratio <= 1.0 + 1e-9, "{}", problem.name());
        assert!(trained.approx_ratio >= -1e-9, "{}", problem.name());
        assert_eq!(trained.classical_quality, SolutionQuality::Exact);
    }
}

/// The full budget-aware pipeline (halving + warm starts + work stealing)
/// runs end-to-end for each non-Max-Cut problem family, stays
/// thread-count-deterministic, and reports the problem name.
#[test]
fn pipeline_search_runs_end_to_end_for_every_problem_family() {
    let dataset = er_dataset(2, 6, 5);
    for kind in ProblemKind::all(5) {
        if kind == ProblemKind::MaxCut {
            continue; // covered (bitwise) by the regression pins above
        }
        let cfg = SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
            .max_depth(2)
            .max_gates_per_mixer(2)
            .optimizer_budget(30)
            .backend(Backend::StateVector)
            .halving(10, 2)
            .problem(kind.clone())
            .seed(5)
            .build();
        let one = SearchDriver::new(SearchConfig {
            threads: Some(1),
            ..cfg.clone()
        })
        .run(&dataset)
        .unwrap();
        let four = SearchDriver::new(SearchConfig {
            threads: Some(4),
            ..cfg
        })
        .run(&dataset)
        .unwrap();
        assert_eq!(one.problem, kind.name());
        assert!(one.best.energy.is_finite());
        assert!(one.best.approx_ratio <= 1.0 + 1e-9, "{}", kind.name());
        assert_eq!(
            one.best.energy.to_bits(),
            four.best.energy.to_bits(),
            "{}: thread count leaked into results",
            kind.name()
        );
        assert_eq!(one.best.mixer_label, four.best.mixer_label);
    }
}

/// The JSON search report carries the problem name end to end.
#[test]
fn search_report_names_the_problem() {
    use qarchsearch_suite::qarchsearch::report::SearchReport;
    let dataset = er_dataset(1, 5, 3);
    let cfg = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx"]).unwrap())
        .max_depth(1)
        .max_gates_per_mixer(1)
        .optimizer_budget(15)
        .backend(Backend::StateVector)
        .problem(ProblemKind::NumberPartitioning { seed: 3 })
        .no_prune()
        .seed(3)
        .build();
    let outcome = SearchDriver::new(cfg).run(&dataset).unwrap();
    let report = SearchReport::from(&outcome);
    assert_eq!(report.problem, "partition");
    let json = report.to_json();
    assert!(json.contains("\"problem\""), "{json}");
    assert!(json.contains("partition"), "{json}");
}
