//! Integration tests: the tensor-network backend (QTensor analog) must agree
//! with the dense state-vector backend on full QAOA workloads, including the
//! exact instance families used in the paper's experiments.

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qaoa::ansatz::QaoaAnsatz;
use qarchsearch_suite::qaoa::energy::EnergyEvaluator;

#[test]
fn backends_agree_on_er_dataset() {
    let dataset = graphs::datasets::erdos_renyi_dataset(4, 8, 77);
    for (i, graph) in dataset.iter().enumerate() {
        let ansatz = QaoaAnsatz::new(graph, 2, Mixer::qnas());
        let sv = EnergyEvaluator::new(graph, Backend::StateVector);
        let tn = EnergyEvaluator::new(graph, Backend::TensorNetwork);
        let angles = ([0.35, 0.6], [0.25, 0.15]);
        let e_sv = sv.energy(&ansatz, &angles.0, &angles.1).unwrap();
        let e_tn = tn.energy(&ansatz, &angles.0, &angles.1).unwrap();
        assert!(
            (e_sv - e_tn).abs() < 1e-8,
            "graph {i}: sv {e_sv} vs tn {e_tn}"
        );
    }
}

#[test]
fn backends_agree_on_regular_dataset_across_mixers() {
    let dataset = graphs::datasets::random_regular_dataset(3, 8, 4, 13);
    for graph in &dataset {
        for mixer in Mixer::fig7_candidates() {
            let ansatz = QaoaAnsatz::new(graph, 1, mixer.clone());
            let sv = EnergyEvaluator::new(graph, Backend::StateVector);
            let tn = EnergyEvaluator::new(graph, Backend::TensorNetwork);
            let e_sv = sv.energy(&ansatz, &[0.5], &[0.3]).unwrap();
            let e_tn = tn.energy(&ansatz, &[0.5], &[0.3]).unwrap();
            assert!(
                (e_sv - e_tn).abs() < 1e-8,
                "mixer {}: sv {e_sv} vs tn {e_tn}",
                mixer.label()
            );
        }
    }
}

#[test]
fn tensor_network_handles_deeper_circuits_than_tested_elsewhere() {
    // p = 3 on a 10-node graph: the light-cone networks stay tractable.
    let graph = Graph::connected_erdos_renyi(10, 0.4, 3, 50);
    let ansatz = QaoaAnsatz::new(&graph, 3, Mixer::baseline());
    let sv = EnergyEvaluator::new(&graph, Backend::StateVector);
    let tn = EnergyEvaluator::new(&graph, Backend::TensorNetwork);
    let gammas = [0.3, 0.5, 0.2];
    let betas = [0.2, 0.1, 0.35];
    let e_sv = sv.energy(&ansatz, &gammas, &betas).unwrap();
    let e_tn = tn.energy(&ansatz, &gammas, &betas).unwrap();
    assert!((e_sv - e_tn).abs() < 1e-7, "sv {e_sv} vs tn {e_tn}");
}

#[test]
fn energies_respect_maxcut_bounds_on_both_backends() {
    let graph = Graph::random_regular(10, 4, 5).unwrap();
    let exact = MaxCut::brute_force(&graph).unwrap().value;
    for backend in [Backend::StateVector, Backend::TensorNetwork] {
        let eval = EnergyEvaluator::new(&graph, backend);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        for angles in [([0.1, 0.2], [0.3, 0.4]), ([1.0, 0.5], [0.7, 0.9])] {
            let e = eval.energy(&ansatz, &angles.0, &angles.1).unwrap();
            assert!(e >= -1e-9);
            assert!(
                e <= exact + 1e-9,
                "{backend}: energy {e} above optimum {exact}"
            );
        }
    }
}

#[test]
fn statevector_sampling_agrees_with_exact_expectation() {
    use qarchsearch_suite::statevec::expectation::{
        maxcut_expectation, maxcut_value_of_basis_state,
    };
    use qarchsearch_suite::statevec::sampling::{estimate_expectation_from_counts, sample_counts};

    let graph = Graph::cycle(8);
    let edges: Vec<(usize, usize, f64)> =
        graph.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
    let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
    let circuit = ansatz.bind(&[0.6], &[0.4]).unwrap();
    let state = StateVector::from_circuit(&circuit).unwrap();

    let exact = maxcut_expectation(&state, &edges);
    let counts = sample_counts(&state, 50_000, 17);
    let estimate =
        estimate_expectation_from_counts(&counts, &|z| maxcut_value_of_basis_state(&edges, z));
    assert!(
        (exact - estimate).abs() < 0.1,
        "exact {exact} vs sampled {estimate}"
    );
}
