//! Vendored stand-in for the `num-complex` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! subset of the `num_complex` API the workspace actually uses is implemented
//! here: the [`Complex`] number type over `f64` with the usual arithmetic
//! operators and the handful of methods the simulators call (`norm`,
//! `norm_sqr`, `conj`, `exp`, `sqrt`, `arg`, `scale`).
//!
//! The layout and method semantics match the real crate so that swapping the
//! genuine dependency back in is a one-line `Cargo.toml` change.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·i`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// `Complex<f64>`, the only instantiation the workspace uses.
pub type Complex64 = Complex<f64>;

impl Complex<f64> {
    /// A new complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// Zero.
    #[inline]
    pub const fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// One.
    #[inline]
    pub const fn one() -> Self {
        Complex { re: 1.0, im: 0.0 }
    }

    /// Complex number from polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` (unit modulus, phase θ).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|` (uses `hypot` for numerical robustness).
    #[inline]
    pub fn norm(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) of `z`.
    #[inline]
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(&self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(&self) -> Self {
        let r = self.re.exp();
        Complex {
            re: r * self.im.cos(),
            im: r * self.im.sin(),
        }
    }

    /// Principal square root.
    pub fn sqrt(&self) -> Self {
        let (r, theta) = (self.norm(), self.arg());
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(&self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(&self, t: f64) -> Self {
        Complex {
            re: self.re * t,
            im: self.im * t,
        }
    }

    /// Divide by a real scalar.
    #[inline]
    pub fn unscale(&self, t: f64) -> Self {
        Complex {
            re: self.re / t,
            im: self.im / t,
        }
    }

    /// Integer power by repeated squaring.
    pub fn powi(&self, mut n: i32) -> Self {
        if n < 0 {
            return self.inv().powi(-n);
        }
        let mut base = *self;
        let mut acc = Complex::one();
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(&self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex<f64> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn neg(self) -> Self {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Add<f64> for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Complex {
            re: self.re + rhs,
            im: self.im,
        }
    }
}

impl Sub<f64> for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Complex {
            re: self.re - rhs,
            im: self.im,
        }
    }
}

impl Mul<f64> for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.unscale(rhs)
    }
}

impl Add<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn add(self, rhs: Complex<f64>) -> Complex<f64> {
        rhs + self
    }
}

impl Sub<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn sub(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex {
            re: self - rhs.re,
            im: -rhs.im,
        }
    }
}

impl Mul<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: Complex<f64>) -> Complex<f64> {
        rhs.scale(self)
    }
}

impl Div<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn div(self, rhs: Complex<f64>) -> Complex<f64> {
        rhs.inv().scale(self)
    }
}

macro_rules! forward_ref_binop {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait<&Complex<f64>> for &Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: &Complex<f64>) -> Complex<f64> {
                $trait::$method(*self, *rhs)
            }
        }
        impl $trait<Complex<f64>> for &Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: Complex<f64>) -> Complex<f64> {
                $trait::$method(*self, rhs)
            }
        }
        impl $trait<&Complex<f64>> for Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: &Complex<f64>) -> Complex<f64> {
                $trait::$method(self, *rhs)
            }
        }
    )*};
}

forward_ref_binop!(Add::add, Sub::sub, Mul::mul, Div::div);

impl Neg for &Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn neg(self) -> Complex<f64> {
        -*self
    }
}

impl AddAssign for Complex<f64> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex<f64> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex<f64> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex<f64> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex<f64> {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex<f64> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::zero(), |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex<f64>> for Complex<f64> {
    fn sum<I: Iterator<Item = &'a Complex<f64>>>(iter: I) -> Self {
        iter.fold(Complex::zero(), |a, b| a + *b)
    }
}

impl From<f64> for Complex<f64> {
    #[inline]
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_hand_results() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert!(((a / b) * b - a).norm() < 1e-12);
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
        assert!((a.norm_sqr() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = Complex64::new(0.0, std::f64::consts::PI).exp();
        assert!((z - Complex64::new(-1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
        assert!((z.sqrt() * z.sqrt() - z).norm() < 1e-12);
    }
}
