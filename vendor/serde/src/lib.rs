//! Vendored stand-in for the `serde` crate.
//!
//! Because this workspace only ever serializes to and from JSON (via the
//! sibling `serde_json` vendor crate), the full serde visitor architecture is
//! replaced by a direct value-tree model: [`Serialize`] renders a type into a
//! [`Value`] tree and [`Deserialize`] rebuilds the type from one. The derive
//! macros (re-exported from `serde_derive`) generate impls of these traits
//! with the same external JSON shape real serde would produce for the
//! derives the workspace uses (named structs, newtype structs, and enums
//! with unit / newtype / struct variants, externally tagged).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Error, Number, Value};

use std::collections::{BTreeMap, HashMap};

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree, reporting a descriptive [`Error`] on shape
    /// mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! serialize_int {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $conv))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n.try_into_int::<$t>(),
                    other => Err(Error::custom(format!(
                        "expected {} but found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

serialize_int!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::custom(format!(
                "expected f64 but found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool but found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string but found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected char but found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array but found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected {expected}-tuple but array has {} items", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array (tuple) but found {}", other.kind()
                    ))),
                }
            }
        }
    )+};
}

tuple_impls!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output (HashMap iteration order is
        // randomized per process).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object but found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object but found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
