//! The JSON-shaped value tree shared by `serde` and `serde_json`.

use std::fmt;
use std::ops::Index;

/// A JSON number: integer or floating point.
///
/// Integers keep their exact 64-bit representation so that `u64` seeds and
/// counters round-trip without precision loss.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The numeric value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Exact conversion into an integer type, rejecting fractional and
    /// out-of-range values.
    pub fn try_into_int<T: TryFrom<i128>>(&self) -> Result<T, Error> {
        let wide: i128 = match *self {
            Number::I64(v) => v as i128,
            Number::U64(v) => v as i128,
            Number::F64(v) => {
                if v.fract() != 0.0 || !v.is_finite() {
                    return Err(Error::custom(format!("expected integer but found {v}")));
                }
                v as i128
            }
        };
        T::try_from(wide).map_err(|_| Error::custom(format!("integer {wide} out of range")))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (I64(a), U64(b)) | (U64(b), I64(a)) => a >= 0 && a as u64 == b,
            (I64(a), F64(b)) | (F64(b), I64(a)) => a as f64 == b,
            (U64(a), F64(b)) | (F64(b), U64(a)) => a as f64 == b,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        // Keep a decimal point so floats stay floats on
                        // re-parse (serde_json prints 1.0, not 1).
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no infinities; mirror serde_json's `null`.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.try_into_int::<u64>().ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.try_into_int::<i64>().ok(),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Object member access; yields `Null` for missing keys (matching
    /// `serde_json`'s forgiving indexing).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array()
            .and_then(|items| items.get(idx))
            .unwrap_or(&NULL)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}
