//! Vendored stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha stream cipher core with 8 rounds
//! (4 double-rounds), not a shortcut PRNG: seeding fills the 256-bit key,
//! the 64-bit block counter starts at zero, and each 64-byte block yields
//! eight `u64` outputs. The output stream differs from the real crate's
//! byte-level framing, but has the same statistical structure and the same
//! determinism guarantees, which is what the workspace relies on
//! (`SeedableRng::seed_from_u64` + reproducible sampling).

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// 64-bit stream id (nonce).
    stream: u64,
    /// Buffered output of the current block.
    buffer: [u64; 8],
    /// Next unread index into `buffer`; 8 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generate the next 64-byte block into the output buffer.
    fn refill(&mut self) {
        let input: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let mut state = input;
        for _ in 0..4 {
            // One double round: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            state[i] = state[i].wrapping_add(input[i]);
        }
        for i in 0..8 {
            self.buffer[i] = (state[2 * i] as u64) | ((state[2 * i + 1] as u64) << 32);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Set the stream id (nonce), resetting the block position.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 8;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index >= 8 {
            self.refill();
        }
        let out = self.buffer[self.index];
        self.index += 1;
        out
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 8],
            index: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2023);
        let mut b = ChaCha8Rng::seed_from_u64(2023);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_f64_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
