//! Vendored stand-in for the `rayon` crate.
//!
//! The API subset the workspace uses (`par_iter`, `into_par_iter`,
//! `par_chunks_mut`, `map`, `filter`, `enumerate`, `for_each`, `collect`,
//! `sum`, plus [`ThreadPoolBuilder`] / [`ThreadPool::install`]) is
//! implemented on top of `std::thread::scope`, so the parallelism is real —
//! work is split into one chunk per worker and executed on OS threads — but
//! the implementation is eager rather than work-stealing: each adapter
//! (`map`, `filter`) runs its closure in parallel immediately and
//! materializes the results.
//!
//! Semantics match rayon for the pure closures this workspace passes. The
//! difference from real rayon (no lazy fusion, no work stealing) costs
//! intermediate allocations, not correctness.
//!
//! Thread-count control: [`ThreadPool::install`] sets a thread-local
//! override read by every parallel driver called from inside the closure,
//! which is exactly how the search scheduler uses dedicated pools (the
//! "number of cores" axis of the paper's Fig. 5).

use std::cell::Cell;
use std::fmt;

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel drivers will use.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Run `f(index, &item)` for every item in parallel, returning results in
/// input order.
fn drive_map_ref<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(ci * chunk_len + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

/// Run `f(item)` for every owned item in parallel, returning results in
/// input order.
fn drive_map_owned<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    // Split the Vec into owned chunks, one per worker.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

/// An eager "parallel iterator": a materialized sequence whose combinators
/// execute in parallel.
pub struct ParSeq<T> {
    items: Vec<T>,
}

impl<T: Send> ParSeq<T> {
    /// Parallel map, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParSeq<R> {
        ParSeq {
            items: drive_map_owned(self.items, f),
        }
    }

    /// Parallel filter (predicate sees `&T`, like rayon's `filter`).
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, pred: F) -> ParSeq<T>
    where
        T: Sync,
    {
        let keep = drive_map_ref(&self.items, |_, t| pred(t));
        ParSeq {
            items: self
                .items
                .into_iter()
                .zip(keep)
                .filter_map(|(t, k)| k.then_some(t))
                .collect(),
        }
    }

    /// Pair items positionally with another parallel sequence, like rayon's
    /// `IndexedParallelIterator::zip`. Truncates to the shorter input.
    pub fn zip<U: Send>(self, other: ParSeq<U>) -> ParSeq<(T, U)> {
        ParSeq {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParSeq<(usize, T)> {
        ParSeq {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Parallel for-each.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        drive_map_owned(self.items, f);
    }

    /// Collect into any `FromIterator` container (`Vec<T>`,
    /// `Result<Vec<_>, E>`, …). Upstream adapters have already run in
    /// parallel; this is the ordered reduction.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Reduce with an identity, mirroring rayon's signature.
    pub fn reduce<ID: Fn() -> T + Sync, OP: Fn(T, T) -> T + Sync>(self, identity: ID, op: OP) -> T {
        self.items.into_iter().fold(identity(), op)
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// `.par_iter()` on slices and `Vec`s: yields `&T` items.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParSeq<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParSeq<&'a T> {
        ParSeq {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParSeq<&'a T> {
        ParSeq {
            items: self.iter().collect(),
        }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// Owning parallel iterator.
    fn into_par_iter(self) -> ParSeq<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParSeq<T> {
        ParSeq { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParSeq<usize> {
        ParSeq {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParSeq<u64> {
        ParSeq {
            items: self.collect(),
        }
    }
}

/// `.par_chunks_mut()` on slices: yields disjoint `&mut [T]` chunks.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `chunk_size` (last may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParSeq<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParSeq<&mut [T]> {
        ParSeq {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParSeq<&mut [T]> {
        ParSeq {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Everything call sites need in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this
/// implementation, present for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle fixing the worker count for parallel work run via
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing every parallel driver
    /// invoked (transitively, on this thread) inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        let result = f();
        POOL_OVERRIDE.with(|c| c.set(previous));
        result
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A fresh builder using the global default thread count.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Fix the worker count.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let default = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let n = self.num_threads.unwrap_or(default);
        if n == 0 {
            return Err(ThreadPoolBuildError);
        }
        Ok(ThreadPool { num_threads: n })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let v: Vec<usize> = (0..100).collect();
        let ok: Result<Vec<usize>, String> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = v
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn filter_and_sum_agree_with_sequential() {
        let total: usize = (0..10_000usize)
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .sum();
        let expected: usize = (0..10_000).filter(|x| x % 3 == 0).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn par_chunks_mut_sees_disjoint_chunks() {
        let mut v = vec![1u64; 64];
        v.par_chunks_mut(16).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x += i as u64;
            }
        });
        assert_eq!(v[0], 1);
        assert_eq!(v[63], 4);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn zero_threads_is_a_build_error() {
        assert!(ThreadPoolBuilder::new().num_threads(0).build().is_err());
    }

    #[test]
    fn work_actually_spans_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        v.par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect::<Vec<_>>();
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(
                ids.lock().unwrap().len() > 1,
                "expected work on multiple threads"
            );
        }
    }
}
