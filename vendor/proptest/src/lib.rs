//! Vendored stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: range and tuple strategies, [`Just`], `any::<T>()`,
//! [`Strategy::prop_map`] / [`Strategy::boxed`], `prop_oneof!`,
//! `proptest::collection::vec`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a ChaCha8 stream seeded
//! deterministically from the test name, so failures are reproducible.
//!
//! Deliberately missing versus real proptest: **shrinking** (a failing case
//! is reported as-is) and persistence of failure seeds. Test bodies run
//! `ProptestConfig::cases` times (default 64).

use std::ops::{Range, RangeInclusive};

pub use rand_chacha::ChaCha8Rng as TestRng;

use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A deterministic per-test generator: FNV-hash the test name into a seed.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// A value generator.
///
/// Object-safe so strategies can be boxed and mixed in `prop_oneof!`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Retry generation until `pred` accepts (up to a retry cap, then panic
    /// naming `reason`).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// A constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Mix of special values and a wide uniform band, biased toward
    /// magnitudes that exercise numerical code without overflowing it.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.gen_range(0..8u32) {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            _ => {
                let mag: f64 = rng.gen_range(-1.0e6..1.0e6);
                mag
            }
        }
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A one-of strategy over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run each property `cases` times with deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::rng_for_test("ranges_and_tuples");
        let strat = (1usize..5, -1.0f64..1.0, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = strat.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = crate::rng_for_test("oneof");
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collection_vec_respects_sizes() {
        let mut rng = crate::rng_for_test("vec_sizes");
        let ranged = collection::vec(0usize..10, 1..4);
        let fixed = collection::vec(0usize..10, 6);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert_eq!(fixed.generate(&mut rng).len(), 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0usize..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            if flip {
                prop_assert_ne!(x, 13);
            }
        }
    }
}
