//! Vendored stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness with criterion's API shape: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs one warm-up iteration and
//! then `sample_size` timed iterations (default 10), reporting min / mean /
//! max per-iteration times to stdout. No statistical analysis, baselines,
//! or HTML reports — this exists so `cargo bench` compiles and produces
//! usable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A new id from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    if bencher.timings.is_empty() {
        println!("bench {label:<40} (no iterations recorded)");
        return;
    }
    let total: Duration = bencher.timings.iter().sum();
    let mean = total / bencher.timings.len() as u32;
    let min = *bencher.timings.iter().min().unwrap();
    let max = *bencher.timings.iter().max().unwrap();
    println!(
        "bench {label:<40} mean {:>10}   min {:>10}   max {:>10}   ({} samples)",
        format_duration(mean),
        format_duration(min),
        format_duration(max),
        bencher.timings.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be ≥ 1");
        self.sample_size = n;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (separator line, for parity with criterion).
    pub fn finish(&self) {
        println!();
    }
}

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, 10, f);
        self
    }
}

/// Define a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            timings: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.timings.len(), 5);
        // 5 samples + 1 warm-up.
        assert_eq!(count, 6);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
