//! Vendored stand-in for the `rand` crate (0.8-style API surface).
//!
//! Implements exactly the subset this workspace uses: the [`RngCore`] /
//! [`SeedableRng`] traits, the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`, `fill`), uniform sampling over integer and float ranges, and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). The concrete generator lives
//! in the sibling `rand_chacha` vendor crate.
//!
//! Determinism contract: for a fixed seed the sampled streams are stable
//! across runs and platforms (everything reduces to integer arithmetic on
//! the underlying `next_u64` stream).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Byte seed of the generator.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly like
    /// `rand_core`'s default implementation does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the full bit stream
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// One sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches `rand 0.8`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// One uniform sample from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` via Lemire-style widening multiply with
/// rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_neg() % bound; // number of rejected low values
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..=1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let u: f64 = Standard::sample(self);
        u < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and element selection (subset of `rand::seq`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Minimal `rngs` module for API compatibility.
pub mod rngs {
    /// Re-export spot for named generators (none needed beyond `rand_chacha`).
    pub use super::SplitMix64Rng as SmallRng;
}

/// A tiny non-cryptographic generator (SplitMix64), exposed as `SmallRng`.
#[derive(Debug, Clone)]
pub struct SplitMix64Rng {
    state: u64,
}

impl RngCore for SplitMix64Rng {
    fn next_u64(&mut self) -> u64 {
        let mut sm = SplitMix64 { state: self.state };
        let out = sm.next_u64();
        self.state = sm.state;
        out
    }
}

impl SeedableRng for SplitMix64Rng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64Rng {
            state: u64::from_le_bytes(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SplitMix64Rng::seed_from_u64(42);
        let mut b = SplitMix64Rng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = SplitMix64Rng::seed_from_u64(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
