//! Vendored stand-in for the `serde_json` crate.
//!
//! Provides the functions the workspace calls — [`to_string`],
//! [`to_string_pretty`], [`from_str`], the [`json!`] macro and the
//! re-exported [`Value`] type — on top of the value-tree model of the
//! vendored `serde`. The emitted JSON is standard (RFC 8259): strings are
//! escaped, objects preserve insertion order, pretty output uses two-space
//! indentation like real serde_json.

pub use serde::value::{Error, Number, Value};

#[doc(hidden)]
pub use serde as __serde;

use std::fmt::Write as _;

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parse JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::from_value(&value)
}

/// Build a [`Value`] from a JSON-like literal or any serializable
/// expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::__serde::Serialize::to_value(&$other) };
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

mod parse {
    use super::{Error, Number, Value};

    pub fn parse(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom(format!("trailing characters at byte {pos}")));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while let Some(&b) = bytes.get(*pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                *pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {pos} but found {:?}",
                b as char,
                bytes.get(*pos).map(|&c| c as char),
                pos = *pos
            )))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => keyword(bytes, pos, "null", Value::Null),
            Some(b't') => keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::String),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "expected ',' or ']' but found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos)?;
                    entries.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "expected ',' or '}}' but found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {pos}",
                pos = *pos
            )))
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::custom(format!(
                "expected string at byte {pos}",
                pos = *pos
            )));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = parse_hex4(bytes, pos)?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if bytes.get(*pos + 1) == Some(&b'\\')
                                    && bytes.get(*pos + 2) == Some(&b'u')
                                {
                                    *pos += 2;
                                    let lo = parse_hex4(bytes, pos)?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always valid).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
        // `*pos` points at the 'u'; the four hex digits follow.
        let start = *pos + 1;
        let chunk = bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| Error::custom(format!("invalid \\u escape '{text}'")))?;
        *pos += 4;
        Ok(code)
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = json!({
            "name": "qas",
            "count": 3,
            "ratio": 0.5,
            "flags": [true, false, null]
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = json!({"a": [1, 2], "b": {"c": "x"}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": ["));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::String("line\nbreak \"quoted\" back\\slash \u{1F600}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn numbers_keep_integer_identity() {
        let big = u64::MAX - 1;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(big, back);
        assert_eq!(json!(5usize), from_str::<Value>("5").unwrap());
        assert_eq!(
            from_str::<Value>("5").unwrap(),
            from_str::<Value>("5.0").unwrap()
        );
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn indexing_missing_keys_yields_null() {
        let v = json!({"a": 1});
        assert_eq!(v["a"], json!(1));
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
