//! Vendored stand-in for the `thiserror` crate.
//!
//! Re-exports the [`Error`] derive implemented in `thiserror_impl`. The
//! derive supports the subset this workspace uses: enums whose variants
//! carry a `#[error("…")]` attribute with inline named-field interpolation
//! (`{field}`) or positional interpolation (`{0}`) for tuple variants. It
//! generates `std::fmt::Display` and `std::error::Error` impls.

pub use thiserror_impl::Error;
