//! A small hand-rolled parser for derive input items.
//!
//! Parses exactly the shapes the derives support: non-generic `struct` /
//! `enum` items. Attributes are recognized structurally (`#` followed by a
//! bracket group), and the `#[error("...")]` attribute payload is preserved
//! verbatim for the `thiserror` stand-in, which reuses this module via
//! source inclusion.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
pub enum Fields {
    /// `{ a: T, b: U }` — the field names, in declaration order.
    Named(Vec<String>),
    /// `(T, U, …)` — the arity.
    Unnamed(usize),
    /// No fields.
    Unit,
}

/// One enum variant.
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Variant fields.
    pub fields: Fields,
    /// The raw contents of a `#[error(...)]` attribute on this variant, if
    /// any (used by the thiserror stand-in; serde ignores it).
    #[allow(dead_code)]
    pub error_attr: Option<String>,
}

/// Struct vs enum.
pub enum ItemKind {
    /// A struct with the given fields (unused when included into
    /// `thiserror_impl`, which only derives on enums).
    Struct(#[allow(dead_code)] Fields),
    /// An enum with the given variants.
    Enum(Vec<Variant>),
}

/// A parsed derive input.
pub struct Item {
    /// Type name.
    pub name: String,
    /// Struct or enum body.
    pub kind: ItemKind,
}

/// Parse a derive input stream into an [`Item`].
pub fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde/thiserror derives do not support generic types (deriving on `{name}`)"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_field_names(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Unnamed(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item {
                name,
                kind: ItemKind::Struct(fields),
            })
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item {
                name,
                kind: ItemKind::Enum(parse_variants(body)?),
            })
        }
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Skip attributes at `pos`, returning the raw contents of any
/// `#[error(...)]` attribute encountered.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> Option<String> {
    let mut error_attr = None;
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "error" {
                    error_attr = Some(args.stream().to_string());
                }
            }
            *pos += 2;
        } else {
            *pos += 1;
        }
    }
    error_attr
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        // `pub(crate)`, `pub(super)`, …
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Field names of a named-field body `{ a: T, b: U }`.
fn parse_named_field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut names = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut pos);
        names.push(name);
        // Skip the separating comma, if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(names)
}

/// Advance past a type, stopping at a top-level `,` (angle-bracket depth
/// tracked; bracketed/parenthesized sub-streams arrive as single groups).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

/// Arity of a tuple body `(T, U)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let error_attr = skip_attributes(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_field_names(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Unnamed(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            while let Some(tok) = tokens.get(pos) {
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                pos += 1;
            }
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant {
            name,
            fields,
            error_attr,
        });
    }
    Ok(variants)
}
