//! Vendored stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable offline, so the input item is parsed
//! directly from the `proc_macro` token stream and the generated impls are
//! rendered as source strings. Supported item shapes — which cover every
//! derive in this workspace — are:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, wider tuples
//!   as arrays),
//! * enums whose variants are unit, newtype, tuple, or struct-like
//!   (externally tagged, like real serde's default representation).
//!
//! Generics are intentionally unsupported; deriving on a generic type is a
//! compile error naming this limitation.

use proc_macro::TokenStream;

mod parse;

use parse::{Fields, Item, ItemKind};

/// Derive `serde::Serialize` (value-tree flavour; see the vendored `serde`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (value-tree flavour; see the vendored
/// `serde`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse::parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        ItemKind::Struct(Fields::Unnamed(arity)) => match arity {
            1 => "::serde::Serialize::to_value(&self.0)".to_string(),
            n => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        },
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Object(Vec::new())".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                        ));
                    }
                    Fields::Unnamed(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(fields))])\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(value.get({f:?}).unwrap_or(&::serde::Value::Null)).map_err(|e| ::serde::Error::custom(format!(\"{name}.{f}: {{e}}\")))?,\n"
                ));
            }
            format!(
                "if value.as_object().is_none() {{\n\
                 return Err(::serde::Error::custom(format!(\"expected object for {name} but found {{}}\", value.kind())));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        ItemKind::Struct(Fields::Unnamed(arity)) => match arity {
            1 => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
            n => {
                let gets: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => Ok({name}({gets})),\n\
                     other => Err(::serde::Error::custom(format!(\"expected {n}-element array for {name} but found {{}}\", other.kind()))),\n\
                     }}",
                    gets = gets.join(", ")
                )
            }
        },
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => return Ok({name}::{vname}),\n"));
                        // Also accept {"Variant": null} for symmetry.
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{ let _ = payload; Ok({name}::{vname}) }},\n"
                        ));
                    }
                    Fields::Unnamed(arity) => {
                        if *arity == 1 {
                            tagged_arms.push_str(&format!(
                                "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),\n"
                            ));
                        } else {
                            let gets: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            tagged_arms.push_str(&format!(
                                "{vname:?} => match payload {{\n\
                                 ::serde::Value::Array(items) if items.len() == {arity} => Ok({name}::{vname}({gets})),\n\
                                 other => Err(::serde::Error::custom(format!(\"expected {arity}-element array for {name}::{vname} but found {{}}\", other.kind()))),\n\
                                 }},\n",
                                gets = gets.join(", ")
                            ));
                        }
                    }
                    Fields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(payload.get({f:?}).unwrap_or(&::serde::Value::Null)).map_err(|e| ::serde::Error::custom(format!(\"{name}::{vname}.{f}: {{e}}\")))?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => Ok({name}::{vname} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(tag) = value {{\n\
                 match tag.as_str() {{\n{unit_arms}\
                 other => return Err(::serde::Error::custom(format!(\"unknown {name} variant '{{other}}'\"))),\n\
                 }}\n\
                 }}\n\
                 let entries = value.as_object().ok_or_else(|| ::serde::Error::custom(format!(\"expected string or object for {name} but found {{}}\", value.kind())))?;\n\
                 if entries.len() != 1 {{\n\
                 return Err(::serde::Error::custom(format!(\"expected single-key object for {name} but found {{}} keys\", entries.len())));\n\
                 }}\n\
                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => Err(::serde::Error::custom(format!(\"unknown {name} variant '{{other}}'\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
