//! The `Error` derive behind the vendored `thiserror` stand-in.
//!
//! Shares the hand-rolled item parser with `serde_derive` (via `#[path]`
//! inclusion — proc-macro crates cannot export library items). For each
//! enum variant the `#[error("…")]` attribute payload is re-emitted as the
//! `write!` format argument; named fields are brought into scope by
//! destructuring so Rust 2021 inline format captures (`{field}`) resolve,
//! and tuple fields are passed positionally (`{0}`, `{1}`, …).

use proc_macro::TokenStream;

#[path = "../../serde_derive/src/parse.rs"]
mod parse;

use parse::{Fields, Item, ItemKind};

/// Derive `Display` + `std::error::Error` from `#[error("…")]` attributes.
#[proc_macro_derive(Error, attributes(error, source, from))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    match parse::parse_item(input) {
        Ok(item) => match gen_error(&item) {
            Ok(code) => code
                .parse()
                .expect("thiserror derive generated invalid Rust"),
            Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
        },
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn gen_error(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let variants = match &item.kind {
        ItemKind::Enum(variants) => variants,
        ItemKind::Struct(_) => {
            return Err(format!(
                "the vendored thiserror derive only supports enums (deriving on `{name}`)"
            ))
        }
    };
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let fmt = v.error_attr.as_ref().ok_or_else(|| {
            format!("variant `{name}::{vname}` is missing its #[error(\"…\")] attribute")
        })?;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!("{name}::{vname} => write!(f, {fmt}),\n"));
            }
            Fields::Named(fields) => {
                let binds = fields.join(", ");
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => write!(f, {fmt}),\n"
                ));
            }
            Fields::Unnamed(arity) => {
                let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => write!(f, {fmt}, {binds}),\n",
                    binds = binds.join(", ")
                ));
            }
        }
    }
    Ok(format!(
        "#[automatically_derived]\n\
         impl ::std::fmt::Display for {name} {{\n\
         #[allow(unused_variables)]\n\
         fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         match self {{\n{arms}}}\n\
         }}\n\
         }}\n\
         #[automatically_derived]\n\
         impl ::std::error::Error for {name} {{}}\n"
    ))
}
