//! Quickstart: search for a QAOA mixer on a single Erdős–Rényi graph.
//!
//! This is the smallest end-to-end use of the QArchSearch reproduction:
//! generate a graph, configure a search, start a **search session** whose
//! event stream narrates progress live, and inspect the discovered mixer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qarchsearch_suite::prelude::*;

fn main() {
    // 1. A 10-node Erdős–Rényi instance, the same family the paper profiles.
    let graph = Graph::connected_erdos_renyi(10, 0.5, 42, 50);
    println!("training graph: {graph}");

    // 2. Configure the search: depths 1..=2, mixers of up to 2 gates from the
    //    paper's alphabet {rx, ry, rz, h, p}, COBYLA with a modest budget.
    let config = SearchConfig::builder()
        .max_depth(2)
        .max_gates_per_mixer(2)
        .optimizer_budget(60)
        .seed(7)
        .build();
    println!(
        "search space: {} candidate mixers per depth × {} depths",
        config
            .alphabet
            .all_combinations_up_to(config.max_gates_per_mixer)
            .len(),
        config.max_depth
    );

    // 3. Start the search session (parallel mode is the default) and follow
    //    its typed event stream while it runs. The handle also supports
    //    `cancel()` and `checkpoint()` — see the README's "Search sessions
    //    and serving" section.
    let handle = SearchDriver::new(config)
        .start(&[graph])
        .expect("search starts");
    for event in handle.events().iter() {
        match event {
            SearchEvent::DepthStarted { depth, proposed } => {
                println!("depth {depth}: evaluating {proposed} candidates");
            }
            SearchEvent::DepthCompleted {
                depth, best_energy, ..
            } => {
                println!("depth {depth}: best energy {best_energy:.4}");
            }
            _ => {}
        }
    }
    let outcome = handle.wait().expect("search run");

    // 4. Report.
    println!();
    println!("best mixer        : {}", outcome.best.mixer_label);
    println!("found at depth    : {}", outcome.best.depth);
    println!("mean energy <C>   : {:.4}", outcome.best.energy);
    println!("approximation r   : {:.4}", outcome.best.approx_ratio);
    println!("candidates tried  : {}", outcome.num_candidates_evaluated);
    println!("wall-clock        : {:.2}s", outcome.total_elapsed_seconds);
    for d in &outcome.depth_results {
        println!(
            "  depth {}: best energy {:.4} in {:.2}s",
            d.depth, d.best_energy, d.elapsed_seconds
        );
    }
}
