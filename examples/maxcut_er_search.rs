//! Max-Cut mixer search over an Erdős–Rényi dataset, comparing the serial and
//! parallel schedulers — a miniature of the paper's §3.1 profiling experiment
//! (Figs. 4–5).
//!
//! ```text
//! cargo run --release --example maxcut_er_search
//! ```

use qarchsearch_suite::prelude::*;
use std::time::Instant;

fn main() {
    // The profiling dataset: ER graphs with varying connectivity.
    let dataset = graphs::datasets::erdos_renyi_dataset(4, 10, 2023);
    println!("dataset: {} Erdős–Rényi graphs on 10 nodes", dataset.len());
    for (i, g) in dataset.iter().enumerate() {
        println!(
            "  graph {i}: {} edges (density {:.2})",
            g.num_edges(),
            g.density()
        );
    }

    let config = SearchConfig::builder()
        .max_depth(2)
        .max_gates_per_mixer(2)
        .optimizer_budget(40)
        .seed(1)
        // Paper-faithful full-budget mode, so serial vs. parallel differ only
        // in scheduling (drop this line to let the parallel mode's default
        // budget-aware pipeline prune losers early and warm-start depth 2).
        .no_prune()
        .build();

    // Serial search (Algorithm 1 as written).
    let serial_start = Instant::now();
    let serial = SearchDriver::new(config.clone().with_mode(ExecutionMode::Serial))
        .run(&dataset)
        .expect("serial search");
    let serial_elapsed = serial_start.elapsed().as_secs_f64();

    // Parallel search (outer level over candidates).
    let parallel_start = Instant::now();
    let parallel = SearchDriver::new(config.with_mode(ExecutionMode::Parallel))
        .run(&dataset)
        .expect("parallel search");
    let parallel_elapsed = parallel_start.elapsed().as_secs_f64();

    println!();
    println!(
        "serial   : best {} with <C> = {:.4} in {:.2}s",
        serial.best.mixer_label, serial.best.energy, serial_elapsed
    );
    println!(
        "parallel : best {} with <C> = {:.4} in {:.2}s",
        parallel.best.mixer_label, parallel.best.energy, parallel_elapsed
    );
    if parallel_elapsed > 0.0 {
        println!("speedup  : {:.2}x", serial_elapsed / parallel_elapsed);
    }

    // Both schedulers explore the same space, so the winners agree.
    assert_eq!(
        serial.num_candidates_evaluated,
        parallel.num_candidates_evaluated
    );
    println!(
        "\nper-depth serial timings (the series Fig. 4 plots): {:?}",
        serial
            .depth_results
            .iter()
            .map(|d| (d.depth, format!("{:.2}s", d.elapsed_seconds)))
            .collect::<Vec<_>>()
    );
}
