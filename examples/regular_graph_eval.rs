//! Evaluate the discovered ("qnas") mixer against the standard RX baseline on
//! random 4-regular graphs — a miniature of the paper's §3.2 generalization
//! study (Figs. 7–9).
//!
//! ```text
//! cargo run --release --example regular_graph_eval
//! ```

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::evaluator::{Evaluator, EvaluatorConfig};

fn main() {
    // The evaluation dataset: random 4-regular graphs on 10 nodes.
    let dataset = graphs::datasets::random_regular_dataset(4, 10, 4, 99);
    println!(
        "dataset: {} random 4-regular graphs on 10 nodes",
        dataset.len()
    );

    let evaluator = Evaluator::new(EvaluatorConfig {
        budget: 60,
        ..EvaluatorConfig::default()
    });

    // Fig. 7: candidate mixers at p = 1.
    println!("\napproximation ratios at p = 1 (Fig. 7):");
    for mixer in Mixer::fig7_candidates() {
        let result = evaluator.evaluate(&dataset, &mixer, 1).expect("evaluation");
        println!(
            "  {:<14} r = {:.4}",
            mixer.label(),
            result.mean_approx_ratio
        );
    }

    // Figs. 8–9: baseline vs searched mixer across depths.
    println!("\nbaseline vs qnas across depths (Figs. 8–9):");
    for p in 1..=3usize {
        let baseline = evaluator
            .evaluate(&dataset, &Mixer::baseline(), p)
            .expect("evaluation");
        let qnas = evaluator
            .evaluate(&dataset, &Mixer::qnas(), p)
            .expect("evaluation");
        println!(
            "  p = {p}: baseline r = {:.4}   qnas r = {:.4}",
            baseline.mean_approx_ratio, qnas.mean_approx_ratio
        );
    }
    println!(
        "\n(The paper finds the two comparable on regular graphs, with qnas ahead on ER graphs.)"
    );
}
