//! Using a custom gate alphabet and a learned predictor.
//!
//! The paper's released search is random/exhaustive over a fixed five-gate
//! alphabet; this example shows the two extension points a downstream user is
//! most likely to touch:
//!
//! * restricting or extending the alphabet `A_R`, and
//! * swapping the predictor for the policy-gradient controller (the
//!   "deep neural network based search" direction of §4).
//!
//! ```text
//! cargo run --release --example custom_alphabet
//! ```

use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::evaluator::{Evaluator, EvaluatorConfig};
use qarchsearch_suite::qarchsearch::predictor::{PolicyGradientPredictor, Predictor};
use qarchsearch_suite::qarchsearch::search::SearchStrategy;

fn main() {
    // A reduced alphabet: only rotation gates, no Cliffords.
    let alphabet = GateAlphabet::from_mnemonics(&["rx", "ry", "rz"]).expect("valid alphabet");
    println!("alphabet: {alphabet} (|A_R| = {})", alphabet.len());

    let graph = Graph::connected_erdos_renyi(8, 0.5, 5, 50);

    // Option 1: run the built-in search with an ε-greedy strategy.
    let config = SearchConfig::builder()
        .alphabet(alphabet.clone())
        .max_depth(1)
        .max_gates_per_mixer(2)
        .optimizer_budget(40)
        .strategy(SearchStrategy::EpsilonGreedy {
            samples_per_depth: 8,
            epsilon: 0.4,
        })
        .seed(11)
        .build();
    let outcome = SearchDriver::new(config.with_mode(ExecutionMode::Serial))
        .run(std::slice::from_ref(&graph))
        .expect("search");
    println!(
        "epsilon-greedy search: best {} with <C> = {:.4}",
        outcome.best.mixer_label, outcome.best.energy
    );

    // Option 2: drive the predictor loop manually (Fig. 1's reward loop).
    let evaluator = Evaluator::new(EvaluatorConfig {
        budget: 40,
        ..EvaluatorConfig::default()
    });
    let builder = QBuilder::new(alphabet);
    let mut predictor = PolicyGradientPredictor::new(builder.alphabet().clone(), 0.3, 13);

    let mut best: Option<(String, f64)> = None;
    for step in 0..10 {
        let gates = predictor.propose(2);
        let mixer = builder.build_mixer(&gates).expect("mixer");
        let result = evaluator
            .evaluate_on_graph(&graph, &mixer, 1)
            .expect("evaluation");
        predictor.feedback(&gates, result.approx_ratio);
        let better = best
            .as_ref()
            .map(|(_, e)| result.energy > *e)
            .unwrap_or(true);
        if better {
            best = Some((mixer.label(), result.energy));
        }
        println!(
            "  step {step}: {} -> <C> = {:.4}",
            mixer.label(),
            result.energy
        );
    }
    let (label, energy) = best.expect("at least one candidate");
    println!("policy-gradient loop: best {label} with <C> = {energy:.4}");
}
