//! `qas` — command-line front end for the QArchSearch reproduction.
//!
//! Subcommands:
//!
//! * `qas search`   — run a mixer search over a generated graph dataset
//! * `qas serve`    — multi-job search server speaking JSON-lines on
//!   stdin/stdout (or a local TCP socket with `--port`)
//! * `qas evaluate` — train a named mixer (baseline / qnas / custom) on a dataset
//! * `qas problems` — list the shipped cost-Hamiltonian families
//! * `qas info`     — print the search-space accounting for a configuration
//!
//! Arguments use simple `--key value` pairs (no external CLI dependency).
//! Run `qas help` for the full list.

use qarchsearch_suite::graphs::ProblemKind;
use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::constraints::ConstraintSet;
use qarchsearch_suite::qarchsearch::evaluator::{Evaluator, EvaluatorConfig};
use qarchsearch_suite::qarchsearch::report::SearchReport;
use qarchsearch_suite::qarchsearch::search::SearchStrategy;
use qarchsearch_suite::serde_json::{self, json, Value};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;

const HELP: &str = "qas — QArchSearch (Rust reproduction) command line

USAGE:
    qas <search|serve|evaluate|problems|info|help> [--key value ...]

COMMON OPTIONS:
    --graphs N        number of graphs in the dataset        (default 4)
    --nodes N         nodes per graph                        (default 10)
    --dataset KIND    er | regular                           (default er)
    --seed N          RNG seed                               (default 2023)
    --problem NAME    cost Hamiltonian: maxcut | wmaxcut | mis | sk | partition
                      (default maxcut; run `qas problems` for details)
    --backend NAME    statevector | tensor-network | tensor-network-sequential
                      (default tensor-network)
    --optimizer NAME  cobyla | nelder-mead | spsa | random-search | grid-search
                      (default cobyla)

SEARCH OPTIONS (qas search):
    --pmax N          maximum QAOA depth                     (default 2)
    --kmax N          maximum gates per mixer                (default 2)
    --budget N        optimizer evaluations per candidate    (default 60)
    --alphabet LIST   comma-separated mnemonics, e.g. rx,ry,h (default rx,ry,rz,h,p)
    --strategy S      exhaustive | random:N | egreedy:N | policy:N (default exhaustive)
    --threads N       worker count of the evaluation pipeline (default: all cores)
    --restarts N      optimizer restarts per candidate       (default 1)
    --hardware-aware  apply the hardware-aware constraint preset
    --json            machine-readable SearchReport JSON on stdout,
                      human summary on stderr (shares the serve serialization)

SEARCH PIPELINE OPTIONS (qas search):
    --no-prune        paper-faithful mode: full budget for every candidate,
                      no successive halving, no warm starts, no gate
    --serial          run the serial Algorithm-1 scheduler (implies the
                      paper-faithful full-budget behaviour)
    --first-rung N    budget of the first halving rung       (default 20)
    --eta N           halving rate: keep top 1/eta per rung, budget x eta (default 4)
    --no-warm-start   do not seed depth p from the best depth p-1 angles
    --gate N          admit at most N candidates per depth, ranked by the
                      learned predictor (engages from depth 2 on)

SERVE OPTIONS (qas serve):
    --workers N       concurrent search jobs                 (default 2)
    --queue N         bounded queue capacity                 (default 16)
    --retain N        terminal job records kept (oldest evicted) (default 256)
    --port P          listen on 127.0.0.1:P instead of stdin/stdout
                      (one client connection served at a time; jobs still
                      run concurrently)
    --state-dir DIR   durable mode: journal every job to DIR and recover
                      on restart (incomplete jobs resume from their last
                      checkpoint, bit-identical to an uninterrupted run)
    --checkpoint-every N  journal a checkpoint every N completed depths
                      (default 1; durable mode only)
    --cache-capacity N  result-cache entries kept (LRU)       (default 256)
    --cache-dir DIR   persist the result cache to DIR (its own journal;
                      must differ from --state-dir)
    --no-cache        disable result caching, request coalescing, and
                      cross-job evaluator sharing (every submission runs)

    Protocol: one JSON request per line, one JSON response per line.
      {\"cmd\":\"submit\",\"priority\":0,\"name\":\"j1\",\"search\":{<search options>}}
      {\"cmd\":\"status\",\"job\":1}      {\"cmd\":\"events\",\"job\":1,\"since\":0}
      {\"cmd\":\"cancel\",\"job\":1}      {\"cmd\":\"result\",\"job\":1}
      {\"cmd\":\"wait\",\"job\":1}        {\"cmd\":\"forget\",\"job\":1}
      {\"cmd\":\"jobs\"}                 {\"cmd\":\"stats\"}
      {\"cmd\":\"shutdown\"}
    Identical submissions (same search config, graphs, and seed) are served
    from the result cache (`cache_hit` in the result envelope, a
    `cache_hit` event in the stream) or coalesced onto the in-flight
    execution (`coalesced`); `stats` reports both caches' counters.
    `search` takes the `qas search` options by name (booleans for flags),
    e.g. {\"pmax\":2,\"kmax\":1,\"budget\":30,\"serial\":true}. `submit` also
    accepts \"timeout_secs\" (deadline -> timed-out), \"max_retries\" and
    \"retry_backoff_ms\" (transient-failure retries, exponential backoff).

EVALUATE OPTIONS (qas evaluate):
    --mixer M         baseline | qnas | comma-separated gates (default qnas)
    --depth N         QAOA depth p                           (default 1)
    --budget N        optimizer evaluations                  (default 60)

EXAMPLES:
    qas search --pmax 2 --kmax 2 --threads 8
    qas search --pmax 3 --kmax 2 --no-prune --serial    # paper-faithful
    qas search --problem sk --pmax 2 --kmax 2            # spin-glass search
    qas search --json --pmax 1 --kmax 1 > report.json
    qas serve --workers 4 < jobs.jsonl
    qas serve --state-dir runs/serve-state --workers 4   # crash-safe
    qas evaluate --mixer rx,ry --dataset regular --depth 2
    qas evaluate --problem mis --mixer qnas --backend statevector
    qas problems
    qas info --pmax 4 --kmax 4
";

fn parse_args(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut options = HashMap::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(key) = arg.strip_prefix("--") {
            // Flag-style options have no value; key-value options consume the
            // next argument.
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value {
                options.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        } else {
            flags.push(arg.clone());
            i += 1;
        }
    }
    (options, flags)
}

fn opt_usize(options: &HashMap<String, String>, key: &str, default: usize) -> usize {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_u64(options: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_dataset(options: &HashMap<String, String>) -> Vec<Graph> {
    let count = opt_usize(options, "graphs", 4);
    let nodes = opt_usize(options, "nodes", 10);
    let seed = opt_u64(options, "seed", 2023);
    match options.get("dataset").map(|s| s.as_str()).unwrap_or("er") {
        "regular" => graphs::datasets::random_regular_dataset(count, nodes, 4, seed),
        _ => graphs::datasets::erdos_renyi_dataset(count, nodes, seed),
    }
}

fn build_alphabet(options: &HashMap<String, String>) -> Result<GateAlphabet, String> {
    match options.get("alphabet") {
        None => Ok(GateAlphabet::paper_default()),
        Some(spec) => {
            let names: Vec<&str> = spec.split(',').map(|s| s.trim()).collect();
            GateAlphabet::from_mnemonics(&names).map_err(|e| e.to_string())
        }
    }
}

fn build_strategy(options: &HashMap<String, String>) -> Result<SearchStrategy, String> {
    let spec = options
        .get("strategy")
        .map(|s| s.as_str())
        .unwrap_or("exhaustive");
    let parse_count = |s: &str| -> Result<usize, String> {
        s.split(':')
            .nth(1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("strategy '{s}' needs a sample count, e.g. random:20"))
    };
    match spec {
        "exhaustive" => Ok(SearchStrategy::Exhaustive),
        s if s.starts_with("random") => Ok(SearchStrategy::Random {
            samples_per_depth: parse_count(s)?,
        }),
        s if s.starts_with("egreedy") => Ok(SearchStrategy::EpsilonGreedy {
            samples_per_depth: parse_count(s)?,
            epsilon: 0.3,
        }),
        s if s.starts_with("policy") => Ok(SearchStrategy::PolicyGradient {
            samples_per_depth: parse_count(s)?,
            learning_rate: 0.2,
        }),
        other => Err(format!("unknown strategy '{other}'")),
    }
}

/// The three kind enums parse through their `FromStr` impls, which share
/// one `graphs::ParseKindError`; the CLI only stringifies it.
fn build_problem(options: &HashMap<String, String>) -> Result<ProblemKind, String> {
    let seed = opt_u64(options, "seed", 2023);
    match options.get("problem") {
        None => Ok(ProblemKind::MaxCut),
        Some(spec) => spec
            .parse::<ProblemKind>()
            .map(|kind| kind.reseeded(seed))
            .map_err(|e| e.to_string()),
    }
}

fn build_backend(options: &HashMap<String, String>) -> Result<Option<Backend>, String> {
    options
        .get("backend")
        .map(|spec| spec.parse::<Backend>().map_err(|e| e.to_string()))
        .transpose()
}

fn build_optimizer(options: &HashMap<String, String>) -> Result<Option<OptimizerKind>, String> {
    options
        .get("optimizer")
        .map(|spec| spec.parse::<OptimizerKind>().map_err(|e| e.to_string()))
        .transpose()
}

fn build_mixer(options: &HashMap<String, String>) -> Result<Mixer, String> {
    match options.get("mixer").map(|s| s.as_str()).unwrap_or("qnas") {
        "baseline" | "rx" => Ok(Mixer::baseline()),
        "qnas" => Ok(Mixer::qnas()),
        spec => {
            let gates: Result<Vec<qcircuit::Gate>, String> = spec
                .split(',')
                .map(|s| s.trim().parse::<qcircuit::Gate>())
                .collect();
            Mixer::new(gates?).map_err(|e| e.to_string())
        }
    }
}

/// Assemble a [`SearchConfig`] from CLI-style options + flags. Shared
/// verbatim by `qas search` and the `serve` protocol's `submit` command,
/// so both front doors accept the same knobs.
fn build_search_config(
    options: &HashMap<String, String>,
    flags: &[String],
) -> Result<SearchConfig, String> {
    let alphabet = build_alphabet(options)?;
    let strategy = build_strategy(options)?;
    let k_max = opt_usize(options, "kmax", 2);
    let has_flag = |name: &str| flags.iter().any(|f| f == name);

    let mut builder = SearchConfig::builder()
        .alphabet(alphabet)
        .max_depth(opt_usize(options, "pmax", 2))
        .max_gates_per_mixer(k_max)
        .optimizer_budget(opt_usize(options, "budget", 60))
        .strategy(strategy)
        .problem(build_problem(options)?)
        .seed(opt_u64(options, "seed", 2023));
    if let Some(backend) = build_backend(options)? {
        builder = builder.backend(backend);
    }
    if let Some(optimizer) = build_optimizer(options)? {
        builder = builder.optimizer(optimizer);
    }
    if has_flag("hardware-aware") {
        builder = builder.constraints(ConstraintSet::hardware_aware(k_max));
    }
    let threads = options.get("threads").and_then(|v| v.parse().ok());
    if let Some(t) = threads {
        builder = builder.threads(t);
    }
    // Pipeline flags: --no-prune is the paper-faithful escape hatch;
    // --serial additionally runs Algorithm 1 as written.
    if has_flag("serial") {
        builder = builder.serial().no_prune();
    } else if has_flag("no-prune") {
        builder = builder.no_prune();
    } else {
        builder = builder.halving(
            opt_usize(options, "first-rung", 20),
            opt_usize(options, "eta", 4),
        );
        if has_flag("no-warm-start") {
            builder = builder.warm_start(false);
        }
        if let Some(cap) = options.get("gate").and_then(|v| v.parse().ok()) {
            builder = builder.predictor_gate(cap);
        }
    }
    let mut config = builder.build();
    config.evaluator.restarts = opt_usize(options, "restarts", 1);
    Ok(config)
}

fn print_search_human(outcome: &SearchOutcome, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "problem          : {}", outcome.problem)?;
    writeln!(out, "best mixer       : {}", outcome.best.mixer_label)?;
    writeln!(out, "found at depth   : {}", outcome.best.depth)?;
    writeln!(out, "mean energy <C>  : {:.4}", outcome.best.energy)?;
    writeln!(out, "approximation r  : {:.4}", outcome.best.approx_ratio)?;
    writeln!(
        out,
        "candidates tried : {}",
        outcome.num_candidates_evaluated
    )?;
    writeln!(
        out,
        "optimizer evals  : {} (full-budget baseline: {}, {:.1}x saved)",
        outcome.total_optimizer_evaluations,
        outcome.full_budget_evaluations,
        outcome.budget_savings_factor()
    )?;
    writeln!(
        out,
        "wall-clock       : {:.2}s",
        outcome.total_elapsed_seconds
    )?;
    for d in &outcome.depth_results {
        let pruned = d
            .candidates
            .iter()
            .filter(|c| c.pruned_at_rung.is_some())
            .count();
        write!(
            out,
            "  depth {}: best energy {:.4} in {:.2}s ({} candidates",
            d.depth,
            d.best_energy,
            d.elapsed_seconds,
            d.candidates.len()
        )?;
        if d.gated_out > 0 {
            write!(out, ", {} gated", d.gated_out)?;
        }
        if pruned > 0 {
            write!(out, ", {pruned} pruned")?;
        }
        writeln!(out, ")")?;
        for (ri, rung) in d.rungs.iter().enumerate() {
            writeln!(
                out,
                "    rung {ri}: {} -> {} candidates at budget {} ({} evals)",
                rung.entrants, rung.survivors, rung.target_budget, rung.evaluations
            )?;
        }
    }
    Ok(())
}

fn cmd_search(options: &HashMap<String, String>, flags: &[String]) -> Result<(), String> {
    let dataset = build_dataset(options);
    let config = build_search_config(options, flags)?;
    let outcome = SearchDriver::new(config)
        .run(&dataset)
        .map_err(|e| e.to_string())?;

    let has_flag = |name: &str| flags.iter().any(|f| f == name);
    if has_flag("json") {
        // Machine-readable report on stdout, human narration on stderr —
        // the same SearchReport serialization the serve protocol returns.
        print_search_human(&outcome, &mut std::io::stderr()).map_err(|e| e.to_string())?;
        println!("{}", SearchReport::from(&outcome).to_json());
    } else {
        print_search_human(&outcome, &mut std::io::stdout()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// qas serve — the JSON-lines multi-job front door.

/// Convert a protocol `search` object into the CLI option map + flags, so
/// `submit` accepts exactly the `qas search` knobs.
fn search_object_to_options(
    search: &Value,
) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut options = HashMap::new();
    let mut flags = Vec::new();
    let Some(entries) = search.as_object() else {
        return Err("'search' must be an object of qas search options".to_string());
    };
    for (key, value) in entries {
        match value {
            Value::Bool(true) => flags.push(key.clone()),
            Value::Bool(false) => {}
            Value::String(s) => {
                options.insert(key.clone(), s.clone());
            }
            Value::Number(_) => {
                // Integers format without a trailing fraction, matching the
                // CLI's string parsing.
                let rendered = if let Some(u) = value.as_u64() {
                    u.to_string()
                } else if let Some(i) = value.as_i64() {
                    i.to_string()
                } else {
                    value.as_f64().unwrap_or(0.0).to_string()
                };
                options.insert(key.clone(), rendered);
            }
            other => {
                return Err(format!(
                    "search option '{key}' must be a string, number or boolean (got {})",
                    other.kind()
                ));
            }
        }
    }
    Ok((options, flags))
}

fn job_id_of(request: &Value) -> Result<JobId, String> {
    request
        .get("job")
        .and_then(|v| v.as_u64())
        .map(JobId)
        .ok_or_else(|| "request needs a numeric 'job' field".to_string())
}

fn status_value(status: &JobStatus) -> Value {
    serde_json::to_value(status).unwrap_or(Value::Null)
}

fn result_response(
    server: &JobServer,
    id: JobId,
    result: Option<Result<SearchOutcome, SearchError>>,
) -> Result<Value, String> {
    let status = server.status(id).map_err(|e| e.to_string())?;
    // Serialize the state the same way `status`/`jobs` do (serde's enum
    // tag), so clients match one spelling everywhere.
    let state = serde_json::to_value(&status.state).unwrap_or(Value::Null);
    match result {
        None => Ok(json!({
            "ok": true,
            "job": (id.0),
            "state": state,
            "done": false,
        })),
        Some(Ok(outcome)) => {
            let mut search_report = SearchReport::from(&outcome);
            search_report.served_from_cache = status.cache_hit;
            let report = serde_json::to_value(&search_report).map_err(|e| e.to_string())?;
            Ok(json!({
                "ok": true,
                "job": (id.0),
                "state": state,
                "done": true,
                "cache_hit": (status.cache_hit),
                "coalesced": (status.coalesced),
                "report": report,
            }))
        }
        Some(Err(e)) => Ok(json!({
            "ok": true,
            "job": (id.0),
            "state": state,
            "done": true,
            "error": (e.to_string()),
        })),
    }
}

/// Handle one protocol line. Returns the JSON response and whether the
/// server should shut down afterwards.
fn handle_serve_line(server: &JobServer, line: &str) -> (Value, bool) {
    let fail = |message: String| (json!({ "ok": false, "error": message }), false);
    let request: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return fail(format!("invalid JSON: {e}")),
    };
    let Some(cmd) = request.get("cmd").and_then(|c| c.as_str()) else {
        return fail("request needs a string 'cmd' field".to_string());
    };
    let response = match cmd {
        "submit" => (|| -> Result<Value, String> {
            let search = request
                .get("search")
                .ok_or_else(|| "submit needs a 'search' object".to_string())?;
            let (options, flags) = search_object_to_options(search)?;
            let config = build_search_config(&options, &flags)?;
            let graphs = build_dataset(&options);
            let mut spec = JobSpec::new(config, graphs);
            if let Some(priority) = request.get("priority").and_then(|p| p.as_i64()) {
                spec = spec.priority(priority as i32);
            }
            if let Some(name) = request.get("name").and_then(|n| n.as_str()) {
                spec = spec.name(name);
            }
            if let Some(timeout) = request.get("timeout_secs").and_then(|t| t.as_f64()) {
                spec = spec.timeout_secs(timeout);
            }
            if let Some(retries) = request.get("max_retries").and_then(|r| r.as_u64()) {
                spec = spec.max_retries(retries as u32);
            }
            if let Some(backoff) = request.get("retry_backoff_ms").and_then(|b| b.as_u64()) {
                spec = spec.retry_backoff_ms(backoff);
            }
            let id = server.submit(spec).map_err(|e| e.to_string())?;
            // A submission is not necessarily Queued any more: a result-cache
            // hit is born Completed and a coalesced duplicate mirrors its
            // leader, so report the actual post-submit state.
            let status = server.status(id).map_err(|e| e.to_string())?;
            let state = serde_json::to_value(&status.state).unwrap_or(Value::Null);
            Ok(json!({
                "ok": true,
                "job": (id.0),
                "state": state,
                "cache_hit": (status.cache_hit),
                "coalesced": (status.coalesced),
            }))
        })(),
        "status" => job_id_of(&request).and_then(|id| {
            let status = server.status(id).map_err(|e| e.to_string())?;
            Ok(json!({ "ok": true, "status": (status_value(&status)) }))
        }),
        "jobs" => {
            let statuses: Vec<Value> = server.jobs().iter().map(status_value).collect();
            Ok(json!({ "ok": true, "jobs": (Value::Array(statuses)) }))
        }
        "events" => job_id_of(&request).and_then(|id| {
            let since = request.get("since").and_then(|s| s.as_u64()).unwrap_or(0) as usize;
            let (events, next) = server.events_since(id, since).map_err(|e| e.to_string())?;
            let events = serde_json::to_value(&events).map_err(|e| e.to_string())?;
            Ok(json!({ "ok": true, "job": (id.0), "events": events, "next": next }))
        }),
        "cancel" => job_id_of(&request).map(|id| {
            let accepted = server.cancel(id);
            json!({ "ok": true, "job": (id.0), "cancelled": accepted })
        }),
        "forget" => job_id_of(&request).map(|id| {
            let dropped = server.forget(id);
            json!({ "ok": true, "job": (id.0), "forgotten": dropped })
        }),
        "result" => job_id_of(&request).and_then(|id| {
            let result = server.result(id).map_err(|e| e.to_string())?;
            result_response(server, id, result)
        }),
        "stats" => serde_json::to_value(&server.stats())
            .map(|stats| json!({ "ok": true, "stats": stats }))
            .map_err(|e| e.to_string()),
        "wait" => job_id_of(&request).and_then(|id| {
            let result = server.wait(id).map_err(|e| e.to_string())?;
            result_response(server, id, Some(result))
        }),
        "shutdown" => return (json!({ "ok": true, "shutdown": true }), true),
        other => Err(format!("unknown cmd '{other}'")),
    };
    match response {
        Ok(value) => (value, false),
        Err(message) => fail(message),
    }
}

fn serve_connection(
    server: &JobServer,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> Result<bool, String> {
    let mut line = String::new();
    loop {
        line.clear();
        let read = input.read_line(&mut line).map_err(|e| e.to_string())?;
        if read == 0 {
            return Ok(false); // EOF: client is done, keep serving others.
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_serve_line(server, line.trim());
        let rendered = serde_json::to_string(&response).map_err(|e| e.to_string())?;
        writeln!(output, "{rendered}").map_err(|e| e.to_string())?;
        output.flush().map_err(|e| e.to_string())?;
        if shutdown {
            return Ok(true);
        }
    }
}

fn cmd_serve(options: &HashMap<String, String>, flags: &[String]) -> Result<(), String> {
    let config = JobServerConfig {
        workers: opt_usize(options, "workers", 2),
        queue_capacity: opt_usize(options, "queue", 16),
        max_retained_jobs: opt_usize(options, "retain", 256),
    };
    let store = options.get("state-dir").map(|dir| {
        StoreConfig::new(dir).checkpoint_every(opt_usize(options, "checkpoint-every", 1))
    });
    let no_cache = flags.iter().any(|f| f == "no-cache");
    let cache = if no_cache {
        if options.contains_key("cache-dir") || options.contains_key("cache-capacity") {
            return Err("--no-cache conflicts with --cache-dir/--cache-capacity".to_string());
        }
        None
    } else {
        let dir = match options.get("cache-dir") {
            Some(dir) => {
                if options.get("state-dir") == Some(dir) {
                    return Err("--cache-dir must differ from --state-dir".to_string());
                }
                Some(dir.into())
            }
            None => None,
        };
        Some(CacheConfig {
            capacity: opt_usize(options, "cache-capacity", CacheConfig::default().capacity),
            dir,
            ..CacheConfig::default()
        })
    };
    let server = JobServer::launch(
        config,
        ServerOptions {
            store,
            faults: None,
            cache,
        },
    )
    .map_err(|e| format!("cannot open state dir: {e}"))?;
    if let Some(recovery) = server.recovery() {
        eprintln!(
            "qas serve: recovered journal ({} records, {} dropped): {} resumed, {} requeued, {} terminal, previous shutdown {}",
            recovery.journal_records,
            recovery.dropped_records,
            recovery.resumed_jobs,
            recovery.requeued_jobs,
            recovery.terminal_jobs,
            if recovery.clean_shutdown { "clean" } else { "unclean" },
        );
    }
    match options.get("port") {
        Some(port) => {
            let port: u16 = port
                .parse()
                .map_err(|_| format!("invalid --port '{port}'"))?;
            let listener = std::net::TcpListener::bind(("127.0.0.1", port))
                .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
            eprintln!("qas serve: listening on 127.0.0.1:{port} (JSON lines)");
            for stream in listener.incoming() {
                let stream = stream.map_err(|e| e.to_string())?;
                let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
                let mut reader = std::io::BufReader::new(stream);
                match serve_connection(&server, &mut reader, &mut writer) {
                    Ok(true) => break,
                    Ok(false) => continue,
                    Err(message) => eprintln!("qas serve: connection error: {message}"),
                }
            }
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = stdin.lock();
            let mut writer = stdout.lock();
            serve_connection(&server, &mut reader, &mut writer)?;
        }
    }
    server.shutdown();
    Ok(())
}

fn cmd_evaluate(options: &HashMap<String, String>) -> Result<(), String> {
    let dataset = build_dataset(options);
    let mixer = build_mixer(options)?;
    let problem = build_problem(options)?;
    let depth = opt_usize(options, "depth", 1);
    let mut evaluator_config = EvaluatorConfig {
        budget: opt_usize(options, "budget", 60),
        restarts: opt_usize(options, "restarts", 1),
        problem: problem.clone(),
        ..EvaluatorConfig::default()
    };
    if let Some(backend) = build_backend(options)? {
        evaluator_config.backend = backend;
    }
    if let Some(optimizer) = build_optimizer(options)? {
        evaluator_config.optimizer = optimizer;
    }
    let evaluator = Evaluator::new(evaluator_config);
    let result = evaluator
        .evaluate(&dataset, &mixer, depth)
        .map_err(|e| e.to_string())?;
    println!("problem          : {}", problem.name());
    println!("mixer            : {}", result.mixer_label);
    println!("depth p          : {}", result.depth);
    println!("mean energy <C>  : {:.4}", result.mean_energy);
    println!("mean approx r    : {:.4}", result.mean_approx_ratio);
    println!("graphs evaluated : {}", result.per_graph.len());
    for (i, trained) in result.per_graph.iter().enumerate() {
        println!(
            "  graph {i}: <C> = {:.4}, r = {:.4}, C* = {:.4} ({})",
            trained.energy,
            trained.approx_ratio,
            trained.classical_optimum,
            trained.classical_quality
        );
    }
    Ok(())
}

fn cmd_problems(options: &HashMap<String, String>) -> Result<(), String> {
    let seed = opt_u64(options, "seed", 2023);
    println!("shipped cost Hamiltonians (use with --problem NAME):\n");
    for kind in ProblemKind::all(seed) {
        println!("  {:<10} {}", kind.name(), kind.description());
    }
    println!(
        "\nStochastic families (wmaxcut, sk, partition) draw their instances\n\
         deterministically from --seed (default 2023). Custom Hamiltonians can\n\
         be defined in code via graphs::Problem::from_terms."
    );
    Ok(())
}

fn cmd_info(options: &HashMap<String, String>) -> Result<(), String> {
    let alphabet = build_alphabet(options)?;
    let p_max = opt_usize(options, "pmax", 4);
    let k_max = opt_usize(options, "kmax", 4);
    println!(
        "alphabet          : {alphabet} (|A_R| = {})",
        alphabet.len()
    );
    println!("depths searched   : 1..={p_max}");
    println!("gates per mixer   : 1..={k_max}");
    for k in 1..=k_max {
        println!("  length-{k} sequences: {}", alphabet.combination_count(k));
    }
    println!(
        "per-depth candidates (all lengths): {}",
        alphabet.all_combinations_up_to(k_max).len()
    );
    println!(
        "paper-style accounting (p_max × |A_R|^k_max): {}",
        alphabet.search_space_size(p_max, k_max)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(|s| s.as_str()).unwrap_or("help");
    let (options, flags) = parse_args(&args[1.min(args.len())..]);

    let result = match command {
        "search" => cmd_search(&options, &flags),
        "serve" => cmd_serve(&options, &flags),
        "evaluate" => cmd_evaluate(&options),
        "problems" => cmd_problems(&options),
        "info" => cmd_info(&options),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; run `qas help`")),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
