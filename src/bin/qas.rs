//! `qas` — command-line front end for the QArchSearch reproduction.
//!
//! Subcommands:
//!
//! * `qas search`   — run a mixer search over a generated graph dataset
//! * `qas evaluate` — train a named mixer (baseline / qnas / custom) on a dataset
//! * `qas problems` — list the shipped cost-Hamiltonian families
//! * `qas info`     — print the search-space accounting for a configuration
//!
//! Arguments use simple `--key value` pairs (no external CLI dependency).
//! Run `qas help` for the full list.

use qarchsearch_suite::graphs::ProblemKind;
use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::constraints::ConstraintSet;
use qarchsearch_suite::qarchsearch::evaluator::{Evaluator, EvaluatorConfig};
use qarchsearch_suite::qarchsearch::report::SearchReport;
use qarchsearch_suite::qarchsearch::search::SearchStrategy;
use std::collections::HashMap;
use std::process::ExitCode;

const HELP: &str = "qas — QArchSearch (Rust reproduction) command line

USAGE:
    qas <search|evaluate|problems|info|help> [--key value ...]

COMMON OPTIONS:
    --graphs N        number of graphs in the dataset        (default 4)
    --nodes N         nodes per graph                        (default 10)
    --dataset KIND    er | regular                           (default er)
    --seed N          RNG seed                               (default 2023)
    --problem NAME    cost Hamiltonian: maxcut | wmaxcut | mis | sk | partition
                      (default maxcut; run `qas problems` for details)

SEARCH OPTIONS (qas search):
    --pmax N          maximum QAOA depth                     (default 2)
    --kmax N          maximum gates per mixer                (default 2)
    --budget N        optimizer evaluations per candidate    (default 60)
    --alphabet LIST   comma-separated mnemonics, e.g. rx,ry,h (default rx,ry,rz,h,p)
    --strategy S      exhaustive | random:N | egreedy:N | policy:N (default exhaustive)
    --threads N       worker count of the evaluation pipeline (default: all cores)
    --restarts N      optimizer restarts per candidate       (default 1)
    --hardware-aware  apply the hardware-aware constraint preset
    --json            print the machine-readable report as JSON

SEARCH PIPELINE OPTIONS (qas search):
    --no-prune        paper-faithful mode: full budget for every candidate,
                      no successive halving, no warm starts, no gate
    --serial          run the serial Algorithm-1 scheduler (implies the
                      paper-faithful full-budget behaviour)
    --first-rung N    budget of the first halving rung       (default 20)
    --eta N           halving rate: keep top 1/eta per rung, budget x eta (default 4)
    --no-warm-start   do not seed depth p from the best depth p-1 angles
    --gate N          admit at most N candidates per depth, ranked by the
                      learned predictor (engages from depth 2 on)

EVALUATE OPTIONS (qas evaluate):
    --mixer M         baseline | qnas | comma-separated gates (default qnas)
    --depth N         QAOA depth p                           (default 1)
    --budget N        optimizer evaluations                  (default 60)

EXAMPLES:
    qas search --pmax 2 --kmax 2 --threads 8
    qas search --pmax 3 --kmax 2 --no-prune --serial    # paper-faithful
    qas search --problem sk --pmax 2 --kmax 2            # spin-glass search
    qas evaluate --mixer rx,ry --dataset regular --depth 2
    qas evaluate --problem mis --mixer qnas
    qas problems
    qas info --pmax 4 --kmax 4
";

fn parse_args(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut options = HashMap::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(key) = arg.strip_prefix("--") {
            // Flag-style options have no value; key-value options consume the
            // next argument.
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value {
                options.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        } else {
            flags.push(arg.clone());
            i += 1;
        }
    }
    (options, flags)
}

fn opt_usize(options: &HashMap<String, String>, key: &str, default: usize) -> usize {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_u64(options: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_dataset(options: &HashMap<String, String>) -> Vec<Graph> {
    let count = opt_usize(options, "graphs", 4);
    let nodes = opt_usize(options, "nodes", 10);
    let seed = opt_u64(options, "seed", 2023);
    match options.get("dataset").map(|s| s.as_str()).unwrap_or("er") {
        "regular" => graphs::datasets::random_regular_dataset(count, nodes, 4, seed),
        _ => graphs::datasets::erdos_renyi_dataset(count, nodes, seed),
    }
}

fn build_alphabet(options: &HashMap<String, String>) -> Result<GateAlphabet, String> {
    match options.get("alphabet") {
        None => Ok(GateAlphabet::paper_default()),
        Some(spec) => {
            let names: Vec<&str> = spec.split(',').map(|s| s.trim()).collect();
            GateAlphabet::from_mnemonics(&names).map_err(|e| e.to_string())
        }
    }
}

fn build_strategy(options: &HashMap<String, String>) -> Result<SearchStrategy, String> {
    let spec = options
        .get("strategy")
        .map(|s| s.as_str())
        .unwrap_or("exhaustive");
    let parse_count = |s: &str| -> Result<usize, String> {
        s.split(':')
            .nth(1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("strategy '{s}' needs a sample count, e.g. random:20"))
    };
    match spec {
        "exhaustive" => Ok(SearchStrategy::Exhaustive),
        s if s.starts_with("random") => Ok(SearchStrategy::Random {
            samples_per_depth: parse_count(s)?,
        }),
        s if s.starts_with("egreedy") => Ok(SearchStrategy::EpsilonGreedy {
            samples_per_depth: parse_count(s)?,
            epsilon: 0.3,
        }),
        s if s.starts_with("policy") => Ok(SearchStrategy::PolicyGradient {
            samples_per_depth: parse_count(s)?,
            learning_rate: 0.2,
        }),
        other => Err(format!("unknown strategy '{other}'")),
    }
}

fn build_problem(options: &HashMap<String, String>) -> Result<ProblemKind, String> {
    let seed = opt_u64(options, "seed", 2023);
    match options.get("problem") {
        None => Ok(ProblemKind::MaxCut),
        Some(spec) => ProblemKind::parse(spec, seed),
    }
}

fn build_mixer(options: &HashMap<String, String>) -> Result<Mixer, String> {
    match options.get("mixer").map(|s| s.as_str()).unwrap_or("qnas") {
        "baseline" | "rx" => Ok(Mixer::baseline()),
        "qnas" => Ok(Mixer::qnas()),
        spec => {
            let gates: Result<Vec<qcircuit::Gate>, String> = spec
                .split(',')
                .map(|s| s.trim().parse::<qcircuit::Gate>())
                .collect();
            Mixer::new(gates?).map_err(|e| e.to_string())
        }
    }
}

fn cmd_search(options: &HashMap<String, String>, flags: &[String]) -> Result<(), String> {
    let dataset = build_dataset(options);
    let alphabet = build_alphabet(options)?;
    let strategy = build_strategy(options)?;
    let k_max = opt_usize(options, "kmax", 2);

    let has_flag = |name: &str| flags.iter().any(|f| f == name);

    let mut builder = SearchConfig::builder()
        .alphabet(alphabet)
        .max_depth(opt_usize(options, "pmax", 2))
        .max_gates_per_mixer(k_max)
        .optimizer_budget(opt_usize(options, "budget", 60))
        .strategy(strategy)
        .problem(build_problem(options)?)
        .seed(opt_u64(options, "seed", 2023));
    if has_flag("hardware-aware") {
        builder = builder.constraints(ConstraintSet::hardware_aware(k_max));
    }
    let threads = options.get("threads").and_then(|v| v.parse().ok());
    if let Some(t) = threads {
        builder = builder.threads(t);
    }
    // Pipeline flags: --no-prune is the paper-faithful escape hatch.
    if has_flag("no-prune") {
        builder = builder.no_prune();
    } else {
        builder = builder.halving(
            opt_usize(options, "first-rung", 20),
            opt_usize(options, "eta", 4),
        );
        if has_flag("no-warm-start") {
            builder = builder.warm_start(false);
        }
        if let Some(cap) = options.get("gate").and_then(|v| v.parse().ok()) {
            builder = builder.predictor_gate(cap);
        }
    }
    let mut config = builder.build();
    config.evaluator.restarts = opt_usize(options, "restarts", 1);

    let outcome = if has_flag("serial") {
        config.pipeline = qarchsearch_suite::qarchsearch::PipelineConfig::full_budget();
        SerialSearch::new(config)
            .run(&dataset)
            .map_err(|e| e.to_string())?
    } else {
        ParallelSearch::new(config)
            .run(&dataset)
            .map_err(|e| e.to_string())?
    };

    if has_flag("json") {
        println!("{}", SearchReport::from(&outcome).to_json());
    } else {
        println!("problem          : {}", outcome.problem);
        println!("best mixer       : {}", outcome.best.mixer_label);
        println!("found at depth   : {}", outcome.best.depth);
        println!("mean energy <C>  : {:.4}", outcome.best.energy);
        println!("approximation r  : {:.4}", outcome.best.approx_ratio);
        println!("candidates tried : {}", outcome.num_candidates_evaluated);
        println!(
            "optimizer evals  : {} (full-budget baseline: {}, {:.1}x saved)",
            outcome.total_optimizer_evaluations,
            outcome.full_budget_evaluations,
            outcome.budget_savings_factor()
        );
        println!("wall-clock       : {:.2}s", outcome.total_elapsed_seconds);
        for d in &outcome.depth_results {
            let pruned = d
                .candidates
                .iter()
                .filter(|c| c.pruned_at_rung.is_some())
                .count();
            print!(
                "  depth {}: best energy {:.4} in {:.2}s ({} candidates",
                d.depth,
                d.best_energy,
                d.elapsed_seconds,
                d.candidates.len()
            );
            if d.gated_out > 0 {
                print!(", {} gated", d.gated_out);
            }
            if pruned > 0 {
                print!(", {pruned} pruned");
            }
            println!(")");
            for (ri, rung) in d.rungs.iter().enumerate() {
                println!(
                    "    rung {ri}: {} -> {} candidates at budget {} ({} evals)",
                    rung.entrants, rung.survivors, rung.target_budget, rung.evaluations
                );
            }
        }
    }
    Ok(())
}

fn cmd_evaluate(options: &HashMap<String, String>) -> Result<(), String> {
    let dataset = build_dataset(options);
    let mixer = build_mixer(options)?;
    let problem = build_problem(options)?;
    let depth = opt_usize(options, "depth", 1);
    let evaluator = Evaluator::new(EvaluatorConfig {
        budget: opt_usize(options, "budget", 60),
        restarts: opt_usize(options, "restarts", 1),
        problem: problem.clone(),
        ..EvaluatorConfig::default()
    });
    let result = evaluator
        .evaluate(&dataset, &mixer, depth)
        .map_err(|e| e.to_string())?;
    println!("problem          : {}", problem.name());
    println!("mixer            : {}", result.mixer_label);
    println!("depth p          : {}", result.depth);
    println!("mean energy <C>  : {:.4}", result.mean_energy);
    println!("mean approx r    : {:.4}", result.mean_approx_ratio);
    println!("graphs evaluated : {}", result.per_graph.len());
    for (i, trained) in result.per_graph.iter().enumerate() {
        println!(
            "  graph {i}: <C> = {:.4}, r = {:.4}, C* = {:.4} ({})",
            trained.energy,
            trained.approx_ratio,
            trained.classical_optimum,
            trained.classical_quality
        );
    }
    Ok(())
}

fn cmd_problems(options: &HashMap<String, String>) -> Result<(), String> {
    let seed = opt_u64(options, "seed", 2023);
    println!("shipped cost Hamiltonians (use with --problem NAME):\n");
    for kind in ProblemKind::all(seed) {
        println!("  {:<10} {}", kind.name(), kind.description());
    }
    println!(
        "\nStochastic families (wmaxcut, sk, partition) draw their instances\n\
         deterministically from --seed (default 2023). Custom Hamiltonians can\n\
         be defined in code via graphs::Problem::from_terms."
    );
    Ok(())
}

fn cmd_info(options: &HashMap<String, String>) -> Result<(), String> {
    let alphabet = build_alphabet(options)?;
    let p_max = opt_usize(options, "pmax", 4);
    let k_max = opt_usize(options, "kmax", 4);
    println!(
        "alphabet          : {alphabet} (|A_R| = {})",
        alphabet.len()
    );
    println!("depths searched   : 1..={p_max}");
    println!("gates per mixer   : 1..={k_max}");
    for k in 1..=k_max {
        println!("  length-{k} sequences: {}", alphabet.combination_count(k));
    }
    println!(
        "per-depth candidates (all lengths): {}",
        alphabet.all_combinations_up_to(k_max).len()
    );
    println!(
        "paper-style accounting (p_max × |A_R|^k_max): {}",
        alphabet.search_space_size(p_max, k_max)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(|s| s.as_str()).unwrap_or("help");
    let (options, flags) = parse_args(&args[1.min(args.len())..]);

    let result = match command {
        "search" => cmd_search(&options, &flags),
        "evaluate" => cmd_evaluate(&options),
        "problems" => cmd_problems(&options),
        "info" => cmd_info(&options),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; run `qas help`")),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
