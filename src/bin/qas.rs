//! `qas` — command-line front end for the QArchSearch reproduction.
//!
//! Subcommands:
//!
//! * `qas search`      — run a mixer search over a generated graph dataset
//! * `qas serve`       — multi-job search server speaking JSON-lines on
//!   stdin/stdout (or a TCP socket with `--port`, concurrent connections)
//! * `qas coordinator` — front N `qas serve --port` shards: content-keyed
//!   routing, heartbeat health checks, checkpoint migration off dead
//!   shards, and admission control at the edge
//! * `qas evaluate`    — train a named mixer (baseline / qnas / custom) on a dataset
//! * `qas problems`    — list the shipped cost-Hamiltonian families
//! * `qas info`        — print the search-space accounting for a configuration
//!
//! Arguments use simple `--key value` pairs (no external CLI dependency).
//! Run `qas help` for the full list.

use qarchsearch_suite::graphs::ProblemKind;
use qarchsearch_suite::prelude::*;
use qarchsearch_suite::qarchsearch::constraints::ConstraintSet;
use qarchsearch_suite::qarchsearch::evaluator::{Evaluator, EvaluatorConfig};
use qarchsearch_suite::qarchsearch::report::SearchReport;
use qarchsearch_suite::qarchsearch::search::SearchStrategy;
use qarchsearch_suite::serde_json::{self, json, Value};
use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const HELP: &str = "qas — QArchSearch (Rust reproduction) command line

USAGE:
    qas <search|serve|coordinator|evaluate|problems|info|help> [--key value ...]

COMMON OPTIONS:
    --graphs N        number of graphs in the dataset        (default 4)
    --nodes N         nodes per graph                        (default 10)
    --dataset KIND    er | regular                           (default er)
    --seed N          RNG seed                               (default 2023)
    --problem NAME    cost Hamiltonian: maxcut | wmaxcut | mis | sk | partition
                      (default maxcut; run `qas problems` for details)
    --backend NAME    statevector | tensor-network | tensor-network-sequential
                      (default tensor-network)
    --optimizer NAME  cobyla | nelder-mead | spsa | random-search | grid-search
                      (default cobyla)

SEARCH OPTIONS (qas search):
    --pmax N          maximum QAOA depth                     (default 2)
    --kmax N          maximum gates per mixer                (default 2)
    --budget N        optimizer evaluations per candidate    (default 60)
    --alphabet LIST   comma-separated mnemonics, e.g. rx,ry,h (default rx,ry,rz,h,p)
    --strategy S      exhaustive | random:N | egreedy:N | policy:N (default exhaustive)
    --threads N       worker count of the evaluation pipeline (default: all cores)
    --restarts N      optimizer restarts per candidate       (default 1)
    --hardware-aware  apply the hardware-aware constraint preset
    --json            machine-readable SearchReport JSON on stdout,
                      human summary on stderr (shares the serve serialization)

SEARCH PIPELINE OPTIONS (qas search):
    --no-prune        paper-faithful mode: full budget for every candidate,
                      no successive halving, no warm starts, no gate
    --serial          run the serial Algorithm-1 scheduler (implies the
                      paper-faithful full-budget behaviour)
    --first-rung N    budget of the first halving rung       (default 20)
    --eta N           halving rate: keep top 1/eta per rung, budget x eta (default 4)
    --no-warm-start   do not seed depth p from the best depth p-1 angles
    --gate N          admit at most N candidates per depth, ranked by the
                      learned predictor (engages from depth 2 on)

SERVE OPTIONS (qas serve):
    --workers N       concurrent search jobs                 (default 2)
    --queue N         bounded queue capacity                 (default 16)
    --retain N        terminal job records kept (oldest evicted) (default 256)
    --port P          listen on a TCP socket instead of stdin/stdout;
                      connections are served concurrently (thread per
                      connection over the shared job server)
    --bind ADDR       TCP listen address                     (default 127.0.0.1)
    --shard-id NAME   name this server reports in `stats` (cluster observability)
    --fault-plan JSON armed fault-injection plan (chaos tests; inert in
                      release builds)
    --state-dir DIR   durable mode: journal every job to DIR and recover
                      on restart (incomplete jobs resume from their last
                      checkpoint, bit-identical to an uninterrupted run)
    --checkpoint-every N  journal a checkpoint every N completed depths
                      (default 1; durable mode only)
    --cache-capacity N  result-cache entries kept (LRU)       (default 256)
    --cache-dir DIR   persist the result cache to DIR (its own journal;
                      must differ from --state-dir)
    --no-cache        disable result caching, request coalescing, and
                      cross-job evaluator sharing (every submission runs)

    Protocol: one JSON request per line, one JSON response per line.
      {\"cmd\":\"submit\",\"priority\":0,\"name\":\"j1\",\"search\":{<search options>}}
      {\"cmd\":\"status\",\"job\":1}      {\"cmd\":\"events\",\"job\":1,\"since\":0}
      {\"cmd\":\"cancel\",\"job\":1}      {\"cmd\":\"result\",\"job\":1}
      {\"cmd\":\"wait\",\"job\":1}        {\"cmd\":\"forget\",\"job\":1}
      {\"cmd\":\"jobs\"}                 {\"cmd\":\"stats\"}
      {\"cmd\":\"shutdown\"}
    Identical submissions (same search config, graphs, and seed) are served
    from the result cache (`cache_hit` in the result envelope, a
    `cache_hit` event in the stream) or coalesced onto the in-flight
    execution (`coalesced`); `stats` reports both caches' counters.
    `search` takes the `qas search` options by name (booleans for flags),
    e.g. {\"pmax\":2,\"kmax\":1,\"budget\":30,\"serial\":true}. `submit` also
    accepts \"timeout_secs\" (deadline -> timed-out), \"max_retries\" and
    \"retry_backoff_ms\" (transient-failure retries, exponential backoff).
    {\"cmd\":\"submit_spec\",\"spec\":{...}} submits a pre-built JobSpec
    verbatim, optionally with a \"checkpoint\" to resume from — the
    coordinator's migration path. A full queue answers
    {\"ok\":false,\"queue_full\":true,...}.

COORDINATOR OPTIONS (qas coordinator):
    --shards LIST     comma-separated shard addresses, e.g.
                      127.0.0.1:7301,127.0.0.1:7302         (required)
    --shard-state-dirs LIST  the shards' --state-dir paths, aligned with
                      --shards ('-' = none). With a reachable state dir a
                      dead shard's journal is replayed: finished results
                      are adopted and incomplete jobs resume from their
                      last checkpoint on a surviving shard, bit-identical
                      to an uninterrupted run.
    --port P          listen on a TCP socket instead of stdin/stdout
    --bind ADDR       TCP listen address                     (default 127.0.0.1)
    --rate R          admitted submissions per second (token bucket;
                      0 disables rate limiting)              (default 0)
    --burst N         token-bucket capacity                  (default 8)
    --tenant-quota N  max in-flight jobs per tenant (0 = unlimited;
                      submissions carry an optional \"tenant\" field)
    --max-wait-ms N   bounded wait while every shard queue is full before
                      rejecting with a retry-after hint      (default 2000)
    --retry-poll-ms N poll interval of that bounded wait     (default 50)
    --heartbeat-ms N  shard health-check period              (default 250)
    --heartbeat-misses N  consecutive misses before a shard is declared
                      dead and its jobs migrate              (default 3)
    --connect-timeout-ms N  shard TCP connect timeout        (default 1000)
    --request-timeout-ms N  shard request I/O timeout        (default 5000)

    The coordinator speaks the serve protocol verbatim (submit/status/
    events/result/wait/cancel/forget/jobs/stats/shutdown); job ids are
    coordinator-scoped. Extras: `submit` takes \"tenant\"; rejections
    carry \"admission_rejected\":true and \"retry_after_ms\"; `stats`
    aggregates the fleet; {\"cmd\":\"shutdown\",\"shards\":true} also
    shuts the shards down. Identical submissions route to the same shard
    (rendezvous hashing on the content key), so the single-node result
    cache deduplicates cluster-wide.

EVALUATE OPTIONS (qas evaluate):
    --mixer M         baseline | qnas | comma-separated gates (default qnas)
    --depth N         QAOA depth p                           (default 1)
    --budget N        optimizer evaluations                  (default 60)

EXAMPLES:
    qas search --pmax 2 --kmax 2 --threads 8
    qas search --pmax 3 --kmax 2 --no-prune --serial    # paper-faithful
    qas search --problem sk --pmax 2 --kmax 2            # spin-glass search
    qas search --json --pmax 1 --kmax 1 > report.json
    qas serve --workers 4 < jobs.jsonl
    qas serve --state-dir runs/serve-state --workers 4   # crash-safe
    qas serve --port 7301 --state-dir runs/s1 --shard-id s1   # a shard
    qas coordinator --shards 127.0.0.1:7301,127.0.0.1:7302 \\
        --shard-state-dirs runs/s1,runs/s2 --port 7300   # the cluster edge
    qas evaluate --mixer rx,ry --dataset regular --depth 2
    qas evaluate --problem mis --mixer qnas --backend statevector
    qas problems
    qas info --pmax 4 --kmax 4
";

fn parse_args(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut options = HashMap::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(key) = arg.strip_prefix("--") {
            // Flag-style options have no value; key-value options consume the
            // next argument.
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value {
                options.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        } else {
            flags.push(arg.clone());
            i += 1;
        }
    }
    (options, flags)
}

fn opt_usize(options: &HashMap<String, String>, key: &str, default: usize) -> usize {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_u64(options: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_dataset(options: &HashMap<String, String>) -> Vec<Graph> {
    let count = opt_usize(options, "graphs", 4);
    let nodes = opt_usize(options, "nodes", 10);
    let seed = opt_u64(options, "seed", 2023);
    match options.get("dataset").map(|s| s.as_str()).unwrap_or("er") {
        "regular" => graphs::datasets::random_regular_dataset(count, nodes, 4, seed),
        _ => graphs::datasets::erdos_renyi_dataset(count, nodes, seed),
    }
}

fn build_alphabet(options: &HashMap<String, String>) -> Result<GateAlphabet, String> {
    match options.get("alphabet") {
        None => Ok(GateAlphabet::paper_default()),
        Some(spec) => {
            let names: Vec<&str> = spec.split(',').map(|s| s.trim()).collect();
            GateAlphabet::from_mnemonics(&names).map_err(|e| e.to_string())
        }
    }
}

fn build_strategy(options: &HashMap<String, String>) -> Result<SearchStrategy, String> {
    let spec = options
        .get("strategy")
        .map(|s| s.as_str())
        .unwrap_or("exhaustive");
    let parse_count = |s: &str| -> Result<usize, String> {
        s.split(':')
            .nth(1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("strategy '{s}' needs a sample count, e.g. random:20"))
    };
    match spec {
        "exhaustive" => Ok(SearchStrategy::Exhaustive),
        s if s.starts_with("random") => Ok(SearchStrategy::Random {
            samples_per_depth: parse_count(s)?,
        }),
        s if s.starts_with("egreedy") => Ok(SearchStrategy::EpsilonGreedy {
            samples_per_depth: parse_count(s)?,
            epsilon: 0.3,
        }),
        s if s.starts_with("policy") => Ok(SearchStrategy::PolicyGradient {
            samples_per_depth: parse_count(s)?,
            learning_rate: 0.2,
        }),
        other => Err(format!("unknown strategy '{other}'")),
    }
}

/// The three kind enums parse through their `FromStr` impls, which share
/// one `graphs::ParseKindError`; the CLI only stringifies it.
fn build_problem(options: &HashMap<String, String>) -> Result<ProblemKind, String> {
    let seed = opt_u64(options, "seed", 2023);
    match options.get("problem") {
        None => Ok(ProblemKind::MaxCut),
        Some(spec) => spec
            .parse::<ProblemKind>()
            .map(|kind| kind.reseeded(seed))
            .map_err(|e| e.to_string()),
    }
}

fn build_backend(options: &HashMap<String, String>) -> Result<Option<Backend>, String> {
    options
        .get("backend")
        .map(|spec| spec.parse::<Backend>().map_err(|e| e.to_string()))
        .transpose()
}

fn build_optimizer(options: &HashMap<String, String>) -> Result<Option<OptimizerKind>, String> {
    options
        .get("optimizer")
        .map(|spec| spec.parse::<OptimizerKind>().map_err(|e| e.to_string()))
        .transpose()
}

fn build_mixer(options: &HashMap<String, String>) -> Result<Mixer, String> {
    match options.get("mixer").map(|s| s.as_str()).unwrap_or("qnas") {
        "baseline" | "rx" => Ok(Mixer::baseline()),
        "qnas" => Ok(Mixer::qnas()),
        spec => {
            let gates: Result<Vec<qcircuit::Gate>, String> = spec
                .split(',')
                .map(|s| s.trim().parse::<qcircuit::Gate>())
                .collect();
            Mixer::new(gates?).map_err(|e| e.to_string())
        }
    }
}

/// Assemble a [`SearchConfig`] from CLI-style options + flags. Shared
/// verbatim by `qas search` and the `serve` protocol's `submit` command,
/// so both front doors accept the same knobs.
fn build_search_config(
    options: &HashMap<String, String>,
    flags: &[String],
) -> Result<SearchConfig, String> {
    let alphabet = build_alphabet(options)?;
    let strategy = build_strategy(options)?;
    let k_max = opt_usize(options, "kmax", 2);
    let has_flag = |name: &str| flags.iter().any(|f| f == name);

    let mut builder = SearchConfig::builder()
        .alphabet(alphabet)
        .max_depth(opt_usize(options, "pmax", 2))
        .max_gates_per_mixer(k_max)
        .optimizer_budget(opt_usize(options, "budget", 60))
        .strategy(strategy)
        .problem(build_problem(options)?)
        .seed(opt_u64(options, "seed", 2023));
    if let Some(backend) = build_backend(options)? {
        builder = builder.backend(backend);
    }
    if let Some(optimizer) = build_optimizer(options)? {
        builder = builder.optimizer(optimizer);
    }
    if has_flag("hardware-aware") {
        builder = builder.constraints(ConstraintSet::hardware_aware(k_max));
    }
    let threads = options.get("threads").and_then(|v| v.parse().ok());
    if let Some(t) = threads {
        builder = builder.threads(t);
    }
    // Pipeline flags: --no-prune is the paper-faithful escape hatch;
    // --serial additionally runs Algorithm 1 as written.
    if has_flag("serial") {
        builder = builder.serial().no_prune();
    } else if has_flag("no-prune") {
        builder = builder.no_prune();
    } else {
        builder = builder.halving(
            opt_usize(options, "first-rung", 20),
            opt_usize(options, "eta", 4),
        );
        if has_flag("no-warm-start") {
            builder = builder.warm_start(false);
        }
        if let Some(cap) = options.get("gate").and_then(|v| v.parse().ok()) {
            builder = builder.predictor_gate(cap);
        }
    }
    let mut config = builder.build();
    config.evaluator.restarts = opt_usize(options, "restarts", 1);
    Ok(config)
}

fn print_search_human(outcome: &SearchOutcome, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "problem          : {}", outcome.problem)?;
    writeln!(out, "best mixer       : {}", outcome.best.mixer_label)?;
    writeln!(out, "found at depth   : {}", outcome.best.depth)?;
    writeln!(out, "mean energy <C>  : {:.4}", outcome.best.energy)?;
    writeln!(out, "approximation r  : {:.4}", outcome.best.approx_ratio)?;
    writeln!(
        out,
        "candidates tried : {}",
        outcome.num_candidates_evaluated
    )?;
    writeln!(
        out,
        "optimizer evals  : {} (full-budget baseline: {}, {:.1}x saved)",
        outcome.total_optimizer_evaluations,
        outcome.full_budget_evaluations,
        outcome.budget_savings_factor()
    )?;
    writeln!(
        out,
        "wall-clock       : {:.2}s",
        outcome.total_elapsed_seconds
    )?;
    for d in &outcome.depth_results {
        let pruned = d
            .candidates
            .iter()
            .filter(|c| c.pruned_at_rung.is_some())
            .count();
        write!(
            out,
            "  depth {}: best energy {:.4} in {:.2}s ({} candidates",
            d.depth,
            d.best_energy,
            d.elapsed_seconds,
            d.candidates.len()
        )?;
        if d.gated_out > 0 {
            write!(out, ", {} gated", d.gated_out)?;
        }
        if pruned > 0 {
            write!(out, ", {pruned} pruned")?;
        }
        writeln!(out, ")")?;
        for (ri, rung) in d.rungs.iter().enumerate() {
            writeln!(
                out,
                "    rung {ri}: {} -> {} candidates at budget {} ({} evals)",
                rung.entrants, rung.survivors, rung.target_budget, rung.evaluations
            )?;
        }
    }
    Ok(())
}

fn cmd_search(options: &HashMap<String, String>, flags: &[String]) -> Result<(), String> {
    let dataset = build_dataset(options);
    let config = build_search_config(options, flags)?;
    let outcome = SearchDriver::new(config)
        .run(&dataset)
        .map_err(|e| e.to_string())?;

    let has_flag = |name: &str| flags.iter().any(|f| f == name);
    if has_flag("json") {
        // Machine-readable report on stdout, human narration on stderr —
        // the same SearchReport serialization the serve protocol returns.
        print_search_human(&outcome, &mut std::io::stderr()).map_err(|e| e.to_string())?;
        println!("{}", SearchReport::from(&outcome).to_json());
    } else {
        print_search_human(&outcome, &mut std::io::stdout()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// qas serve — the JSON-lines multi-job front door.

/// Convert a protocol `search` object into the CLI option map + flags, so
/// `submit` accepts exactly the `qas search` knobs.
fn search_object_to_options(
    search: &Value,
) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut options = HashMap::new();
    let mut flags = Vec::new();
    let Some(entries) = search.as_object() else {
        return Err("'search' must be an object of qas search options".to_string());
    };
    for (key, value) in entries {
        match value {
            Value::Bool(true) => flags.push(key.clone()),
            Value::Bool(false) => {}
            Value::String(s) => {
                options.insert(key.clone(), s.clone());
            }
            Value::Number(_) => {
                // Integers format without a trailing fraction, matching the
                // CLI's string parsing.
                let rendered = if let Some(u) = value.as_u64() {
                    u.to_string()
                } else if let Some(i) = value.as_i64() {
                    i.to_string()
                } else {
                    value.as_f64().unwrap_or(0.0).to_string()
                };
                options.insert(key.clone(), rendered);
            }
            other => {
                return Err(format!(
                    "search option '{key}' must be a string, number or boolean (got {})",
                    other.kind()
                ));
            }
        }
    }
    Ok((options, flags))
}

fn job_id_of(request: &Value) -> Result<JobId, String> {
    request
        .get("job")
        .and_then(|v| v.as_u64())
        .map(JobId)
        .ok_or_else(|| "request needs a numeric 'job' field".to_string())
}

fn status_value(status: &JobStatus) -> Value {
    serde_json::to_value(status).unwrap_or(Value::Null)
}

fn result_response(
    server: &JobServer,
    id: JobId,
    result: Option<Result<SearchOutcome, SearchError>>,
) -> Result<Value, String> {
    let status = server.status(id).map_err(|e| e.to_string())?;
    // Serialize the state the same way `status`/`jobs` do (serde's enum
    // tag), so clients match one spelling everywhere.
    let state = serde_json::to_value(&status.state).unwrap_or(Value::Null);
    match result {
        None => Ok(json!({
            "ok": true,
            "job": (id.0),
            "state": state,
            "done": false,
        })),
        Some(Ok(outcome)) => {
            let mut search_report = SearchReport::from(&outcome);
            search_report.served_from_cache = status.cache_hit;
            let report = serde_json::to_value(&search_report).map_err(|e| e.to_string())?;
            Ok(json!({
                "ok": true,
                "job": (id.0),
                "state": state,
                "done": true,
                "cache_hit": (status.cache_hit),
                "coalesced": (status.coalesced),
                "report": report,
            }))
        }
        Some(Err(e)) => Ok(json!({
            "ok": true,
            "job": (id.0),
            "state": state,
            "done": true,
            "error": (e.to_string()),
        })),
    }
}

/// A full queue answers with an explicit `queue_full` marker so the
/// coordinator can distinguish backpressure (retryable) from rejection.
fn queue_full_or_error(e: SearchError) -> Result<Value, String> {
    match e {
        SearchError::QueueFull { .. } => Ok(json!({
            "ok": false,
            "error": (e.to_string()),
            "queue_full": true,
        })),
        other => Err(other.to_string()),
    }
}

/// The accepted-submission envelope. A submission is not necessarily
/// Queued any more: a result-cache hit is born Completed and a coalesced
/// duplicate mirrors its leader, so report the actual post-submit state.
fn submit_envelope(server: &JobServer, id: JobId) -> Result<Value, String> {
    let status = server.status(id).map_err(|e| e.to_string())?;
    let state = serde_json::to_value(&status.state).unwrap_or(Value::Null);
    Ok(json!({
        "ok": true,
        "job": (id.0),
        "state": state,
        "cache_hit": (status.cache_hit),
        "coalesced": (status.coalesced),
    }))
}

/// Handle one protocol line. Returns the JSON response and whether the
/// server should shut down afterwards.
fn handle_serve_line(server: &JobServer, line: &str) -> (Value, bool) {
    let fail = |message: String| (json!({ "ok": false, "error": message }), false);
    let request: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return fail(format!("invalid JSON: {e}")),
    };
    let Some(cmd) = request.get("cmd").and_then(|c| c.as_str()) else {
        return fail("request needs a string 'cmd' field".to_string());
    };
    let response = match cmd {
        "submit" => (|| -> Result<Value, String> {
            let search = request
                .get("search")
                .ok_or_else(|| "submit needs a 'search' object".to_string())?;
            let (options, flags) = search_object_to_options(search)?;
            let config = build_search_config(&options, &flags)?;
            let graphs = build_dataset(&options);
            let mut spec = JobSpec::new(config, graphs);
            if let Some(priority) = request.get("priority").and_then(|p| p.as_i64()) {
                spec = spec.priority(priority as i32);
            }
            if let Some(name) = request.get("name").and_then(|n| n.as_str()) {
                spec = spec.name(name);
            }
            if let Some(timeout) = request.get("timeout_secs").and_then(|t| t.as_f64()) {
                spec = spec.timeout_secs(timeout);
            }
            if let Some(retries) = request.get("max_retries").and_then(|r| r.as_u64()) {
                spec = spec.max_retries(retries as u32);
            }
            if let Some(backoff) = request.get("retry_backoff_ms").and_then(|b| b.as_u64()) {
                spec = spec.retry_backoff_ms(backoff);
            }
            let id = match server.submit(spec) {
                Ok(id) => id,
                Err(e) => return queue_full_or_error(e),
            };
            submit_envelope(server, id)
        })(),
        "submit_spec" => (|| -> Result<Value, String> {
            // A pre-built JobSpec, submitted verbatim — the coordinator's
            // placement/migration path. An optional "checkpoint" resumes
            // the search mid-flight (bit-identical to an undisturbed run).
            let spec_value = request
                .get("spec")
                .ok_or_else(|| "submit_spec needs a 'spec' object".to_string())?;
            let spec: JobSpec =
                serde_json::from_value(spec_value).map_err(|e| format!("invalid spec: {e}"))?;
            let checkpoint = match request.get("checkpoint") {
                Some(Value::Null) | None => None,
                Some(value) => Some(
                    serde_json::from_value::<SearchCheckpoint>(value)
                        .map_err(|e| format!("invalid checkpoint: {e}"))?,
                ),
            };
            let id = match server.submit_with_checkpoint(spec, checkpoint) {
                Ok(id) => id,
                Err(e) => return queue_full_or_error(e),
            };
            submit_envelope(server, id)
        })(),
        "status" => job_id_of(&request).and_then(|id| {
            let status = server.status(id).map_err(|e| e.to_string())?;
            Ok(json!({ "ok": true, "status": (status_value(&status)) }))
        }),
        "jobs" => {
            let statuses: Vec<Value> = server.jobs().iter().map(status_value).collect();
            Ok(json!({ "ok": true, "jobs": (Value::Array(statuses)) }))
        }
        "events" => job_id_of(&request).and_then(|id| {
            let since = request.get("since").and_then(|s| s.as_u64()).unwrap_or(0) as usize;
            let (events, next) = server.events_since(id, since).map_err(|e| e.to_string())?;
            let events = serde_json::to_value(&events).map_err(|e| e.to_string())?;
            Ok(json!({ "ok": true, "job": (id.0), "events": events, "next": next }))
        }),
        "cancel" => job_id_of(&request).map(|id| {
            let accepted = server.cancel(id);
            json!({ "ok": true, "job": (id.0), "cancelled": accepted })
        }),
        "forget" => job_id_of(&request).map(|id| {
            let dropped = server.forget(id);
            json!({ "ok": true, "job": (id.0), "forgotten": dropped })
        }),
        "result" => job_id_of(&request).and_then(|id| {
            let result = server.result(id).map_err(|e| e.to_string())?;
            result_response(server, id, result)
        }),
        "stats" => serde_json::to_value(&server.stats())
            .map(|stats| json!({ "ok": true, "stats": stats }))
            .map_err(|e| e.to_string()),
        "wait" => job_id_of(&request).and_then(|id| {
            let result = server.wait(id).map_err(|e| e.to_string())?;
            result_response(server, id, Some(result))
        }),
        "shutdown" => return (json!({ "ok": true, "shutdown": true }), true),
        other => Err(format!("unknown cmd '{other}'")),
    };
    match response {
        Ok(value) => (value, false),
        Err(message) => fail(message),
    }
}

// ---------------------------------------------------------------------------
// Shared JSON-lines front doors. `qas serve` and `qas coordinator` differ
// only in their line handler: (request line) -> (response, stop?).

type LineHandler<'a> = dyn Fn(&str) -> (Value, bool) + Sync + 'a;

fn serve_lines(
    handler: &LineHandler<'_>,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> Result<bool, String> {
    let mut line = String::new();
    loop {
        line.clear();
        let read = input.read_line(&mut line).map_err(|e| e.to_string())?;
        if read == 0 {
            return Ok(false); // EOF: client is done, keep serving others.
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handler(line.trim());
        let rendered = serde_json::to_string(&response).map_err(|e| e.to_string())?;
        writeln!(output, "{rendered}").map_err(|e| e.to_string())?;
        output.flush().map_err(|e| e.to_string())?;
        if shutdown {
            return Ok(true);
        }
    }
}

/// Read one `\n`-terminated line off a timeout-armed socket. `read_line`
/// would discard partially-read bytes on a timeout error, so buffering is
/// hand-rolled: timeouts only re-check the shutdown flag and resume.
/// Returns `None` on EOF or shutdown.
fn read_json_line(
    stream: &mut TcpStream,
    pending: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<String>> {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            return Ok(Some(
                String::from_utf8_lossy(&line[..line.len() - 1]).into_owned(),
            ));
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve_tcp_connection(
    mut stream: TcpStream,
    handler: &LineHandler<'_>,
    shutdown: &AtomicBool,
    local: SocketAddr,
) -> Result<(), String> {
    // A short read timeout keeps every connection thread responsive to a
    // shutdown issued on a *different* connection.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut pending = Vec::new();
    loop {
        let Some(line) =
            read_json_line(&mut stream, &mut pending, shutdown).map_err(|e| e.to_string())?
        else {
            return Ok(());
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (response, stop) = handler(trimmed);
        let rendered = serde_json::to_string(&response).map_err(|e| e.to_string())?;
        writeln!(writer, "{rendered}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            wake_accept_loop(local);
            return Ok(());
        }
    }
}

/// Unblock a listener stuck in `accept` by connecting to it once (the
/// accept loop re-checks the shutdown flag per connection).
fn wake_accept_loop(local: SocketAddr) {
    let mut addr = local;
    if addr.ip().is_unspecified() {
        match &mut addr {
            SocketAddr::V4(v4) => v4.set_ip(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(v6) => v6.set_ip(std::net::Ipv6Addr::LOCALHOST),
        }
    }
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

/// The concurrent TCP front door: thread per connection over a shared
/// handler, shut down by any connection's `shutdown` command.
fn run_tcp_front_door(
    bind: &str,
    port: u16,
    label: &str,
    handler: &LineHandler<'_>,
) -> Result<(), String> {
    let listener =
        TcpListener::bind((bind, port)).map_err(|e| format!("cannot bind {bind}:{port}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("qas {label}: listening on {local} (JSON lines, concurrent connections)");
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("qas {label}: accept error: {e}");
                    continue;
                }
            };
            let shutdown = &shutdown;
            scope.spawn(move || {
                if let Err(message) = serve_tcp_connection(stream, handler, shutdown, local) {
                    eprintln!("qas {label}: connection error: {message}");
                }
            });
        }
    });
    Ok(())
}

fn cmd_serve(options: &HashMap<String, String>, flags: &[String]) -> Result<(), String> {
    let config = JobServerConfig {
        workers: opt_usize(options, "workers", 2),
        queue_capacity: opt_usize(options, "queue", 16),
        max_retained_jobs: opt_usize(options, "retain", 256),
    };
    let store = options.get("state-dir").map(|dir| {
        StoreConfig::new(dir).checkpoint_every(opt_usize(options, "checkpoint-every", 1))
    });
    let no_cache = flags.iter().any(|f| f == "no-cache");
    let cache = if no_cache {
        if options.contains_key("cache-dir") || options.contains_key("cache-capacity") {
            return Err("--no-cache conflicts with --cache-dir/--cache-capacity".to_string());
        }
        None
    } else {
        let dir = match options.get("cache-dir") {
            Some(dir) => {
                if options.get("state-dir") == Some(dir) {
                    return Err("--cache-dir must differ from --state-dir".to_string());
                }
                Some(dir.into())
            }
            None => None,
        };
        Some(CacheConfig {
            capacity: opt_usize(options, "cache-capacity", CacheConfig::default().capacity),
            dir,
            ..CacheConfig::default()
        })
    };
    let server = JobServer::launch(
        config,
        ServerOptions {
            store,
            faults: build_fault_plan(options)?,
            cache,
            shard_id: options.get("shard-id").cloned(),
        },
    )
    .map_err(|e| format!("cannot open state dir: {e}"))?;
    if let Some(recovery) = server.recovery() {
        eprintln!(
            "qas serve: recovered journal ({} records, {} dropped): {} resumed, {} requeued, {} terminal, previous shutdown {}",
            recovery.journal_records,
            recovery.dropped_records,
            recovery.resumed_jobs,
            recovery.requeued_jobs,
            recovery.terminal_jobs,
            if recovery.clean_shutdown { "clean" } else { "unclean" },
        );
    }
    let handler = |line: &str| handle_serve_line(&server, line);
    run_front_door(options, "serve", &handler)?;
    server.shutdown();
    Ok(())
}

/// Dispatch to the TCP front door (`--port`, `--bind`) or stdin/stdout.
fn run_front_door(
    options: &HashMap<String, String>,
    label: &str,
    handler: &LineHandler<'_>,
) -> Result<(), String> {
    match options.get("port") {
        Some(port) => {
            let port: u16 = port
                .parse()
                .map_err(|_| format!("invalid --port '{port}'"))?;
            let bind = options
                .get("bind")
                .map(|s| s.as_str())
                .unwrap_or("127.0.0.1");
            run_tcp_front_door(bind, port, label, handler)
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = stdin.lock();
            let mut writer = stdout.lock();
            serve_lines(handler, &mut reader, &mut writer).map(|_| ())
        }
    }
}

/// Parse `--fault-plan JSON` into an armed injector (chaos tests; inert
/// in release builds).
fn build_fault_plan(
    options: &HashMap<String, String>,
) -> Result<Option<Arc<FaultInjector>>, String> {
    options
        .get("fault-plan")
        .map(|spec| {
            serde_json::from_str::<FaultPlan>(spec)
                .map(FaultInjector::new)
                .map_err(|e| format!("invalid --fault-plan: {e}"))
        })
        .transpose()
}

// ---------------------------------------------------------------------------
// qas coordinator — the distributed serve tier's front door.

/// Handle one coordinator protocol line (same shape as the serve
/// protocol; see `qarchsearch::cluster` for the routing semantics).
fn handle_coordinator_line(
    coordinator: &Coordinator,
    shutdown_shards: &AtomicBool,
    line: &str,
) -> (Value, bool) {
    let fail = |message: String| (json!({ "ok": false, "error": message }), false);
    let request: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return fail(format!("invalid JSON: {e}")),
    };
    let Some(cmd) = request.get("cmd").and_then(|c| c.as_str()) else {
        return fail("request needs a string 'cmd' field".to_string());
    };
    let response = match cmd {
        "submit" => (|| -> Result<Value, String> {
            let search = request
                .get("search")
                .ok_or_else(|| "submit needs a 'search' object".to_string())?;
            let (options, flags) = search_object_to_options(search)?;
            let config = build_search_config(&options, &flags)?;
            let graphs = build_dataset(&options);
            let mut spec = JobSpec::new(config, graphs);
            if let Some(priority) = request.get("priority").and_then(|p| p.as_i64()) {
                spec = spec.priority(priority as i32);
            }
            if let Some(name) = request.get("name").and_then(|n| n.as_str()) {
                spec = spec.name(name);
            }
            if let Some(timeout) = request.get("timeout_secs").and_then(|t| t.as_f64()) {
                spec = spec.timeout_secs(timeout);
            }
            if let Some(retries) = request.get("max_retries").and_then(|r| r.as_u64()) {
                spec = spec.max_retries(retries as u32);
            }
            if let Some(backoff) = request.get("retry_backoff_ms").and_then(|b| b.as_u64()) {
                spec = spec.retry_backoff_ms(backoff);
            }
            let tenant = request
                .get("tenant")
                .and_then(|t| t.as_str())
                .map(str::to_string);
            match coordinator.submit(spec, tenant) {
                Ok(submission) => {
                    let state = serde_json::to_value(&submission.state).unwrap_or(Value::Null);
                    Ok(json!({
                        "ok": true,
                        "job": (submission.id.0),
                        "state": state,
                        "cache_hit": (submission.cache_hit),
                        "coalesced": (submission.coalesced),
                        "shard": (submission.shard),
                    }))
                }
                Err(e @ SearchError::AdmissionDenied { .. }) => {
                    let retry_after_ms = match &e {
                        SearchError::AdmissionDenied { retry_after_ms, .. } => *retry_after_ms,
                        _ => unreachable!(),
                    };
                    Ok(json!({
                        "ok": false,
                        "error": (e.to_string()),
                        "admission_rejected": true,
                        "retry_after_ms": (retry_after_ms),
                    }))
                }
                Err(e) => Err(e.to_string()),
            }
        })(),
        "status" => job_id_of(&request).and_then(|id| {
            let status = coordinator.status(id).map_err(|e| e.to_string())?;
            Ok(json!({ "ok": true, "status": status }))
        }),
        "jobs" => Ok(json!({ "ok": true, "jobs": (Value::Array(coordinator.jobs())) })),
        "events" => job_id_of(&request).and_then(|id| {
            let since = request.get("since").and_then(|s| s.as_u64()).unwrap_or(0) as usize;
            let (events, next) = coordinator.events(id, since).map_err(|e| e.to_string())?;
            Ok(json!({
                "ok": true,
                "job": (id.0),
                "events": (Value::Array(events)),
                "next": (next),
            }))
        }),
        "cancel" => job_id_of(&request).and_then(|id| {
            let accepted = coordinator.cancel(id).map_err(|e| e.to_string())?;
            Ok(json!({ "ok": true, "job": (id.0), "cancelled": accepted }))
        }),
        "forget" => job_id_of(&request).and_then(|id| {
            let dropped = coordinator.forget(id).map_err(|e| e.to_string())?;
            Ok(json!({ "ok": true, "job": (id.0), "forgotten": dropped }))
        }),
        "result" => {
            job_id_of(&request).and_then(|id| coordinator.result(id).map_err(|e| e.to_string()))
        }
        "wait" => {
            job_id_of(&request).and_then(|id| coordinator.wait(id).map_err(|e| e.to_string()))
        }
        "stats" => serde_json::to_value(&coordinator.stats())
            .map(|stats| json!({ "ok": true, "stats": stats }))
            .map_err(|e| e.to_string()),
        "shutdown" => {
            if request.get("shards").and_then(|v| v.as_bool()) == Some(true) {
                shutdown_shards.store(true, Ordering::SeqCst);
            }
            return (json!({ "ok": true, "shutdown": true }), true);
        }
        other => Err(format!("unknown cmd '{other}'")),
    };
    match response {
        Ok(value) => (value, false),
        Err(message) => fail(message),
    }
}

fn cmd_coordinator(options: &HashMap<String, String>) -> Result<(), String> {
    let shard_list = options
        .get("shards")
        .ok_or_else(|| "coordinator needs --shards host:port[,host:port...]".to_string())?;
    let addrs: Vec<String> = shard_list
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err("--shards needs at least one address".to_string());
    }
    let state_dirs: Vec<Option<PathBuf>> = match options.get("shard-state-dirs") {
        Some(spec) => spec
            .split(',')
            .map(|s| {
                let s = s.trim();
                if s.is_empty() || s == "-" {
                    None
                } else {
                    Some(PathBuf::from(s))
                }
            })
            .collect(),
        None => vec![None; addrs.len()],
    };
    if state_dirs.len() != addrs.len() {
        return Err(format!(
            "--shard-state-dirs lists {} entries for {} shards (use '-' for none)",
            state_dirs.len(),
            addrs.len()
        ));
    }
    let shards: Vec<ShardEndpoint> = addrs
        .into_iter()
        .zip(state_dirs)
        .map(|(addr, state_dir)| ShardEndpoint { addr, state_dir })
        .collect();
    let mut config = ClusterConfig::new(shards);
    config.admission = AdmissionConfig {
        rate_per_sec: options
            .get("rate")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0),
        burst: options
            .get("burst")
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
        tenant_quota: opt_usize(options, "tenant-quota", 0),
        max_wait_ms: opt_u64(options, "max-wait-ms", 2_000),
        retry_poll_ms: opt_u64(options, "retry-poll-ms", 50),
    };
    config.heartbeat_ms = opt_u64(options, "heartbeat-ms", 250);
    config.heartbeat_misses = options
        .get("heartbeat-misses")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    config.connect_timeout_ms = opt_u64(options, "connect-timeout-ms", 1_000);
    config.request_timeout_ms = opt_u64(options, "request-timeout-ms", 5_000);
    config.faults = build_fault_plan(options)?;
    let coordinator = Coordinator::start(config).map_err(|e| e.to_string())?;
    eprintln!(
        "qas coordinator: fronting {} shard(s), {} alive",
        coordinator.stats().shards_total,
        coordinator.alive_shards().len(),
    );
    let shutdown_shards = AtomicBool::new(false);
    let handler = |line: &str| handle_coordinator_line(&coordinator, &shutdown_shards, line);
    run_front_door(options, "coordinator", &handler)?;
    coordinator.shutdown(shutdown_shards.load(Ordering::SeqCst));
    Ok(())
}

fn cmd_evaluate(options: &HashMap<String, String>) -> Result<(), String> {
    let dataset = build_dataset(options);
    let mixer = build_mixer(options)?;
    let problem = build_problem(options)?;
    let depth = opt_usize(options, "depth", 1);
    let mut evaluator_config = EvaluatorConfig {
        budget: opt_usize(options, "budget", 60),
        restarts: opt_usize(options, "restarts", 1),
        problem: problem.clone(),
        ..EvaluatorConfig::default()
    };
    if let Some(backend) = build_backend(options)? {
        evaluator_config.backend = backend;
    }
    if let Some(optimizer) = build_optimizer(options)? {
        evaluator_config.optimizer = optimizer;
    }
    let evaluator = Evaluator::new(evaluator_config);
    let result = evaluator
        .evaluate(&dataset, &mixer, depth)
        .map_err(|e| e.to_string())?;
    println!("problem          : {}", problem.name());
    println!("mixer            : {}", result.mixer_label);
    println!("depth p          : {}", result.depth);
    println!("mean energy <C>  : {:.4}", result.mean_energy);
    println!("mean approx r    : {:.4}", result.mean_approx_ratio);
    println!("graphs evaluated : {}", result.per_graph.len());
    for (i, trained) in result.per_graph.iter().enumerate() {
        println!(
            "  graph {i}: <C> = {:.4}, r = {:.4}, C* = {:.4} ({})",
            trained.energy,
            trained.approx_ratio,
            trained.classical_optimum,
            trained.classical_quality
        );
    }
    Ok(())
}

fn cmd_problems(options: &HashMap<String, String>) -> Result<(), String> {
    let seed = opt_u64(options, "seed", 2023);
    println!("shipped cost Hamiltonians (use with --problem NAME):\n");
    for kind in ProblemKind::all(seed) {
        println!("  {:<10} {}", kind.name(), kind.description());
    }
    println!(
        "\nStochastic families (wmaxcut, sk, partition) draw their instances\n\
         deterministically from --seed (default 2023). Custom Hamiltonians can\n\
         be defined in code via graphs::Problem::from_terms."
    );
    Ok(())
}

fn cmd_info(options: &HashMap<String, String>) -> Result<(), String> {
    let alphabet = build_alphabet(options)?;
    let p_max = opt_usize(options, "pmax", 4);
    let k_max = opt_usize(options, "kmax", 4);
    println!(
        "alphabet          : {alphabet} (|A_R| = {})",
        alphabet.len()
    );
    println!("depths searched   : 1..={p_max}");
    println!("gates per mixer   : 1..={k_max}");
    for k in 1..=k_max {
        println!("  length-{k} sequences: {}", alphabet.combination_count(k));
    }
    println!(
        "per-depth candidates (all lengths): {}",
        alphabet.all_combinations_up_to(k_max).len()
    );
    println!(
        "paper-style accounting (p_max × |A_R|^k_max): {}",
        alphabet.search_space_size(p_max, k_max)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(|s| s.as_str()).unwrap_or("help");
    let (options, flags) = parse_args(&args[1.min(args.len())..]);

    let result = match command {
        "search" => cmd_search(&options, &flags),
        "serve" => cmd_serve(&options, &flags),
        "coordinator" => cmd_coordinator(&options),
        "evaluate" => cmd_evaluate(&options),
        "problems" => cmd_problems(&options),
        "info" => cmd_info(&options),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; run `qas help`")),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
