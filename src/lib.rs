//! # QArchSearch suite (facade crate)
//!
//! This crate re-exports the public APIs of every crate in the QArchSearch
//! reproduction workspace so that examples and downstream users can depend on
//! a single crate.
//!
//! The individual crates are:
//!
//! * [`qcircuit`] — quantum circuit IR, gate library, parameter binding and
//!   ASCII circuit drawing (the "QBuilder" substrate).
//! * [`statevec`] — dense state-vector simulator backend.
//! * [`tensornet`] — tensor-network simulator backend (QTensor analog).
//! * [`graphs`] — graph generation (Erdős–Rényi, random regular), Max-Cut,
//!   and the pluggable [`graphs::Problem`] cost-Hamiltonian layer (weighted
//!   Max-Cut, Max Independent Set, Sherrington–Kirkpatrick, number
//!   partitioning, custom diagonal objectives).
//! * [`optim`] — classical optimizers (COBYLA-style, Nelder–Mead, SPSA, …).
//! * [`qaoa`] — QAOA ansatz assembly and energy evaluation.
//! * [`qarchsearch`] — the architecture-search package itself (predictor,
//!   builder, evaluator, the session-oriented `SearchDriver`, and the
//!   multi-job `JobServer` behind `qas serve`).
//!
//! ## Quickstart
//!
//! ```
//! use qarchsearch_suite::prelude::*;
//!
//! // A small Erdős–Rényi instance.
//! let graph = Graph::erdos_renyi(8, 0.5, 42);
//! // Search mixers of up to 2 gates at QAOA depth 1.
//! let config = SearchConfig::builder()
//!     .max_depth(1)
//!     .max_gates_per_mixer(2)
//!     .optimizer_budget(40)
//!     .seed(7)
//!     .build();
//! // `start()` returns a handle with a live event stream, cancellation and
//! // checkpointing; `run()` is the blocking shorthand.
//! let outcome = SearchDriver::new(config).run(&[graph]).unwrap();
//! assert!(outcome.best.energy.is_finite());
//! ```

pub use graphs;
pub use optim;
pub use qaoa;
pub use qarchsearch;
pub use qcircuit;
pub use serde_json;
pub use statevec;
pub use tensornet;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use graphs::{
        ClassicalSolution, CostTerm, Graph, GraphKind, MaxCut, Problem, ProblemKind,
        RatioConvention, SolutionQuality,
    };
    pub use optim::{CobylaOptimizer, NelderMead, Optimizer, OptimizerKind, Resumable, Spsa};
    pub use qaoa::{
        ansatz::QaoaAnsatz,
        energy::{BatchScratch, CompiledEnergy, EnergyEvaluator, TrainingSession},
        mixer::Mixer,
        Backend,
    };
    pub use qarchsearch::{
        alphabet::{GateAlphabet, RotationGate},
        cache::{spec_cache_key, CacheConfig, CacheStats, ResultCache, SpecKey},
        cluster::{
            AdmissionConfig, AdmissionStats, ClusterConfig, ClusterStats, Coordinator,
            ShardEndpoint, Submission,
        },
        error::SearchError,
        evaluator::{EnergyCache, Evaluator},
        events::SearchEvent,
        fault::{FaultAction, FaultInjector, FaultPlan, FaultSpec},
        predictor::{Predictor, RandomPredictor},
        qbuilder::QBuilder,
        search::{ExecutionMode, PipelineConfig, SearchConfig, SearchOutcome},
        server::{
            JobId, JobServer, JobServerConfig, JobSpec, JobState, JobStatus, RecoveryReport,
            ServerOptions, ServerStats,
        },
        session::{SearchCheckpoint, SearchDriver, SearchHandle, SearchProgress, SearchStatus},
        store::{JobStore, StoreConfig},
    };
    pub use qcircuit::{Circuit, Gate, Parameter};
    pub use statevec::StateVector;
    pub use tensornet::TensorNetwork;
}
