//! # tensornet — tensor-network quantum circuit simulator (QTensor analog)
//!
//! The QArchSearch evaluator uses the Argonne **QTensor** tensor-network
//! simulator as its backend. This crate is a from-scratch Rust analog of the
//! pieces QArchSearch needs:
//!
//! * [`Tensor`] — a dense tensor over binary (dimension-2) indices with
//!   elementwise products and index summation (the einsum primitives that
//!   bucket elimination needs),
//! * [`TensorNetwork`] — conversion of a [`qcircuit::Circuit`] plus an
//!   observable into a closed tensor network for ⟨0|U† D U|0⟩, exploiting
//!   **diagonal gates** (RZ, P, CZ, RZZ, …) by attaching them to existing
//!   indices instead of creating new ones — the optimization highlighted in
//!   Lykov & Alexeev (ISVLSI 2021),
//! * [`ordering`] — contraction-order heuristics (greedy min-degree and
//!   min-fill) over the index interaction graph, plus contraction-width
//!   estimation,
//! * [`contraction`] — bucket (variable) elimination following an ordering,
//! * [`lightcone`] — per-edge light-cone reduction for QAOA expectation
//!   values: for ⟨Z_u Z_v⟩ only the gates in the causal cone of `{u, v}`
//!   survive the U†…U cancellation, which is what lets QTensor simulate very
//!   large QAOA circuits edge by edge.
//!
//! The crate is validated against the dense `statevec` backend in the
//! integration tests and in property-based tests.
//!
//! ```
//! use qcircuit::Circuit;
//! use tensornet::TensorNetwork;
//!
//! // ⟨00|H⊗H|00⟩ = 1/2
//! let mut c = Circuit::new(2);
//! c.h(0).h(1);
//! let amp = TensorNetwork::amplitude(&c).unwrap();
//! assert!((amp.re - 0.5).abs() < 1e-10);
//! ```

pub mod contraction;
pub mod error;
pub mod lightcone;
pub mod network;
pub mod ordering;
pub mod slicing;
pub mod tensor;

pub use error::TensorNetError;
pub use network::TensorNetwork;
pub use ordering::{ContractionOrder, OrderingHeuristic};
pub use tensor::Tensor;

#[cfg(test)]
mod proptests;
