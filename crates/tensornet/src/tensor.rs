//! Dense tensors over binary indices.
//!
//! Every index of a quantum-circuit tensor network has dimension 2, which
//! keeps the layout simple: a tensor with `r` indices stores `2^r` complex
//! entries, with the **first index being the most significant bit** of the
//! flat position.

use crate::error::TensorNetError;
use num_complex::Complex64;
use std::collections::BTreeSet;
use std::fmt;

/// A dense complex tensor whose indices all have dimension 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Index ids in significance order (first = most significant bit).
    indices: Vec<usize>,
    /// `2^indices.len()` entries, row-major over the index bits.
    data: Vec<Complex64>,
}

impl Tensor {
    /// A scalar tensor (no indices).
    pub fn scalar(value: Complex64) -> Tensor {
        Tensor {
            indices: Vec::new(),
            data: vec![value],
        }
    }

    /// Build a tensor from indices and data; `data.len()` must equal
    /// `2^indices.len()` and indices must be distinct.
    pub fn new(indices: Vec<usize>, data: Vec<Complex64>) -> Result<Tensor, TensorNetError> {
        let expected = 1usize << indices.len();
        if data.len() != expected {
            return Err(TensorNetError::InvalidTensorData {
                indices: indices.len(),
                expected,
                got: data.len(),
            });
        }
        let mut seen = BTreeSet::new();
        for &i in &indices {
            if !seen.insert(i) {
                return Err(TensorNetError::DuplicateIndex { index: i });
            }
        }
        Ok(Tensor { indices, data })
    }

    /// The index ids of this tensor.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The number of indices (tensor rank).
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// Raw data slice.
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Scalar value of a rank-0 tensor.
    pub fn as_scalar(&self) -> Option<Complex64> {
        if self.indices.is_empty() {
            Some(self.data[0])
        } else {
            None
        }
    }

    /// Whether this tensor carries the given index.
    pub fn has_index(&self, index: usize) -> bool {
        self.indices.contains(&index)
    }

    /// Entry at the given assignment of this tensor's indices. `assignment`
    /// maps index id -> bit; indices not present are ignored.
    pub fn value_at(&self, assignment: &dyn Fn(usize) -> u8) -> Complex64 {
        let mut pos = 0usize;
        for &idx in &self.indices {
            pos = (pos << 1) | (assignment(idx) as usize & 1);
        }
        self.data[pos]
    }

    /// Elementwise (broadcasting) product of two tensors: the result carries
    /// the union of the indices; shared indices are matched, none are summed.
    pub fn multiply(&self, other: &Tensor) -> Tensor {
        // Result index order: self's indices followed by other's new indices.
        let mut result_indices = self.indices.clone();
        for &idx in &other.indices {
            if !result_indices.contains(&idx) {
                result_indices.push(idx);
            }
        }
        let rank = result_indices.len();
        let size = 1usize << rank;
        let mut data = vec![Complex64::new(0.0, 0.0); size];

        // Precompute, for each operand, the mapping from result-bit position
        // to operand-bit position.
        let self_positions: Vec<usize> = self
            .indices
            .iter()
            .map(|idx| {
                result_indices
                    .iter()
                    .position(|r| r == idx)
                    .expect("index present")
            })
            .collect();
        let other_positions: Vec<usize> = other
            .indices
            .iter()
            .map(|idx| {
                result_indices
                    .iter()
                    .position(|r| r == idx)
                    .expect("index present")
            })
            .collect();

        for (pos, entry) in data.iter_mut().enumerate() {
            // Bit i of `pos` corresponds to result_indices[rank - 1 - i]?  We
            // defined the first index as most significant, so result index j
            // occupies bit (rank - 1 - j).
            let bit_of = |j: usize| (pos >> (rank - 1 - j)) & 1;
            let mut self_pos = 0usize;
            for &j in &self_positions {
                self_pos = (self_pos << 1) | bit_of(j);
            }
            let mut other_pos = 0usize;
            for &j in &other_positions {
                other_pos = (other_pos << 1) | bit_of(j);
            }
            *entry = self.data[self_pos] * other.data[other_pos];
        }
        Tensor {
            indices: result_indices,
            data,
        }
    }

    /// Sum the tensor over one of its indices, reducing the rank by one.
    /// Summing over an index the tensor does not carry is a no-op clone.
    pub fn sum_over(&self, index: usize) -> Tensor {
        let Some(pos) = self.indices.iter().position(|&i| i == index) else {
            return self.clone();
        };
        let rank = self.indices.len();
        let new_indices: Vec<usize> = self
            .indices
            .iter()
            .copied()
            .filter(|&i| i != index)
            .collect();
        let new_rank = rank - 1;
        let mut data = vec![Complex64::new(0.0, 0.0); 1usize << new_rank];

        for (old_pos, &value) in self.data.iter().enumerate() {
            // Remove the bit at position `pos` (most-significant-first order).
            let bit_index = rank - 1 - pos; // bit position within old_pos
            let high = old_pos >> (bit_index + 1);
            let low = old_pos & ((1usize << bit_index) - 1);
            let new_pos = (high << bit_index) | low;
            data[new_pos] += value;
        }
        Tensor {
            indices: new_indices,
            data,
        }
    }

    /// Sum over every index, producing the scalar total.
    pub fn sum_all(&self) -> Complex64 {
        self.data.iter().sum()
    }

    /// Maximum absolute difference between two tensors with identical index
    /// lists (used by tests).
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.indices, other.indices, "index mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).norm())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor(rank {}, indices {:?})",
            self.rank(),
            self.indices
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::new(re, 0.0)
    }

    #[test]
    fn new_validates_data_length() {
        assert!(Tensor::new(vec![0, 1], vec![c(1.0); 4]).is_ok());
        assert!(matches!(
            Tensor::new(vec![0, 1], vec![c(1.0); 3]),
            Err(TensorNetError::InvalidTensorData { .. })
        ));
        assert!(matches!(
            Tensor::new(vec![0, 0], vec![c(1.0); 4]),
            Err(TensorNetError::DuplicateIndex { .. })
        ));
    }

    #[test]
    fn scalar_round_trip() {
        let t = Tensor::scalar(c(2.5));
        assert_eq!(t.rank(), 0);
        assert_eq!(t.as_scalar(), Some(c(2.5)));
        assert_eq!(t.sum_all(), c(2.5));
    }

    #[test]
    fn value_at_uses_msb_first_order() {
        // T[i0, i1] with data [t00, t01, t10, t11]
        let t = Tensor::new(vec![7, 9], vec![c(0.0), c(1.0), c(2.0), c(3.0)]).unwrap();
        assert_eq!(t.value_at(&|i| if i == 7 { 1 } else { 0 }), c(2.0));
        assert_eq!(t.value_at(&|i| if i == 9 { 1 } else { 0 }), c(1.0));
        assert_eq!(t.value_at(&|_| 1), c(3.0));
    }

    #[test]
    fn multiply_disjoint_indices_is_outer_product() {
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]).unwrap();
        let b = Tensor::new(vec![1], vec![c(3.0), c(4.0)]).unwrap();
        let p = a.multiply(&b);
        assert_eq!(p.rank(), 2);
        assert_eq!(p.indices(), &[0, 1]);
        // p[i0, i1] = a[i0] * b[i1]
        assert_eq!(p.data(), &[c(3.0), c(4.0), c(6.0), c(8.0)]);
    }

    #[test]
    fn multiply_shared_index_is_elementwise() {
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]).unwrap();
        let b = Tensor::new(vec![0], vec![c(5.0), c(7.0)]).unwrap();
        let p = a.multiply(&b);
        assert_eq!(p.rank(), 1);
        assert_eq!(p.data(), &[c(5.0), c(14.0)]);
    }

    #[test]
    fn multiply_mixed_shared_and_free_indices() {
        // a[i, j], b[j, k]: product has indices [i, j, k],
        // p[i,j,k] = a[i,j] * b[j,k]
        let a = Tensor::new(vec![0, 1], vec![c(1.0), c(2.0), c(3.0), c(4.0)]).unwrap();
        let b = Tensor::new(vec![1, 2], vec![c(5.0), c(6.0), c(7.0), c(8.0)]).unwrap();
        let p = a.multiply(&b);
        assert_eq!(p.indices(), &[0, 1, 2]);
        // Check a couple of entries: p[0,1,0] = a[0,1]*b[1,0] = 2*7 = 14.
        let val = p.value_at(&|i| match i {
            1 => 1,
            _ => 0,
        });
        assert_eq!(val, c(14.0));
        // p[1,0,1] = a[1,0]*b[0,1] = 3*6 = 18.
        let val = p.value_at(&|i| match i {
            0 | 2 => 1,
            _ => 0,
        });
        assert_eq!(val, c(18.0));
    }

    #[test]
    fn multiply_matches_matrix_product_when_summed() {
        // (A·B)[i,k] = Σ_j A[i,j] B[j,k]; multiply then sum_over(j).
        let a = Tensor::new(vec![0, 1], vec![c(1.0), c(2.0), c(3.0), c(4.0)]).unwrap();
        let b = Tensor::new(vec![1, 2], vec![c(5.0), c(6.0), c(7.0), c(8.0)]).unwrap();
        let prod = a.multiply(&b).sum_over(1);
        assert_eq!(prod.indices(), &[0, 2]);
        // Row-major matrix product of [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]].
        assert_eq!(prod.data(), &[c(19.0), c(22.0), c(43.0), c(50.0)]);
    }

    #[test]
    fn sum_over_reduces_rank() {
        let t = Tensor::new(vec![3, 8], vec![c(1.0), c(2.0), c(3.0), c(4.0)]).unwrap();
        let s = t.sum_over(3);
        assert_eq!(s.indices(), &[8]);
        assert_eq!(s.data(), &[c(4.0), c(6.0)]);
        let s2 = t.sum_over(8);
        assert_eq!(s2.indices(), &[3]);
        assert_eq!(s2.data(), &[c(3.0), c(7.0)]);
    }

    #[test]
    fn sum_over_missing_index_is_noop() {
        let t = Tensor::new(vec![1], vec![c(1.0), c(2.0)]).unwrap();
        assert_eq!(t.sum_over(99), t);
    }

    #[test]
    fn sum_all_equals_iterated_sum_over() {
        let t = Tensor::new(vec![0, 1, 2], (0..8).map(|i| c(i as f64)).collect()).unwrap();
        let total = t.sum_all();
        let reduced = t.sum_over(0).sum_over(1).sum_over(2);
        assert_eq!(reduced.as_scalar().unwrap(), total);
        assert_eq!(total, c(28.0));
    }

    #[test]
    fn multiply_with_scalar() {
        let s = Tensor::scalar(c(3.0));
        let t = Tensor::new(vec![4], vec![c(1.0), c(2.0)]).unwrap();
        let p = s.multiply(&t);
        assert_eq!(p.indices(), &[4]);
        assert_eq!(p.data(), &[c(3.0), c(6.0)]);
        let q = t.multiply(&s);
        assert_eq!(q.data(), &[c(3.0), c(6.0)]);
    }
}
