//! Bucket (variable) elimination over a list of tensors.
//!
//! Given an elimination order over index ids, the contractor repeatedly
//! collects every tensor carrying the next index, multiplies them together,
//! sums out the index, and pushes the result back into the pool. When every
//! index has been eliminated the pool holds only scalars whose product is the
//! value of the closed network.

use crate::error::TensorNetError;
use crate::ordering::{ContractionOrder, InteractionGraph, OrderingHeuristic};
use crate::tensor::Tensor;
use num_complex::Complex64;

/// Hard cap on the rank of any intermediate tensor. 2^26 complex entries is
/// ~1 GiB; anything beyond that indicates a pathological ordering for the
/// workloads this crate targets.
pub const DEFAULT_WIDTH_LIMIT: usize = 26;

/// Statistics gathered during a contraction, used by the ordering-comparison
/// ablation bench and by tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContractionStats {
    /// Largest intermediate tensor rank observed.
    pub max_rank: usize,
    /// Total number of pairwise tensor multiplications performed.
    pub multiplications: usize,
    /// Number of indices eliminated.
    pub eliminated_indices: usize,
}

/// Contract a closed tensor network (no open indices) to its scalar value
/// using the given elimination order.
pub fn contract_with_order(
    tensors: Vec<Tensor>,
    order: &ContractionOrder,
    width_limit: usize,
) -> Result<(Complex64, ContractionStats), TensorNetError> {
    let mut pool = tensors;
    let mut stats = ContractionStats::default();

    for &index in &order.order {
        // Pull out every tensor carrying this index.
        let (bucket, rest): (Vec<Tensor>, Vec<Tensor>) =
            pool.into_iter().partition(|t| t.has_index(index));
        pool = rest;

        if bucket.is_empty() {
            continue;
        }

        // Multiply the bucket together...
        let mut product = bucket[0].clone();
        for t in bucket.iter().skip(1) {
            product = product.multiply(t);
            stats.multiplications += 1;
            if product.rank() > width_limit {
                return Err(TensorNetError::WidthLimitExceeded {
                    width: product.rank(),
                    limit: width_limit,
                });
            }
            stats.max_rank = stats.max_rank.max(product.rank());
        }
        stats.max_rank = stats.max_rank.max(product.rank());

        // ...and sum out the eliminated index.
        let reduced = product.sum_over(index);
        stats.eliminated_indices += 1;
        pool.push(reduced);
    }

    // Everything left must be scalar; multiply them together.
    let mut value = Complex64::new(1.0, 0.0);
    for t in pool {
        match t.as_scalar() {
            Some(v) => value *= v,
            None => {
                return Err(TensorNetError::OpenIndicesRemain { count: t.rank() });
            }
        }
    }
    Ok((value, stats))
}

/// Contract a closed tensor network with an automatically chosen elimination
/// order (the better of min-degree and min-fill).
pub fn contract_auto(
    tensors: Vec<Tensor>,
) -> Result<(Complex64, ContractionStats), TensorNetError> {
    let graph = InteractionGraph::from_tensor_indices(tensors.iter().map(|t| t.indices()));
    let order = graph.best_order();
    contract_with_order(tensors, &order, DEFAULT_WIDTH_LIMIT)
}

/// Contract with an explicit heuristic (used by the ordering ablation).
pub fn contract_with_heuristic(
    tensors: Vec<Tensor>,
    heuristic: OrderingHeuristic,
) -> Result<(Complex64, ContractionStats), TensorNetError> {
    let graph = InteractionGraph::from_tensor_indices(tensors.iter().map(|t| t.indices()));
    let order = graph.elimination_order(heuristic);
    contract_with_order(tensors, &order, DEFAULT_WIDTH_LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::new(re, 0.0)
    }

    #[test]
    fn contract_single_vector_pair() {
        // Σ_i a[i] b[i] = 1*3 + 2*4 = 11
        let a = Tensor::new(vec![0], vec![c(1.0), c(2.0)]).unwrap();
        let b = Tensor::new(vec![0], vec![c(3.0), c(4.0)]).unwrap();
        let (value, stats) = contract_auto(vec![a, b]).unwrap();
        assert_eq!(value, c(11.0));
        assert_eq!(stats.eliminated_indices, 1);
    }

    #[test]
    fn contract_matrix_chain_trace() {
        // Tr(A B) with A = [[1,2],[3,4]], B = [[5,6],[7,8]]:
        // Σ_{ij} A[i,j] B[j,i] = 1*5 + 2*7 + 3*6 + 4*8 = 69.
        let a = Tensor::new(vec![0, 1], vec![c(1.0), c(2.0), c(3.0), c(4.0)]).unwrap();
        let b = Tensor::new(vec![1, 0], vec![c(5.0), c(6.0), c(7.0), c(8.0)]).unwrap();
        let (value, _) = contract_auto(vec![a, b]).unwrap();
        assert_eq!(value, c(69.0));
    }

    #[test]
    fn contraction_value_is_order_independent() {
        // A small ring network: value must not depend on the heuristic.
        let t01 = Tensor::new(vec![0, 1], vec![c(1.0), c(0.5), c(0.25), c(2.0)]).unwrap();
        let t12 = Tensor::new(vec![1, 2], vec![c(0.5), c(1.5), c(1.0), c(1.0)]).unwrap();
        let t23 = Tensor::new(vec![2, 3], vec![c(2.0), c(0.0), c(1.0), c(1.0)]).unwrap();
        let t30 = Tensor::new(vec![3, 0], vec![c(1.0), c(1.0), c(0.5), c(0.5)]).unwrap();
        let tensors = vec![t01, t12, t23, t30];
        let (v1, _) =
            contract_with_heuristic(tensors.clone(), OrderingHeuristic::MinDegree).unwrap();
        let (v2, _) = contract_with_heuristic(tensors.clone(), OrderingHeuristic::MinFill).unwrap();
        let (v3, _) = contract_with_heuristic(tensors, OrderingHeuristic::Natural).unwrap();
        assert!((v1 - v2).norm() < 1e-12);
        assert!((v1 - v3).norm() < 1e-12);
    }

    #[test]
    fn scalars_multiply_through() {
        let s1 = Tensor::scalar(c(2.0));
        let s2 = Tensor::scalar(c(-3.0));
        let (value, stats) = contract_auto(vec![s1, s2]).unwrap();
        assert_eq!(value, c(-6.0));
        assert_eq!(stats.eliminated_indices, 0);
    }

    #[test]
    fn width_limit_is_enforced() {
        // A star of vector tensors sharing one hub index is fine, but many
        // pairwise-disjoint indices in one bucket blow up. Construct tensors
        // that force a big intermediate: three tensors each sharing index 0
        // but carrying 3 extra unique indices.
        let mut tensors = Vec::new();
        for k in 0..3 {
            let idxs = vec![0, 10 + 3 * k, 11 + 3 * k, 12 + 3 * k];
            tensors.push(Tensor::new(idxs, vec![c(1.0); 16]).unwrap());
        }
        let graph = InteractionGraph::from_tensor_indices(tensors.iter().map(|t| t.indices()));
        let order = graph.elimination_order(OrderingHeuristic::Natural);
        let result = contract_with_order(tensors, &order, 5);
        assert!(matches!(
            result,
            Err(TensorNetError::WidthLimitExceeded { .. })
        ));
    }

    #[test]
    fn incomplete_order_leaves_open_indices() {
        let a = Tensor::new(vec![0, 1], vec![c(1.0); 4]).unwrap();
        let order = ContractionOrder {
            order: vec![0],
            width: 2,
            heuristic: OrderingHeuristic::Natural,
        };
        let result = contract_with_order(vec![a], &order, DEFAULT_WIDTH_LIMIT);
        assert!(matches!(
            result,
            Err(TensorNetError::OpenIndicesRemain { .. })
        ));
    }

    #[test]
    fn stats_report_max_rank() {
        let a = Tensor::new(vec![0, 1], vec![c(1.0); 4]).unwrap();
        let b = Tensor::new(vec![1, 2], vec![c(1.0); 4]).unwrap();
        let (_, stats) = contract_auto(vec![a, b]).unwrap();
        assert!(stats.max_rank >= 2);
        assert!(stats.multiplications >= 1);
    }
}
