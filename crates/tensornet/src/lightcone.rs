//! Light-cone reduction for per-term QAOA expectation values.
//!
//! The expectation ⟨ψ|Π Z_q|ψ⟩ with |ψ⟩ = U|0…0⟩ only depends on the gates
//! inside the *reverse causal cone* of the observable's qubits: every gate
//! that touches no cone qubit cancels between U and U†. QTensor exploits
//! this to evaluate the QAOA energy edge by edge on sub-circuits that are
//! much narrower than the full register; this module implements the same
//! reduction for our backend, generalized from Max-Cut edges to the terms
//! of any diagonal cost [`Problem`] ([`problem_expectation`]).

use crate::error::TensorNetError;
use crate::network::TensorNetwork;
use graphs::Problem;
use qcircuit::Circuit;
use rayon::prelude::*;
use std::collections::BTreeSet;

/// The light-cone restriction of `circuit` with respect to `targets`:
/// the sub-circuit containing exactly the gates in the reverse causal cone,
/// relabelled onto the cone qubits, plus the mapping from old qubit id to new.
#[derive(Debug, Clone)]
pub struct LightCone {
    /// The reduced circuit over `cone_qubits.len()` qubits.
    pub circuit: Circuit,
    /// Original qubit ids of the cone, in relabelling order (new id = position).
    pub cone_qubits: Vec<usize>,
}

impl LightCone {
    /// Compute the reverse causal cone of `targets` in `circuit`.
    ///
    /// Walk the instructions backwards keeping a growing set of *active*
    /// qubits (initialized to `targets`); an instruction is kept iff it acts
    /// on at least one active qubit, and keeping it activates all of its
    /// qubits.
    pub fn of(circuit: &Circuit, targets: &[usize]) -> LightCone {
        let mut active: BTreeSet<usize> = targets.iter().copied().collect();
        let mut keep = vec![false; circuit.instructions().len()];

        for (i, inst) in circuit.instructions().iter().enumerate().rev() {
            if inst.qubits.iter().any(|q| active.contains(q)) {
                keep[i] = true;
                for &q in &inst.qubits {
                    active.insert(q);
                }
            }
        }

        let cone_qubits: Vec<usize> = active.into_iter().collect();
        let relabel = |q: usize| {
            cone_qubits
                .iter()
                .position(|&x| x == q)
                .expect("qubit in cone")
        };

        let mut reduced = Circuit::new(cone_qubits.len());
        for (i, inst) in circuit.instructions().iter().enumerate() {
            if keep[i] {
                let qubits: Vec<usize> = inst.qubits.iter().map(|&q| relabel(q)).collect();
                reduced
                    .try_push(inst.gate, &qubits, inst.parameter.clone())
                    .expect("relabelled instruction is valid");
            }
        }
        LightCone {
            circuit: reduced,
            cone_qubits,
        }
    }

    /// New (relabelled) id of an original qubit, if it is inside the cone.
    pub fn relabelled(&self, original: usize) -> Option<usize> {
        self.cone_qubits.iter().position(|&q| q == original)
    }

    /// Width of the cone.
    pub fn width(&self) -> usize {
        self.cone_qubits.len()
    }
}

/// ⟨Z_u Z_v⟩ on the output of `circuit`, evaluated on the light-cone-reduced
/// sub-circuit via the tensor-network backend.
pub fn zz_expectation_lightcone(
    circuit: &Circuit,
    u: usize,
    v: usize,
) -> Result<f64, TensorNetError> {
    let cone = LightCone::of(circuit, &[u, v]);
    let cu = cone.relabelled(u).expect("u is a target of its own cone");
    let cv = cone.relabelled(v).expect("v is a target of its own cone");
    TensorNetwork::zz_expectation(&cone.circuit, cu, cv)
}

/// `⟨Π_{q ∈ qubits} Z_q⟩` on the output of `circuit`, evaluated on the
/// light-cone-reduced sub-circuit of the term's qubits — the per-term
/// generalization of [`zz_expectation_lightcone`] used by the
/// problem-generic energy evaluation. An empty product is `1`.
pub fn z_product_expectation_lightcone(
    circuit: &Circuit,
    qubits: &[usize],
) -> Result<f64, TensorNetError> {
    if qubits.is_empty() {
        return Ok(1.0);
    }
    let cone = LightCone::of(circuit, qubits);
    let relabelled: Vec<usize> = qubits
        .iter()
        .map(|&q| cone.relabelled(q).expect("target is inside its own cone"))
        .collect();
    TensorNetwork::z_product_expectation(&cone.circuit, &relabelled)
}

/// The QAOA energy ⟨C⟩ of an arbitrary diagonal cost [`Problem`], computed
/// term by term with per-term light-cone reduction:
/// `⟨C⟩ = constant + Σ_t (offset_t + coeff_t ⟨Π Z⟩_t)`. Terms are processed
/// in parallel with Rayon — the *inner* level of the paper's two-level
/// parallelization, generalized from per-edge to per-term cones. Max-Cut
/// problems on unit-weight graphs evaluate bit-identically to
/// [`maxcut_expectation`].
pub fn problem_expectation(circuit: &Circuit, problem: &Problem) -> Result<f64, TensorNetError> {
    let contributions: Result<Vec<f64>, TensorNetError> = problem
        .terms()
        .par_iter()
        .map(|t| {
            let corr = z_product_expectation_lightcone(circuit, t.qubits())?;
            Ok(t.offset() + t.coeff() * corr)
        })
        .collect();
    Ok(problem.constant() + contributions?.into_iter().sum::<f64>())
}

/// Sequential variant of [`problem_expectation`], used by the two-level
/// parallelization ablation.
pub fn problem_expectation_sequential(
    circuit: &Circuit,
    problem: &Problem,
) -> Result<f64, TensorNetError> {
    let mut total = problem.constant();
    for t in problem.terms() {
        let corr = z_product_expectation_lightcone(circuit, t.qubits())?;
        total += t.offset() + t.coeff() * corr;
    }
    Ok(total)
}

/// The Max-Cut QAOA energy ⟨C⟩ = Σ_e w_e (1 − ⟨Z_u Z_v⟩)/2 computed edge by
/// edge with light-cone reduction. Edges are processed in parallel with
/// Rayon — this is the *inner* level of the two-level parallelization
/// described in the paper (the outer level parallelizes over candidate
/// circuits).
pub fn maxcut_expectation(
    circuit: &Circuit,
    edges: &[(usize, usize, f64)],
) -> Result<f64, TensorNetError> {
    let contributions: Result<Vec<f64>, TensorNetError> = edges
        .par_iter()
        .map(|&(u, v, w)| {
            let zz = zz_expectation_lightcone(circuit, u, v)?;
            Ok(0.5 * w * (1.0 - zz))
        })
        .collect();
    Ok(contributions?.into_iter().sum())
}

/// Sequential variant of [`maxcut_expectation`], used by the two-level
/// parallelization ablation.
pub fn maxcut_expectation_sequential(
    circuit: &Circuit,
    edges: &[(usize, usize, f64)],
) -> Result<f64, TensorNetError> {
    let mut total = 0.0;
    for &(u, v, w) in edges {
        let zz = zz_expectation_lightcone(circuit, u, v)?;
        total += 0.5 * w * (1.0 - zz);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Gate, Parameter};

    /// A p=1 QAOA circuit on a path graph 0-1-2-3 with the standard RX mixer.
    fn qaoa_path_circuit(gamma: f64, beta: f64) -> Circuit {
        let mut c = Circuit::new(4);
        c.h_layer();
        for &(u, v) in &[(0usize, 1usize), (1, 2), (2, 3)] {
            c.rzz(u, v, 2.0 * gamma);
        }
        for q in 0..4 {
            c.rx(q, 2.0 * beta);
        }
        c
    }

    #[test]
    fn cone_of_isolated_qubit_is_narrow() {
        let c = qaoa_path_circuit(0.5, 0.3);
        // Qubits 0 and 1 interact only with each other and qubit 2.
        let cone = LightCone::of(&c, &[0, 1]);
        assert!(
            cone.width() <= 3,
            "cone width {} should exclude qubit 3",
            cone.width()
        );
        assert!(cone.relabelled(0).is_some());
        assert!(cone.relabelled(1).is_some());
        assert!(cone.relabelled(3).is_none());
    }

    #[test]
    fn cone_keeps_all_gates_when_everything_interacts() {
        let mut c = Circuit::new(3);
        c.h_layer();
        c.cx(0, 1).cx(1, 2);
        let cone = LightCone::of(&c, &[0]);
        // CX(1,2) precedes nothing acting on 0, but CX(0,1) activates 1,
        // whose earlier gate H(1) must be kept; qubit 2's H is dropped only if
        // CX(1,2) is outside the cone — it is *inside* because it acts on
        // qubit 1 after activation? No: walking backwards from {0}, CX(1,2)
        // is seen before CX(0,1), at which point only 0 is active, so it is
        // dropped.
        assert_eq!(cone.width(), 2);
        assert_eq!(cone.circuit.num_qubits(), 2);
    }

    #[test]
    fn cone_of_empty_targets_is_empty() {
        let c = qaoa_path_circuit(0.1, 0.2);
        let cone = LightCone::of(&c, &[]);
        assert_eq!(cone.width(), 0);
        assert_eq!(cone.circuit.len(), 0);
    }

    #[test]
    fn lightcone_zz_matches_full_network() {
        let c = qaoa_path_circuit(0.7, 0.4);
        for &(u, v) in &[(0usize, 1usize), (1, 2), (2, 3)] {
            let full = TensorNetwork::zz_expectation(&c, u, v).unwrap();
            let cone = zz_expectation_lightcone(&c, u, v).unwrap();
            assert!(
                (full - cone).abs() < 1e-10,
                "edge ({u},{v}): full {full} vs cone {cone}"
            );
        }
    }

    #[test]
    fn maxcut_expectation_parallel_equals_sequential() {
        let c = qaoa_path_circuit(0.6, 0.3);
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)];
        let par = maxcut_expectation(&c, &edges).unwrap();
        let seq = maxcut_expectation_sequential(&c, &edges).unwrap();
        assert!((par - seq).abs() < 1e-12);
    }

    #[test]
    fn maxcut_expectation_at_zero_angles_is_half_weight() {
        // With γ = β = 0 the state stays |+…+⟩ and every edge is cut with
        // probability 1/2.
        let c = qaoa_path_circuit(0.0, 0.0);
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)];
        let e = maxcut_expectation(&c, &edges).unwrap();
        assert!((e - 1.5).abs() < 1e-10);
    }

    #[test]
    fn z_product_generalizes_zz_and_z() {
        let c = qaoa_path_circuit(0.7, 0.4);
        // Arity 2 matches the historical ZZ path bitwise.
        for &(u, v) in &[(0usize, 1usize), (1, 2), (2, 3)] {
            let zz = zz_expectation_lightcone(&c, u, v).unwrap();
            let prod = z_product_expectation_lightcone(&c, &[u, v]).unwrap();
            assert_eq!(zz.to_bits(), prod.to_bits());
        }
        // Arity 1 matches the full-network single-Z contraction.
        for q in 0..4 {
            let full = TensorNetwork::z_expectation(&c, q).unwrap();
            let cone = z_product_expectation_lightcone(&c, &[q]).unwrap();
            assert!((full - cone).abs() < 1e-10, "qubit {q}");
        }
        // Empty products are 1 by convention.
        assert_eq!(z_product_expectation_lightcone(&c, &[]).unwrap(), 1.0);
    }

    #[test]
    fn problem_expectation_matches_maxcut_path_bitwise() {
        let g = graphs::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let problem = Problem::max_cut(&g);
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)];
        let c = qaoa_path_circuit(0.6, 0.3);
        let legacy = maxcut_expectation(&c, &edges).unwrap();
        let generic = problem_expectation(&c, &problem).unwrap();
        assert_eq!(legacy.to_bits(), generic.to_bits());
        let seq = problem_expectation_sequential(&c, &problem).unwrap();
        assert!((generic - seq).abs() < 1e-12);
    }

    #[test]
    fn problem_expectation_at_zero_angles_is_the_diagonal_mean() {
        // γ = β = 0 leaves the plus state, where ⟨C⟩ is the mean of C(z)
        // over all basis states — for any diagonal problem.
        let g = graphs::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = qaoa_path_circuit(0.0, 0.0);
        for problem in [
            Problem::max_independent_set(&g, 2.0),
            Problem::sherrington_kirkpatrick(&g, 9),
            Problem::random_partition(&g, 9),
        ] {
            let mean = (0..(1u64 << 4)).map(|m| problem.value_mask(m)).sum::<f64>() / 16.0;
            let e = problem_expectation(&c, &problem).unwrap();
            assert!(
                (e - mean).abs() < 1e-10,
                "{}: {e} vs {mean}",
                problem.name()
            );
        }
    }

    #[test]
    fn cone_handles_free_parameters() {
        // Light-cone reduction is purely structural, so free parameters
        // survive into the reduced circuit.
        let mut c = Circuit::new(3);
        c.h_layer();
        c.push(Gate::RZZ, &[0, 1], Parameter::free("gamma", 2.0));
        c.push(Gate::RX, &[0], Parameter::free("beta", 2.0));
        let cone = LightCone::of(&c, &[0, 1]);
        assert_eq!(
            cone.circuit.free_parameters(),
            vec!["beta".to_string(), "gamma".to_string()]
        );
    }
}
