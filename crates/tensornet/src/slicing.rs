//! Index slicing ("variable projection") for parallel contraction.
//!
//! QTensor's step-dependent parallelization (Lykov et al., QCE 2022) splits a
//! contraction that is too wide for one worker by **slicing**: a set of
//! indices is fixed to concrete values, the network is contracted once per
//! assignment of the sliced indices, and the partial results are summed.
//! Each slice is an independent contraction, so slices parallelize trivially
//! across threads (or, in the original system, across GPUs and nodes).
//!
//! For the 10-qubit workloads of the paper slicing is not *needed* — the
//! light-cone networks are small — but it is part of the QTensor feature set
//! the package builds on, it is exercised by the ordering/width machinery,
//! and it becomes relevant as soon as a user pushes the search to larger
//! graphs. Slice selection uses the standard greedy rule: repeatedly slice
//! the index with the highest degree in the interaction graph until the
//! estimated contraction width fits the target.

use crate::contraction::{contract_with_order, ContractionStats, DEFAULT_WIDTH_LIMIT};
use crate::error::TensorNetError;
use crate::network::TensorNetwork;
use crate::ordering::{ContractionOrder, InteractionGraph};
use crate::tensor::Tensor;
use num_complex::Complex64;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// A slicing plan: which indices are fixed and the elimination order for the
/// remaining (un-sliced) network.
#[derive(Debug, Clone, PartialEq)]
pub struct SlicingPlan {
    /// Indices fixed to concrete values; each doubles the number of slices.
    pub sliced_indices: Vec<usize>,
    /// Elimination order for the remaining indices.
    pub order: ContractionOrder,
    /// Estimated width after slicing.
    pub sliced_width: usize,
}

impl SlicingPlan {
    /// Number of independent slices (`2^sliced_indices.len()`).
    pub fn num_slices(&self) -> usize {
        1usize << self.sliced_indices.len()
    }
}

/// Greedily choose indices to slice until the estimated width of the residual
/// network is at most `target_width` (or `max_sliced` indices have been
/// sliced).
pub fn plan_slicing(tensors: &[Tensor], target_width: usize, max_sliced: usize) -> SlicingPlan {
    let mut sliced: Vec<usize> = Vec::new();

    loop {
        // Interaction graph of the network with the sliced indices removed
        // (slicing an index removes it from every tensor).
        let remaining: Vec<Vec<usize>> = tensors
            .iter()
            .map(|t| {
                t.indices()
                    .iter()
                    .copied()
                    .filter(|i| !sliced.contains(i))
                    .collect::<Vec<usize>>()
            })
            .collect();
        let graph = InteractionGraph::from_tensor_indices(remaining.iter().map(|v| v.as_slice()));
        let order = graph.best_order();

        if order.width <= target_width || sliced.len() >= max_sliced || graph.num_indices() == 0 {
            let sliced_width = order.width;
            return SlicingPlan {
                sliced_indices: sliced,
                order,
                sliced_width,
            };
        }

        // Slice the index with the largest degree in the current interaction
        // graph (ties broken by id for determinism).
        let mut degree: BTreeMap<usize, usize> = BTreeMap::new();
        for indices in &remaining {
            for &i in indices {
                *degree.entry(i).or_insert(0) += indices.len() - 1;
            }
        }
        let Some((&best_index, _)) = degree
            .iter()
            .max_by_key(|(idx, d)| (**d, usize::MAX - **idx))
        else {
            let sliced_width = order.width;
            return SlicingPlan {
                sliced_indices: sliced,
                order,
                sliced_width,
            };
        };
        sliced.push(best_index);
    }
}

/// Fix `index` to `value` (0 or 1) in every tensor of the network, removing
/// the index from the tensors that carry it.
fn project_index(tensors: &[Tensor], index: usize, value: u8) -> Vec<Tensor> {
    tensors
        .iter()
        .map(|t| {
            if !t.has_index(index) {
                return t.clone();
            }
            // Select the hyperplane index = value: enumerate the remaining
            // indices and read the matching entries.
            let remaining: Vec<usize> = t
                .indices()
                .iter()
                .copied()
                .filter(|&i| i != index)
                .collect();
            let size = 1usize << remaining.len();
            let mut data = Vec::with_capacity(size);
            for pos in 0..size {
                let bit_of = |idx: usize| -> u8 {
                    if idx == index {
                        value
                    } else {
                        let j = remaining
                            .iter()
                            .position(|&r| r == idx)
                            .expect("remaining index");
                        ((pos >> (remaining.len() - 1 - j)) & 1) as u8
                    }
                };
                data.push(t.value_at(&bit_of));
            }
            Tensor::new(remaining, data).expect("projected tensor is well-formed")
        })
        .collect()
}

/// Contract a closed network by slicing: every assignment of the sliced
/// indices is contracted independently (in parallel) and the partial values
/// are summed.
pub fn contract_sliced(
    tensors: &[Tensor],
    plan: &SlicingPlan,
) -> Result<(Complex64, ContractionStats), TensorNetError> {
    if plan.sliced_indices.is_empty() {
        return contract_with_order(tensors.to_vec(), &plan.order, DEFAULT_WIDTH_LIMIT);
    }
    let num_slices = plan.num_slices();
    let partials: Result<Vec<(Complex64, ContractionStats)>, TensorNetError> = (0..num_slices)
        .into_par_iter()
        .map(|assignment| {
            let mut projected = tensors.to_vec();
            for (bit, &index) in plan.sliced_indices.iter().enumerate() {
                let value = ((assignment >> bit) & 1) as u8;
                projected = project_index(&projected, index, value);
            }
            contract_with_order(projected, &plan.order, DEFAULT_WIDTH_LIMIT)
        })
        .collect();
    let partials = partials?;
    let mut total = Complex64::new(0.0, 0.0);
    let mut stats = ContractionStats::default();
    for (value, s) in partials {
        total += value;
        stats.max_rank = stats.max_rank.max(s.max_rank);
        stats.multiplications += s.multiplications;
        stats.eliminated_indices += s.eliminated_indices;
    }
    Ok((total, stats))
}

impl TensorNetwork {
    /// Contract the network with slicing, targeting the given residual width.
    /// Equivalent to [`TensorNetwork::contract`] when no slicing is needed.
    pub fn contract_sliced(
        &self,
        target_width: usize,
        max_sliced: usize,
    ) -> Result<Complex64, TensorNetError> {
        let plan = plan_slicing(self.tensors(), target_width, max_sliced);
        contract_sliced(self.tensors(), &plan).map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Circuit;

    fn c(re: f64) -> Complex64 {
        Complex64::new(re, 0.0)
    }

    #[test]
    fn project_index_selects_hyperplane() {
        // T[i, j] with entries t_ij = 2i + j.
        let t = Tensor::new(vec![5, 9], vec![c(0.0), c(1.0), c(2.0), c(3.0)]).unwrap();
        let fixed0 = project_index(std::slice::from_ref(&t), 5, 0);
        assert_eq!(fixed0[0].indices(), &[9]);
        assert_eq!(fixed0[0].data(), &[c(0.0), c(1.0)]);
        let fixed1 = project_index(&[t], 5, 1);
        assert_eq!(fixed1[0].data(), &[c(2.0), c(3.0)]);
    }

    #[test]
    fn project_leaves_unrelated_tensors_alone() {
        let a = Tensor::new(vec![1], vec![c(1.0), c(2.0)]).unwrap();
        let projected = project_index(std::slice::from_ref(&a), 7, 1);
        assert_eq!(projected[0], a);
    }

    #[test]
    fn sliced_contraction_matches_unsliced_value() {
        // Use a real circuit network: a 4-qubit QAOA-like amplitude.
        let mut circuit = Circuit::new(4);
        circuit.h_layer();
        circuit
            .rzz(0, 1, 0.7)
            .rzz(1, 2, 0.9)
            .rzz(2, 3, 0.4)
            .rzz(0, 3, 1.1);
        circuit.rx(0, 0.5).rx(1, 0.5).rx(2, 0.5).rx(3, 0.5);
        let net = TensorNetwork::for_amplitude(&circuit).unwrap();
        let unsliced = net.contract().unwrap();

        // Force slicing by setting an artificially small target width.
        let plan = plan_slicing(net.tensors(), 2, 4);
        assert!(
            !plan.sliced_indices.is_empty(),
            "expected at least one sliced index"
        );
        let (sliced_value, _) = contract_sliced(net.tensors(), &plan).unwrap();
        assert!(
            (sliced_value - unsliced).norm() < 1e-10,
            "sliced {sliced_value} vs unsliced {unsliced}"
        );
    }

    #[test]
    fn network_level_sliced_contraction_matches() {
        let mut circuit = Circuit::new(3);
        circuit.h_layer();
        circuit.rzz(0, 1, 0.3).rzz(1, 2, 0.8);
        circuit.ry(0, 0.4).ry(1, 0.2).ry(2, 0.9);
        let net = TensorNetwork::for_diagonal_expectation(
            &circuit,
            &[(0, [1.0, -1.0]), (2, [1.0, -1.0])],
        )
        .unwrap();
        let plain = net.contract().unwrap();
        let sliced = net.contract_sliced(2, 6).unwrap();
        assert!((plain - sliced).norm() < 1e-10);
    }

    #[test]
    fn plan_respects_max_sliced() {
        let mut circuit = Circuit::new(5);
        circuit.h_layer();
        for q in 0..4 {
            circuit.cx(q, q + 1);
        }
        let net = TensorNetwork::for_amplitude(&circuit).unwrap();
        let plan = plan_slicing(net.tensors(), 1, 2);
        assert!(plan.sliced_indices.len() <= 2);
        assert_eq!(plan.num_slices(), 1 << plan.sliced_indices.len());
    }

    #[test]
    fn no_slicing_needed_returns_empty_plan() {
        let mut circuit = Circuit::new(2);
        circuit.h(0).cx(0, 1);
        let net = TensorNetwork::for_amplitude(&circuit).unwrap();
        let plan = plan_slicing(net.tensors(), DEFAULT_WIDTH_LIMIT, 8);
        assert!(plan.sliced_indices.is_empty());
        let (value, _) = contract_sliced(net.tensors(), &plan).unwrap();
        assert!((value - net.contract().unwrap()).norm() < 1e-12);
    }

    #[test]
    fn slicing_reduces_estimated_width() {
        // A clique-ish network where slicing must help.
        let mut circuit = Circuit::new(5);
        circuit.h_layer();
        for u in 0..5 {
            for v in (u + 1)..5 {
                circuit.rzz(u, v, 0.2);
            }
        }
        circuit
            .rx(0, 0.3)
            .rx(1, 0.3)
            .rx(2, 0.3)
            .rx(3, 0.3)
            .rx(4, 0.3);
        let net = TensorNetwork::for_amplitude(&circuit).unwrap();
        let unsliced_width = net.best_order().width;
        let plan = plan_slicing(net.tensors(), unsliced_width.saturating_sub(1).max(1), 3);
        if !plan.sliced_indices.is_empty() {
            assert!(plan.sliced_width <= unsliced_width);
        }
    }
}
