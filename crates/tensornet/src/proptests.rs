//! Property-based tests: the tensor-network backend must agree with the dense
//! state-vector backend on random circuits.

use crate::lightcone::{maxcut_expectation, zz_expectation_lightcone};
use crate::network::TensorNetwork;
use proptest::prelude::*;
use qcircuit::{Circuit, Gate, Parameter};
use statevec::expectation::{maxcut_expectation as sv_maxcut, zz_expectation as sv_zz};
use statevec::StateVector;

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::T),
        Just(Gate::RX),
        Just(Gate::RY),
        Just(Gate::RZ),
        Just(Gate::P),
        Just(Gate::CX),
        Just(Gate::CZ),
        Just(Gate::RZZ),
        Just(Gate::CP),
    ];
    proptest::collection::vec((gate, 0..n, 0..n, -3.2f64..3.2), 1..max_len).prop_map(
        move |instrs| {
            let mut c = Circuit::new(n);
            for (g, q0, q1, theta) in instrs {
                let param = if g.is_parameterized() {
                    Parameter::bound(theta)
                } else {
                    Parameter::None
                };
                if g.arity() == 1 {
                    c.push(g, &[q0], param);
                } else if q0 != q1 {
                    c.push(g, &[q0, q1], param);
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn amplitude_matches_statevector(c in arb_circuit(4, 14)) {
        let amp_tn = TensorNetwork::amplitude(&c).unwrap();
        let sv = StateVector::from_circuit(&c).unwrap();
        let amp_sv = sv.amplitudes()[0];
        prop_assert!((amp_tn - amp_sv).norm() < 1e-9,
            "tn {amp_tn} vs sv {amp_sv}");
    }

    #[test]
    fn zz_expectation_matches_statevector(c in arb_circuit(4, 12), u in 0usize..4, v in 0usize..4) {
        prop_assume!(u != v);
        let tn = TensorNetwork::zz_expectation(&c, u, v).unwrap();
        let sv = StateVector::from_circuit(&c).unwrap();
        let dense = sv_zz(&sv, u, v);
        prop_assert!((tn - dense).abs() < 1e-9, "tn {tn} vs dense {dense}");
    }

    #[test]
    fn lightcone_zz_matches_full_network(c in arb_circuit(5, 12), u in 0usize..5, v in 0usize..5) {
        prop_assume!(u != v);
        let full = TensorNetwork::zz_expectation(&c, u, v).unwrap();
        let cone = zz_expectation_lightcone(&c, u, v).unwrap();
        prop_assert!((full - cone).abs() < 1e-9, "full {full} vs cone {cone}");
    }

    #[test]
    fn maxcut_expectation_matches_statevector(c in arb_circuit(4, 12)) {
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 2.0)];
        let tn = maxcut_expectation(&c, &edges).unwrap();
        let sv = StateVector::from_circuit(&c).unwrap();
        let dense = sv_maxcut(&sv, &edges);
        prop_assert!((tn - dense).abs() < 1e-8, "tn {tn} vs dense {dense}");
    }

    #[test]
    fn z_expectation_is_real_and_bounded(c in arb_circuit(3, 10), q in 0usize..3) {
        let z = TensorNetwork::z_expectation(&c, q).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&z));
    }
}
