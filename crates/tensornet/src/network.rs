//! Building tensor networks from circuits and evaluating closed quantities.
//!
//! Two quantities cover everything QArchSearch needs:
//!
//! * the amplitude ⟨0…0|U|0…0⟩ (used for testing against the dense backend),
//! * expectation values ⟨0…0|U† D U|0…0⟩ of **diagonal** observables D — in
//!   particular `Z_u Z_v` correlators, from which the Max-Cut energy follows
//!   as `Σ_e w_e (1 − ⟨Z_u Z_v⟩)/2`.
//!
//! Diagonal gates (RZ, P, CZ, RZZ, CP, Z, S, T, …) are attached to existing
//! indices instead of creating new ones, which mirrors the diagonal-gate
//! optimization that QTensor relies on to keep contraction widths low for
//! QAOA circuits.

use crate::contraction::{contract_with_order, ContractionStats, DEFAULT_WIDTH_LIMIT};
use crate::error::TensorNetError;
use crate::ordering::{ContractionOrder, InteractionGraph, OrderingHeuristic};
use crate::tensor::Tensor;
use num_complex::Complex64;
use qcircuit::{Circuit, GateMatrix};

/// A closed tensor network assembled from a circuit and an implicit
/// observable, ready to be contracted.
#[derive(Debug, Clone)]
pub struct TensorNetwork {
    tensors: Vec<Tensor>,
    num_indices: usize,
}

/// Internal helper that hands out fresh index ids.
struct IndexAllocator {
    next: usize,
}

impl IndexAllocator {
    fn new() -> Self {
        IndexAllocator { next: 0 }
    }

    fn fresh(&mut self) -> usize {
        let id = self.next;
        self.next += 1;
        id
    }
}

/// Resolve every instruction of `circuit` to a concrete [`GateMatrix`],
/// failing on unbound parameters.
fn resolved_matrices(circuit: &Circuit) -> Result<Vec<GateMatrix>, TensorNetError> {
    circuit
        .instructions()
        .iter()
        .map(|inst| {
            inst.matrix(&|_| None)
                .ok_or_else(|| TensorNetError::UnboundParameter {
                    name: inst.parameter.name().unwrap_or("<unknown>").to_string(),
                })
        })
        .collect()
}

impl TensorNetwork {
    /// The tensors of the network.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Number of distinct indices allocated while building the network.
    pub fn num_indices(&self) -> usize {
        self.num_indices
    }

    /// Build the closed network for the amplitude ⟨0…0|U|0…0⟩.
    pub fn for_amplitude(circuit: &Circuit) -> Result<TensorNetwork, TensorNetError> {
        let matrices = resolved_matrices(circuit)?;
        let n = circuit.num_qubits();
        let mut alloc = IndexAllocator::new();
        let mut tensors = Vec::new();

        // |0⟩ caps at the input.
        let mut current: Vec<usize> = (0..n).map(|_| alloc.fresh()).collect();
        for &idx in &current {
            tensors.push(ket_zero(idx));
        }

        append_circuit_tensors(
            circuit,
            &matrices,
            &mut alloc,
            &mut tensors,
            &mut current,
            false,
        );

        // ⟨0| caps at the output.
        for &idx in &current {
            tensors.push(ket_zero(idx));
        }

        Ok(TensorNetwork {
            tensors,
            num_indices: alloc.next,
        })
    }

    /// Build the closed network for ⟨0…0|U† D U|0…0⟩ where `D` is a product of
    /// single-qubit diagonal observables given as `(qubit, [d0, d1])` pairs.
    pub fn for_diagonal_expectation(
        circuit: &Circuit,
        observables: &[(usize, [f64; 2])],
    ) -> Result<TensorNetwork, TensorNetError> {
        let matrices = resolved_matrices(circuit)?;
        let n = circuit.num_qubits();
        let mut alloc = IndexAllocator::new();
        let mut tensors = Vec::new();

        // Ket side: |0⟩ caps, then the circuit.
        let mut current: Vec<usize> = (0..n).map(|_| alloc.fresh()).collect();
        let initial: Vec<usize> = current.clone();
        for &idx in &initial {
            tensors.push(ket_zero(idx));
        }
        append_circuit_tensors(
            circuit,
            &matrices,
            &mut alloc,
            &mut tensors,
            &mut current,
            false,
        );

        // The diagonal observable lives on the final ket indices; because it
        // is diagonal it identifies the ket and bra output indices, so the
        // bra walk below starts from these same indices.
        for &(qubit, diag) in observables {
            let idx = current[qubit];
            tensors.push(
                Tensor::new(
                    vec![idx],
                    vec![Complex64::new(diag[0], 0.0), Complex64::new(diag[1], 0.0)],
                )
                .expect("observable tensor is well-formed"),
            );
        }

        // Bra side: walk the circuit backwards with conjugated tensors.
        let mut bra_current = current;
        append_circuit_tensors(
            circuit,
            &matrices,
            &mut alloc,
            &mut tensors,
            &mut bra_current,
            true,
        );
        // ⟨0| caps at the (temporal) input of the bra chain.
        for &idx in &bra_current {
            tensors.push(ket_zero(idx));
        }

        Ok(TensorNetwork {
            tensors,
            num_indices: alloc.next,
        })
    }

    /// Contract the network with the better of the min-degree / min-fill
    /// orders, returning the scalar value.
    pub fn contract(&self) -> Result<Complex64, TensorNetError> {
        self.contract_with_stats().map(|(v, _)| v)
    }

    /// Contract and also report contraction statistics.
    pub fn contract_with_stats(&self) -> Result<(Complex64, ContractionStats), TensorNetError> {
        let order = self.best_order();
        contract_with_order(self.tensors.clone(), &order, DEFAULT_WIDTH_LIMIT)
    }

    /// Contract using an explicit ordering heuristic.
    pub fn contract_with_heuristic(
        &self,
        heuristic: OrderingHeuristic,
    ) -> Result<(Complex64, ContractionStats), TensorNetError> {
        let order = self.order_with(heuristic);
        contract_with_order(self.tensors.clone(), &order, DEFAULT_WIDTH_LIMIT)
    }

    /// The elimination order the automatic contraction would use.
    pub fn best_order(&self) -> ContractionOrder {
        InteractionGraph::from_tensor_indices(self.tensors.iter().map(|t| t.indices())).best_order()
    }

    /// The elimination order produced by a specific heuristic.
    pub fn order_with(&self, heuristic: OrderingHeuristic) -> ContractionOrder {
        InteractionGraph::from_tensor_indices(self.tensors.iter().map(|t| t.indices()))
            .elimination_order(heuristic)
    }

    // ---- convenience entry points -------------------------------------------

    /// ⟨0…0|U|0…0⟩ of a (fully bound) circuit.
    pub fn amplitude(circuit: &Circuit) -> Result<Complex64, TensorNetError> {
        TensorNetwork::for_amplitude(circuit)?.contract()
    }

    /// ⟨Z_u Z_v⟩ on the output state of a (fully bound) circuit.
    pub fn zz_expectation(circuit: &Circuit, u: usize, v: usize) -> Result<f64, TensorNetError> {
        let net = TensorNetwork::for_diagonal_expectation(
            circuit,
            &[(u, [1.0, -1.0]), (v, [1.0, -1.0])],
        )?;
        Ok(net.contract()?.re)
    }

    /// ⟨Z_u⟩ on the output state of a (fully bound) circuit.
    pub fn z_expectation(circuit: &Circuit, u: usize) -> Result<f64, TensorNetError> {
        let net = TensorNetwork::for_diagonal_expectation(circuit, &[(u, [1.0, -1.0])])?;
        Ok(net.contract()?.re)
    }

    /// `⟨Π_{q ∈ qubits} Z_q⟩` on the output state of a (fully bound)
    /// circuit — the arbitrary-arity generalization of
    /// [`TensorNetwork::zz_expectation`] that the problem-generic light-cone
    /// evaluation contracts per cost term. An empty product is `1`.
    pub fn z_product_expectation(
        circuit: &Circuit,
        qubits: &[usize],
    ) -> Result<f64, TensorNetError> {
        if qubits.is_empty() {
            return Ok(1.0);
        }
        let observables: Vec<(usize, [f64; 2])> =
            qubits.iter().map(|&q| (q, [1.0, -1.0])).collect();
        let net = TensorNetwork::for_diagonal_expectation(circuit, &observables)?;
        Ok(net.contract()?.re)
    }
}

/// The |0⟩ cap tensor on one index.
fn ket_zero(index: usize) -> Tensor {
    Tensor::new(
        vec![index],
        vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 0.0)],
    )
    .expect("cap tensor is well-formed")
}

/// Append the tensors of `circuit` to `tensors`, threading per-qubit index
/// chains through `current`.
///
/// * `conjugate = false`: forward (ket) walk — `current[q]` is the *latest*
///   index of qubit `q`; gate tensors map old index → new index.
/// * `conjugate = true`: backward (bra) walk — instructions are visited in
///   reverse, tensor data is conjugated, and the chain grows from the final
///   indices toward the circuit input.
fn append_circuit_tensors(
    circuit: &Circuit,
    matrices: &[GateMatrix],
    alloc: &mut IndexAllocator,
    tensors: &mut Vec<Tensor>,
    current: &mut [usize],
    conjugate: bool,
) {
    let instruction_order: Vec<usize> = if conjugate {
        (0..circuit.instructions().len()).rev().collect()
    } else {
        (0..circuit.instructions().len()).collect()
    };

    for inst_idx in instruction_order {
        let inst = &circuit.instructions()[inst_idx];
        let matrix = &matrices[inst_idx];
        let maybe_conj = |v: Complex64| if conjugate { v.conj() } else { v };

        match matrix {
            GateMatrix::One(m) => {
                let q = inst.qubits[0];
                if let Some(diag) = matrix.diagonal() {
                    // Diagonal gate: attach to the existing index.
                    let data: Vec<Complex64> = diag.into_iter().map(maybe_conj).collect();
                    tensors.push(
                        Tensor::new(vec![current[q]], data).expect("diagonal tensor well-formed"),
                    );
                } else {
                    let fresh = alloc.fresh();
                    // Forward walk: T[out, in]; backward walk the roles of the
                    // chain ends swap, but since we also transpose implicitly
                    // by keeping [row, col] = [out, in] and connecting `out`
                    // to the later index, using [later, earlier] with
                    // conjugated (not transposed) data gives exactly U† on the
                    // bra side: (U†)[earlier, later] = conj(U[later, earlier]).
                    let (out_idx, in_idx) = if conjugate {
                        (current[q], fresh)
                    } else {
                        (fresh, current[q])
                    };
                    let data: Vec<Complex64> = m.iter().copied().map(maybe_conj).collect();
                    tensors.push(
                        Tensor::new(vec![out_idx, in_idx], data).expect("gate tensor well-formed"),
                    );
                    current[q] = fresh;
                }
            }
            GateMatrix::Two(m) => {
                let (qa, qb) = (inst.qubits[0], inst.qubits[1]);
                if let Some(diag) = matrix.diagonal() {
                    // Diagonal two-qubit gate: rank-2 tensor on the existing
                    // indices, basis order |q_a q_b⟩ matching GateMatrix.
                    let data: Vec<Complex64> = diag.into_iter().map(maybe_conj).collect();
                    tensors.push(
                        Tensor::new(vec![current[qa], current[qb]], data)
                            .expect("diagonal tensor well-formed"),
                    );
                } else {
                    let fresh_a = alloc.fresh();
                    let fresh_b = alloc.fresh();
                    let (out_a, out_b, in_a, in_b) = if conjugate {
                        (current[qa], current[qb], fresh_a, fresh_b)
                    } else {
                        (fresh_a, fresh_b, current[qa], current[qb])
                    };
                    let data: Vec<Complex64> = m.iter().copied().map(maybe_conj).collect();
                    tensors.push(
                        Tensor::new(vec![out_a, out_b, in_a, in_b], data)
                            .expect("gate tensor well-formed"),
                    );
                    current[qa] = fresh_a;
                    current[qb] = fresh_b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    #[test]
    fn amplitude_of_empty_circuit_is_one() {
        let c = Circuit::new(3);
        let amp = TensorNetwork::amplitude(&c).unwrap();
        assert!((amp - Complex64::new(1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn amplitude_of_single_hadamard() {
        let mut c = Circuit::new(1);
        c.h(0);
        let amp = TensorNetwork::amplitude(&c).unwrap();
        assert!((amp.re - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn amplitude_of_x_gate_is_zero() {
        let mut c = Circuit::new(1);
        c.x(0);
        let amp = TensorNetwork::amplitude(&c).unwrap();
        assert!(amp.norm() < 1e-12);
    }

    #[test]
    fn amplitude_matches_h_h_identity() {
        // H·H = I, so ⟨0|HH|0⟩ = 1.
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let amp = TensorNetwork::amplitude(&c).unwrap();
        assert!((amp.re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_of_bell_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let amp = TensorNetwork::amplitude(&c).unwrap();
        assert!((amp.re - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn diagonal_gates_do_not_allocate_new_indices() {
        let mut diag_only = Circuit::new(2);
        diag_only.rz(0, 0.3).rzz(0, 1, 0.5).cz(0, 1).p(1, 0.2);
        let net = TensorNetwork::for_amplitude(&diag_only).unwrap();
        // Only the two initial cap indices exist.
        assert_eq!(net.num_indices(), 2);

        let mut with_h = Circuit::new(2);
        with_h.h(0).h(1);
        let net2 = TensorNetwork::for_amplitude(&with_h).unwrap();
        // Two caps + one new index per H.
        assert_eq!(net2.num_indices(), 4);
    }

    #[test]
    fn z_expectation_on_zero_state() {
        let c = Circuit::new(1);
        assert!((TensorNetwork::z_expectation(&c, 0).unwrap() - 1.0).abs() < 1e-12);
        let mut cx = Circuit::new(1);
        cx.x(0);
        assert!((TensorNetwork::z_expectation(&cx, 0).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_expectation_after_rx() {
        // ⟨Z⟩ after RX(θ) on |0⟩ is cos(θ).
        for theta in [0.0, 0.4, 1.3, PI / 2.0, PI] {
            let mut c = Circuit::new(1);
            c.rx(0, theta);
            let z = TensorNetwork::z_expectation(&c, 0).unwrap();
            assert!((z - theta.cos()).abs() < 1e-10, "theta={theta}: {z}");
        }
    }

    #[test]
    fn zz_expectation_on_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let zz = TensorNetwork::zz_expectation(&c, 0, 1).unwrap();
        assert!((zz - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zz_expectation_on_plus_states_is_zero() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let zz = TensorNetwork::zz_expectation(&c, 0, 1).unwrap();
        assert!(zz.abs() < 1e-10);
    }

    #[test]
    fn unbound_parameter_is_rejected() {
        use qcircuit::{Gate, Parameter};
        let mut c = Circuit::new(1);
        c.push(Gate::RX, &[0], Parameter::free("beta", 1.0));
        assert!(matches!(
            TensorNetwork::amplitude(&c),
            Err(TensorNetError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn qaoa_p1_single_edge_expectation_matches_closed_form() {
        // For a single edge with QAOA p=1 and the standard RX mixer,
        // ⟨Z_0 Z_1⟩ = cos(2β)... the closed form for one isolated edge is
        // ⟨C⟩ = (1 + sin(2β) sin(γ)) / 2 ... rather than rely on the formula,
        // compare against the dense simulator in the integration tests; here
        // just check the value is a sane correlation.
        let (gamma, beta) = (0.7, 0.4);
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        c.rzz(0, 1, 2.0 * gamma);
        c.rx(0, 2.0 * beta).rx(1, 2.0 * beta);
        let zz = TensorNetwork::zz_expectation(&c, 0, 1).unwrap();
        assert!(zz.abs() <= 1.0 + 1e-10);
    }

    #[test]
    fn expectation_network_has_two_walks_worth_of_tensors() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).rzz(0, 1, 0.5).rx(0, 0.3);
        let net = TensorNetwork::for_diagonal_expectation(&c, &[(0, [1.0, -1.0])]).unwrap();
        // 2 ket caps + 2 bra caps + 1 observable + (3 non-diag + 1 diag) * 2.
        assert_eq!(net.tensors().len(), 2 + 2 + 1 + 8);
    }
}
