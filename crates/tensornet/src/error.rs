//! Error types for the tensor-network backend.

use thiserror::Error;

/// Errors raised while building or contracting tensor networks.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum TensorNetError {
    /// The circuit contains unbound parameters.
    #[error("cannot build a tensor network from a circuit with unbound parameter '{name}'")]
    UnboundParameter {
        /// Name of the unbound parameter.
        name: String,
    },

    /// Tensor construction was given inconsistent data.
    #[error(
        "tensor with {indices} binary indices requires {expected} entries but {got} were given"
    )]
    InvalidTensorData {
        /// Number of indices.
        indices: usize,
        /// Expected entry count (2^indices).
        expected: usize,
        /// Supplied entry count.
        got: usize,
    },

    /// An index appears more than once in a single tensor.
    #[error("index {index} appears more than once in one tensor")]
    DuplicateIndex {
        /// The repeated index id.
        index: usize,
    },

    /// The requested contraction would exceed the width limit.
    #[error("contraction width {width} exceeds the limit of {limit} indices")]
    WidthLimitExceeded {
        /// Width of the offending intermediate tensor.
        width: usize,
        /// Configured limit.
        limit: usize,
    },

    /// The network still has open indices where a scalar was expected.
    #[error("expected a closed network but {count} open indices remain")]
    OpenIndicesRemain {
        /// Number of dangling indices.
        count: usize,
    },
}
