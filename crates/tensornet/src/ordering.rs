//! Contraction-order heuristics.
//!
//! Bucket elimination contracts the network one *index* at a time; the cost is
//! exponential in the **contraction width** — the rank of the largest
//! intermediate tensor. QTensor's key ingredient is a good elimination order;
//! this module provides the two standard greedy heuristics (min-degree and
//! min-fill) over the index interaction graph (the "line graph" of the tensor
//! network) plus width estimation, so the backend can pick the cheaper order
//! before contracting.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Which greedy heuristic to use when ordering indices for elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderingHeuristic {
    /// Eliminate the index with the fewest neighbours first.
    MinDegree,
    /// Eliminate the index whose elimination adds the fewest new edges
    /// (fill-in) to the interaction graph.
    MinFill,
    /// Keep the indices in their natural (creation) order.
    Natural,
}

/// An elimination order together with its estimated contraction width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContractionOrder {
    /// Indices in elimination order.
    pub order: Vec<usize>,
    /// Estimated contraction width: the largest clique formed during
    /// elimination (equals the largest intermediate tensor rank + 1 bucket
    /// index, an upper bound on what the contractor will see).
    pub width: usize,
    /// The heuristic that produced this order.
    pub heuristic: OrderingHeuristic,
}

/// The index interaction graph: vertices are index ids, with an edge between
/// two indices whenever some tensor carries both.
#[derive(Debug, Clone, Default)]
pub struct InteractionGraph {
    adjacency: BTreeMap<usize, BTreeSet<usize>>,
}

impl InteractionGraph {
    /// Build the interaction graph from the index lists of all tensors.
    pub fn from_tensor_indices<'a, I>(tensors: I) -> Self
    where
        I: IntoIterator<Item = &'a [usize]>,
    {
        let mut g = InteractionGraph::default();
        for indices in tensors {
            for &i in indices {
                g.adjacency.entry(i).or_default();
            }
            for (a, &i) in indices.iter().enumerate() {
                for &j in indices.iter().skip(a + 1) {
                    g.adjacency.entry(i).or_default().insert(j);
                    g.adjacency.entry(j).or_default().insert(i);
                }
            }
        }
        g
    }

    /// Number of index vertices.
    pub fn num_indices(&self) -> usize {
        self.adjacency.len()
    }

    /// All index ids in the graph.
    pub fn indices(&self) -> Vec<usize> {
        self.adjacency.keys().copied().collect()
    }

    /// Compute an elimination order with the requested heuristic.
    ///
    /// Elimination simulates the contraction: removing an index connects all
    /// of its remaining neighbours into a clique (they end up in the same
    /// intermediate tensor). The returned width is `1 +` the largest
    /// neighbourhood encountered, i.e. the rank of the largest bucket tensor
    /// before summation.
    pub fn elimination_order(&self, heuristic: OrderingHeuristic) -> ContractionOrder {
        let mut adjacency = self.adjacency.clone();
        let mut order = Vec::with_capacity(adjacency.len());
        let mut width = 0usize;

        while !adjacency.is_empty() {
            let chosen = match heuristic {
                OrderingHeuristic::Natural => *adjacency.keys().next().expect("non-empty"),
                OrderingHeuristic::MinDegree => *adjacency
                    .iter()
                    .min_by_key(|(idx, neigh)| (neigh.len(), **idx))
                    .map(|(idx, _)| idx)
                    .expect("non-empty"),
                OrderingHeuristic::MinFill => *adjacency
                    .iter()
                    .min_by_key(|(idx, neigh)| {
                        let fill = Self::fill_in(&adjacency, neigh);
                        (fill, neigh.len(), **idx)
                    })
                    .map(|(idx, _)| idx)
                    .expect("non-empty"),
            };

            let neighbours = adjacency.remove(&chosen).unwrap_or_default();
            width = width.max(neighbours.len() + 1);

            // Connect the neighbours into a clique and drop the eliminated index.
            for &n in &neighbours {
                if let Some(adj) = adjacency.get_mut(&n) {
                    adj.remove(&chosen);
                    for &m in &neighbours {
                        if m != n {
                            adj.insert(m);
                        }
                    }
                }
            }
            order.push(chosen);
        }
        ContractionOrder {
            order,
            width,
            heuristic,
        }
    }

    /// Number of edges that eliminating a vertex with this neighbourhood
    /// would add.
    fn fill_in(
        adjacency: &BTreeMap<usize, BTreeSet<usize>>,
        neighbours: &BTreeSet<usize>,
    ) -> usize {
        let mut fill = 0;
        let neigh: Vec<usize> = neighbours.iter().copied().collect();
        for (i, &a) in neigh.iter().enumerate() {
            for &b in neigh.iter().skip(i + 1) {
                let connected = adjacency.get(&a).map(|s| s.contains(&b)).unwrap_or(false);
                if !connected {
                    fill += 1;
                }
            }
        }
        fill
    }

    /// Pick the better (smaller-width) of the min-degree and min-fill orders.
    pub fn best_order(&self) -> ContractionOrder {
        let a = self.elimination_order(OrderingHeuristic::MinDegree);
        let b = self.elimination_order(OrderingHeuristic::MinFill);
        if b.width < a.width {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interaction_graph_from_tensors() {
        // Tensors: {0,1}, {1,2}, {2,3}
        let lists: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let g = InteractionGraph::from_tensor_indices(lists.iter().map(|v| v.as_slice()));
        assert_eq!(g.num_indices(), 4);
        assert_eq!(g.indices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn chain_has_width_two() {
        // A path interaction graph eliminates with width 2 (rank-2 buckets).
        let lists: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]];
        let g = InteractionGraph::from_tensor_indices(lists.iter().map(|v| v.as_slice()));
        for h in [OrderingHeuristic::MinDegree, OrderingHeuristic::MinFill] {
            let o = g.elimination_order(h);
            assert_eq!(o.order.len(), 5);
            assert_eq!(o.width, 2, "heuristic {h:?}");
        }
    }

    #[test]
    fn clique_width_equals_size() {
        // One tensor over 4 indices: the interaction graph is K4.
        let lists: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3]];
        let g = InteractionGraph::from_tensor_indices(lists.iter().map(|v| v.as_slice()));
        let o = g.elimination_order(OrderingHeuristic::MinDegree);
        assert_eq!(o.width, 4);
    }

    #[test]
    fn orders_are_permutations_of_indices() {
        let lists: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![5, 0]];
        let g = InteractionGraph::from_tensor_indices(lists.iter().map(|v| v.as_slice()));
        for h in [
            OrderingHeuristic::MinDegree,
            OrderingHeuristic::MinFill,
            OrderingHeuristic::Natural,
        ] {
            let o = g.elimination_order(h);
            let mut sorted = o.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5], "heuristic {h:?}");
        }
    }

    #[test]
    fn min_fill_is_no_worse_than_natural_on_a_cycle() {
        // A 6-cycle of rank-2 tensors.
        let lists: Vec<Vec<usize>> = (0..6).map(|i| vec![i, (i + 1) % 6]).collect();
        let g = InteractionGraph::from_tensor_indices(lists.iter().map(|v| v.as_slice()));
        let fill = g.elimination_order(OrderingHeuristic::MinFill);
        let natural = g.elimination_order(OrderingHeuristic::Natural);
        assert!(fill.width <= natural.width);
        assert!(fill.width <= 3);
    }

    #[test]
    fn best_order_picks_smaller_width() {
        let lists: Vec<Vec<usize>> =
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0], vec![1, 3]];
        let g = InteractionGraph::from_tensor_indices(lists.iter().map(|v| v.as_slice()));
        let best = g.best_order();
        let md = g.elimination_order(OrderingHeuristic::MinDegree);
        let mf = g.elimination_order(OrderingHeuristic::MinFill);
        assert!(best.width <= md.width);
        assert!(best.width <= mf.width || best.width <= md.width);
    }

    #[test]
    fn empty_graph_gives_empty_order() {
        let g = InteractionGraph::from_tensor_indices(std::iter::empty::<&[usize]>());
        let o = g.elimination_order(OrderingHeuristic::MinDegree);
        assert!(o.order.is_empty());
        assert_eq!(o.width, 0);
    }
}
