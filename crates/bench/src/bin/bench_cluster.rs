//! JSON-emitting benchmark for the distributed serve tier behind
//! `qas coordinator`: cluster throughput at 1, 2 and 4 shards, plus the
//! latency of recovering from a SIGKILLed shard.
//!
//! Each throughput sweep fronts N real `qas serve --port` subprocesses
//! with an in-process [`Coordinator`], submits the same batch of small
//! searches (distinct seeds, so the cluster-wide result cache cannot
//! dedupe them) and measures the wall-clock to drain the fleet. The
//! recovery sweep runs one long job on a 2-shard cluster, SIGKILLs its
//! owner mid-flight, and splits the recovery into *detect+migrate* (kill
//! to the coordinator's migration counter ticking) and *total* (kill to
//! the migrated result landing, which includes the re-run).
//!
//! The `qas` binary is found via `$QAS_BIN`, falling back to a `qas`
//! sitting next to this executable (the usual
//! `cargo build --release` layout).
//!
//! ```text
//! cargo build --release --bin qas
//! cargo build --release -p qarchsearch_bench --bin bench_cluster
//! ./target/release/bench_cluster
//! QAS_CL_SHARDS=1,2 QAS_CL_JOBS=4 ./target/release/bench_cluster
//! ```
//!
//! | variable          | meaning                               | default |
//! |-------------------|---------------------------------------|---------|
//! | `QAS_BIN`         | path to the `qas` binary              | sibling |
//! | `QAS_CL_SHARDS`   | comma list of shard counts to sweep   | 1,2,4   |
//! | `QAS_CL_JOBS`     | jobs submitted per sweep              | 8       |
//! | `QAS_CL_NODES`    | nodes per training graph              | 8       |
//! | `QAS_CL_PMAX`     | search depth per job                  | 1       |
//! | `QAS_CL_BUDGET`   | optimizer budget per candidate        | 30      |

use graphs::Graph;
use qarchsearch::cluster::{ClusterConfig, Coordinator, ShardEndpoint};
use qarchsearch::search::SearchConfig;
use qarchsearch::server::JobSpec;
use qarchsearch::GateAlphabet;
use serde_json::json;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn qas_bin() -> PathBuf {
    if let Ok(path) = std::env::var("QAS_BIN") {
        return PathBuf::from(path);
    }
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("qas")));
    match sibling {
        Some(path) if path.exists() => path,
        _ => panic!("set QAS_BIN or build the qas binary next to bench_cluster"),
    }
}

struct ShardProc {
    child: Child,
    addr: String,
    state_dir: PathBuf,
}

impl ShardProc {
    fn spawn(tag: &str, workers: usize) -> ShardProc {
        let port = {
            let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind an ephemeral port");
            listener.local_addr().expect("local addr").port()
        };
        let state_dir =
            std::env::temp_dir().join(format!("qas-bench-cluster-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        std::fs::create_dir_all(&state_dir).expect("create shard state dir");
        let child = Command::new(qas_bin())
            .args([
                "serve",
                "--port",
                &port.to_string(),
                "--bind",
                "127.0.0.1",
                "--workers",
                &workers.to_string(),
                "--state-dir",
                state_dir.to_str().expect("utf-8 temp path"),
                "--shard-id",
                tag,
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn qas serve");
        let addr = format!("127.0.0.1:{port}");
        let deadline = Instant::now() + Duration::from_secs(20);
        while TcpStream::connect(&addr).is_err() {
            assert!(Instant::now() < deadline, "shard {tag} never came up");
            std::thread::sleep(Duration::from_millis(25));
        }
        ShardProc {
            child,
            addr,
            state_dir,
        }
    }

    fn endpoint(&self) -> ShardEndpoint {
        ShardEndpoint::new(self.addr.clone()).with_state_dir(self.state_dir.clone())
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
        let _ = std::fs::remove_dir_all(&self.state_dir);
    }
}

fn job_spec(seed: u64, nodes: usize, p_max: usize, budget: usize) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(p_max)
        .max_gates_per_mixer(2)
        .optimizer_budget(budget)
        .halving(budget.div_ceil(3).max(1), 2)
        .backend(qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    let graphs = vec![Graph::connected_erdos_renyi(nodes, 0.5, seed, 50)];
    JobSpec::new(config, graphs).name(format!("bench-cluster-{seed}"))
}

fn cluster_config(shards: Vec<ShardEndpoint>) -> ClusterConfig {
    let mut config = ClusterConfig::new(shards);
    config.heartbeat_ms = 100;
    config.heartbeat_misses = 2;
    config
}

fn main() {
    let jobs = env_usize("QAS_CL_JOBS", 8);
    let nodes = env_usize("QAS_CL_NODES", 8);
    let p_max = env_usize("QAS_CL_PMAX", 1);
    let budget = env_usize("QAS_CL_BUDGET", 30);
    let shard_counts: Vec<usize> = std::env::var("QAS_CL_SHARDS")
        .unwrap_or_else(|_| "1,2,4".to_string())
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .collect();

    let mut results = Vec::new();

    // -- Throughput: the same batch drained by growing shard fleets. ----
    for &shards in &shard_counts {
        let fleet: Vec<ShardProc> = (0..shards)
            .map(|i| ShardProc::spawn(&format!("tp{shards}-{i}"), 1))
            .collect();
        let coordinator = Coordinator::start(cluster_config(
            fleet.iter().map(ShardProc::endpoint).collect(),
        ))
        .expect("cluster starts");
        let sweep_start = Instant::now();
        let ids: Vec<_> = (0..jobs)
            .map(|i| {
                coordinator
                    .submit(job_spec(i as u64, nodes, p_max, budget), None)
                    .expect("submission admitted")
                    .id
            })
            .collect();
        for id in ids {
            let envelope = coordinator.wait(id).expect("job settles");
            assert!(envelope.get("error").is_none(), "job failed: {envelope:?}");
        }
        let total_seconds = sweep_start.elapsed().as_secs_f64();
        let stats = coordinator.stats();
        coordinator.shutdown(true);
        drop(fleet);

        eprintln!(
            "[bench_cluster] shards={shards}: {jobs} jobs in {total_seconds:.3}s \
             ({:.2} jobs/s)",
            jobs as f64 / total_seconds
        );
        results.push(json!({
            "name": "cluster_throughput",
            "shards": shards,
            "jobs": jobs,
            "nodes": nodes,
            "p_max": p_max,
            "budget": budget,
            "total_seconds": total_seconds,
            "jobs_per_second": (jobs as f64 / total_seconds),
            "cache_hits": (stats.cache_hits),
        }));
    }

    // -- Recovery: SIGKILL the owner of a long job mid-flight. ----------
    // Release shards arm no fault plans, so the job is simply made big
    // enough to still be running when the kill lands.
    let mut s1 = ShardProc::spawn("mig-a", 1);
    let mut s2 = ShardProc::spawn("mig-b", 1);
    let config = cluster_config(vec![s1.endpoint(), s2.endpoint()]);
    let heartbeat_ms = config.heartbeat_ms;
    let heartbeat_misses = config.heartbeat_misses;
    let coordinator = Coordinator::start(config).expect("cluster starts");
    let long_job = job_spec(997, nodes.max(12), p_max.max(2), budget.max(400));
    let id = coordinator
        .submit(long_job, None)
        .expect("submission admitted")
        .id;
    // Kill as soon as the event stream proves the job is mid-flight:
    // release shards arm no fault plans, so a blind sleep would race the
    // job finishing (a journaled terminal result is adopted, not
    // migrated, and would void the measurement).
    let poll_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (events, _) = coordinator.events(id, 0).expect("events reachable");
        let running = events.iter().any(|e| {
            e.as_object()
                .is_some_and(|entries| entries.iter().any(|(k, _)| k == "RungCompleted"))
        });
        let finished = events.iter().any(|e| {
            e.as_object()
                .is_some_and(|entries| entries.iter().any(|(k, _)| k == "Finished"))
        });
        assert!(
            !finished,
            "job finished before the kill; raise QAS_CL_BUDGET/QAS_CL_NODES"
        );
        if running {
            break;
        }
        assert!(Instant::now() < poll_deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(2));
    }
    let owner = coordinator.shard_of(id).expect("job is placed");
    let killed_at = Instant::now();
    if owner == s1.addr {
        s1.kill();
    } else {
        s2.kill();
    }
    let mut detect_migrate_ms = None;
    while coordinator.migrations() == 0 {
        assert!(
            killed_at.elapsed() < Duration::from_secs(60),
            "migration never happened"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    detect_migrate_ms.get_or_insert(killed_at.elapsed().as_secs_f64() * 1e3);
    let envelope = coordinator.wait(id).expect("migrated job settles");
    let total_recovery_ms = killed_at.elapsed().as_secs_f64() * 1e3;
    assert!(
        envelope.get("error").is_none(),
        "migrated job failed: {envelope:?}"
    );
    let detect_migrate_ms = detect_migrate_ms.expect("measured above");
    coordinator.shutdown(true);
    eprintln!(
        "[bench_cluster] recovery: detect+migrate {detect_migrate_ms:.1}ms, \
         total {total_recovery_ms:.1}ms (heartbeat {heartbeat_ms}ms x{heartbeat_misses})"
    );
    results.push(json!({
        "name": "shard_kill_recovery",
        "heartbeat_ms": heartbeat_ms,
        "heartbeat_misses": heartbeat_misses,
        "detect_and_migrate_ms": detect_migrate_ms,
        "total_recovery_ms": total_recovery_ms,
    }));

    println!(
        "{}",
        serde_json::to_string_pretty(&json!({
            "benchmark": "bench_cluster",
            "description": "Coordinator throughput over 1/2/4 qas shards and SIGKILL recovery latency",
            "available_cpus": (std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
            "results": (serde_json::Value::Array(results)),
        }))
        .expect("report serializes")
    );
}
