//! JSON-emitting benchmark for the compiled simulation pipeline.
//!
//! Times the *legacy* energy-evaluation path (rebind the ansatz, re-derive
//! every gate matrix, allocate a fresh state vector, recompute the cut value
//! of every basis state) against the *compiled* fast path
//! ([`qaoa::energy::CompiledEnergy`]: circuit lowered once, fused cost
//! layers, cached Max-Cut diagonal, reused scratch buffer), plus the
//! individual gate kernels. Both paths still exist in the codebase, so one
//! run produces the before/after pair.
//!
//! Prints a single JSON document to stdout — redirect it to refresh the
//! committed trajectory file:
//!
//! ```text
//! cargo run --release -p qarchsearch_bench --bin bench_gate_kernels > BENCH_gate_kernels.json
//! ```
//!
//! Environment variables: `QAS_BENCH_N` (qubits, default 16),
//! `QAS_BENCH_DEPTH` (QAOA depth, default 2), `QAS_BENCH_REPS`
//! (timed repetitions, default 10).

use qaoa::ansatz::QaoaAnsatz;
use qaoa::energy::EnergyEvaluator;
use qaoa::mixer::Mixer;
use qaoa::Backend;
use qcircuit::{Gate, GateMatrix};
use serde_json::json;
use statevec::StateVector;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Mean and best wall time of `reps` runs of `f`, in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    // One untimed warm-up run.
    f();
    let mut total = 0.0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        total += elapsed;
        best = best.min(elapsed);
    }
    (total / reps as f64, best)
}

fn main() {
    let n = env_usize("QAS_BENCH_N", 16);
    let depth = env_usize("QAS_BENCH_DEPTH", 2);
    let reps = env_usize("QAS_BENCH_REPS", 10);

    let graph = graphs::Graph::connected_erdos_renyi(n, 0.5, 7, 50);
    let edges: Vec<(usize, usize, f64)> =
        graph.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
    let ansatz = QaoaAnsatz::new(&graph, depth, Mixer::qnas());
    let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
    let params: Vec<f64> = (0..2 * depth).map(|i| 0.1 + 0.15 * i as f64).collect();

    let mut results = Vec::new();

    // --- end-to-end QAOA energy evaluation: before vs after ---------------
    let (legacy_mean, legacy_best) = time_ms(reps, || {
        eval.energy_flat(&ansatz, &params).unwrap();
    });
    results.push(json!({
        "name": "energy_eval_legacy",
        "description": "bind template + per-instruction simulation + per-state cut recomputation",
        "mean_ms": legacy_mean,
        "best_ms": legacy_best,
    }));

    let compiled = eval.compile(&ansatz).unwrap();
    let (compiled_mean, compiled_best) = time_ms(reps, || {
        compiled.energy_flat(&params).unwrap();
    });
    results.push(json!({
        "name": "energy_eval_compiled",
        "description": "CompiledEnergy fast path (fused cost layers, cached diagonal, scratch reuse)",
        "mean_ms": compiled_mean,
        "best_ms": compiled_best,
    }));

    let legacy_energy = eval.energy_flat(&ansatz, &params).unwrap();
    let compiled_energy = compiled.energy_flat(&params).unwrap();
    assert!(
        (legacy_energy - compiled_energy).abs() < 1e-9,
        "paths disagree: {legacy_energy} vs {compiled_energy}"
    );

    // --- batched evaluation: amortize the sweep over B parameter vectors --
    let mut scratch = qaoa::BatchScratch::new();
    let mut per_eval = std::collections::BTreeMap::new();
    for b in [1usize, 8, 32] {
        let points: Vec<Vec<f64>> = (0..b)
            .map(|i| params.iter().map(|p| p + 0.01 * i as f64).collect())
            .collect();
        // The batch path must match the scalar path to the bit before timing.
        let batched = compiled.energy_batch_in(&points, &mut scratch).unwrap();
        for (p, &e) in points.iter().zip(&batched) {
            let scalar = compiled.energy_flat(p).unwrap();
            assert!(
                e.to_bits() == scalar.to_bits(),
                "batch B={b} diverges from scalar: {e} vs {scalar}"
            );
        }
        let (mean, best) = time_ms(reps, || {
            compiled.energy_batch_in(&points, &mut scratch).unwrap();
        });
        per_eval.insert(b, mean / b as f64);
        results.push(json!({
            "name": (format!("energy_eval_batched_b{b}")),
            "description": (format!("energy_batch_in over {b} parameter vectors, SoA tiles (per-eval = mean/B)")),
            "mean_ms": mean,
            "best_ms": best,
            "per_eval_mean_ms": (mean / b as f64),
            "per_eval_best_ms": (best / b as f64),
        }));
    }

    // --- individual kernels ----------------------------------------------
    let plus = StateVector::plus_state(n).unwrap();

    let rx = match GateMatrix::of(Gate::RX, 0.3) {
        GateMatrix::One(m) => m,
        _ => unreachable!(),
    };
    let mut s = plus.clone();
    let (mean, best) = time_ms(reps, || s.apply_single_qubit(&rx, n / 2));
    results.push(json!({
        "name": "single_qubit_kernel",
        "description": "stride-free RX pass over 2^n amplitudes",
        "mean_ms": mean,
        "best_ms": best,
    }));

    let rxx = match GateMatrix::of(Gate::RXX, 0.7) {
        GateMatrix::Two(m) => m,
        _ => unreachable!(),
    };
    let mut s = plus.clone();
    let (mean, best) = time_ms(reps, || s.apply_two_qubit(&rxx, n - 1, 0));
    results.push(json!({
        "name": "two_qubit_kernel",
        "description": "bit-interleaved RXX pass spanning the full register",
        "mean_ms": mean,
        "best_ms": best,
    }));

    let table = statevec::expectation::maxcut_diagonal(n, &edges);
    let mut s = plus.clone();
    let (fused_mean, fused_best) = time_ms(reps, || s.apply_phase_table(&table, 0.8).unwrap());
    results.push(json!({
        "name": "cost_layer_fused",
        "description": "whole Max-Cut cost layer as one phase pass",
        "mean_ms": fused_mean,
        "best_ms": fused_best,
    }));

    let mut s = plus.clone();
    let (per_edge_mean, per_edge_best) = time_ms(reps, || {
        for &(u, v, w) in &edges {
            let m = match GateMatrix::of(Gate::RZZ, 2.0 * w * 0.8) {
                GateMatrix::Two(m) => m,
                _ => unreachable!(),
            };
            s.apply_two_qubit(&m, u, v);
        }
    });
    results.push(json!({
        "name": "cost_layer_per_edge",
        "description": "same cost layer as one RZZ kernel per edge",
        "mean_ms": per_edge_mean,
        "best_ms": per_edge_best,
    }));

    let doc = json!({
        "benchmark": "gate_kernels",
        "config": {
            "num_qubits": n,
            "depth": depth,
            "num_edges": (edges.len()),
            "reps": reps,
            "threads": (rayon::current_num_threads()),
            "parallel_threshold_qubits": (statevec::parallel_threshold_qubits()),
            "mixer": "('rx', 'ry')",
            "optimizer_note": "single energy evaluation; a training run multiplies the gap by the optimizer budget",
        },
        "results": results,
        "speedup": {
            "energy_eval_mean": (legacy_mean / compiled_mean),
            "energy_eval_best": (legacy_best / compiled_best),
            "cost_layer_mean": (per_edge_mean / fused_mean),
            "energy_eval_batched_b8_vs_b1": (per_eval[&1] / per_eval[&8]),
            "energy_eval_batched_b32_vs_b1": (per_eval[&1] / per_eval[&32]),
        },
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}
