//! JSON-emitting benchmark for the multi-job [`JobServer`] behind
//! `qas serve`: job throughput and latency at 1, 2 and 4 workers.
//!
//! Each sweep submits the same batch of small searches and measures the
//! wall-clock to drain them. Because every job pins its inner evaluation to
//! one thread (`threads(1)`), the worker sweep isolates the *job-level*
//! multiplexing win. The first job's outcome is also checked to be
//! bit-identical across worker counts — serving concurrency must never
//! leak into results.
//!
//! ```text
//! cargo run --release -p qarchsearch_bench --bin bench_service
//! QAS_SRV_JOBS=16 QAS_SRV_NODES=10 ./target/release/bench_service
//! ```
//!
//! | variable         | meaning                              | default |
//! |------------------|--------------------------------------|---------|
//! | `QAS_SRV_JOBS`   | jobs submitted per sweep             | 8       |
//! | `QAS_SRV_NODES`  | nodes per training graph             | 8       |
//! | `QAS_SRV_PMAX`   | search depth per job                 | 1       |
//! | `QAS_SRV_BUDGET` | optimizer budget per candidate       | 30      |

use graphs::Graph;
use qarchsearch::search::SearchConfig;
use qarchsearch::server::{JobServer, JobServerConfig, JobSpec};
use qarchsearch::GateAlphabet;
use serde_json::json;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn job_spec(seed: u64, nodes: usize, p_max: usize, budget: usize) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(p_max)
        .max_gates_per_mixer(2)
        .optimizer_budget(budget)
        .halving(budget.div_ceil(3).max(1), 2)
        .backend(qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    let graphs = vec![Graph::connected_erdos_renyi(nodes, 0.5, seed, 50)];
    JobSpec::new(config, graphs).name(format!("bench-{seed}"))
}

fn main() {
    let jobs = env_usize("QAS_SRV_JOBS", 8);
    let nodes = env_usize("QAS_SRV_NODES", 8);
    let p_max = env_usize("QAS_SRV_PMAX", 1);
    let budget = env_usize("QAS_SRV_BUDGET", 30);

    let mut results = Vec::new();
    let mut reference_bits: Option<u64> = None;

    for workers in [1usize, 2, 4] {
        let server = JobServer::start(JobServerConfig {
            workers,
            queue_capacity: jobs.max(1),
            ..JobServerConfig::default()
        });
        let sweep_start = Instant::now();
        let submitted: Vec<_> = (0..jobs)
            .map(|i| {
                let spec = job_spec(i as u64, nodes, p_max, budget);
                (
                    Instant::now(),
                    server.submit(spec).expect("queue sized to fit"),
                )
            })
            .collect();
        let mut latencies_ms = Vec::with_capacity(submitted.len());
        let mut first_energy_bits = None;
        for (i, (submitted_at, id)) in submitted.iter().enumerate() {
            let outcome = server
                .wait(*id)
                .expect("job exists")
                .expect("job completes");
            // Observed through sequential waits, so later entries are an
            // upper bound on the true completion latency.
            latencies_ms.push(submitted_at.elapsed().as_secs_f64() * 1e3);
            if i == 0 {
                first_energy_bits = Some(outcome.best.energy.to_bits());
            }
        }
        let total_seconds = sweep_start.elapsed().as_secs_f64();
        server.shutdown();

        let first_bits = first_energy_bits.expect("at least one job");
        match reference_bits {
            None => reference_bits = Some(first_bits),
            Some(bits) => assert_eq!(
                bits, first_bits,
                "worker count leaked into job results ({workers} workers)"
            ),
        }

        let mean_latency_ms = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
        let max_latency_ms = latencies_ms.iter().cloned().fold(0.0, f64::max);
        eprintln!(
            "[bench_service] workers={workers}: {jobs} jobs in {total_seconds:.3}s \
             ({:.2} jobs/s, mean latency {mean_latency_ms:.1}ms)",
            jobs as f64 / total_seconds
        );
        results.push(json!({
            "name": "job_server_throughput",
            "workers": workers,
            "jobs": jobs,
            "nodes": nodes,
            "p_max": p_max,
            "budget": budget,
            "total_seconds": total_seconds,
            "jobs_per_second": (jobs as f64 / total_seconds),
            "mean_latency_ms": mean_latency_ms,
            "max_latency_ms": max_latency_ms,
        }));
    }

    println!(
        "{}",
        serde_json::to_string_pretty(&json!({
            "benchmark": "bench_service",
            "description": "JobServer throughput/latency at 1/2/4 workers (inner threads pinned to 1)",
            "available_cpus": (std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
            "results": (serde_json::Value::Array(results)),
        }))
        .expect("report serializes")
    );
}
