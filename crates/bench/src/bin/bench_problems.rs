//! JSON-emitting benchmark for the pluggable problem layer.
//!
//! Times the compiled-energy fast path ([`qaoa::energy::CompiledEnergy`])
//! across every shipped cost Hamiltonian at one register width, so the
//! committed trajectory file shows what a problem's term structure costs:
//! sparse 2-local problems (Max-Cut on an ER graph, MIS) versus dense
//! all-to-all ones (Sherrington–Kirkpatrick, number partitioning). For each
//! problem it also reports the one-time setup costs the evaluator amortizes
//! (classical reference bracket, `2^n` diagonal build, ansatz compile).
//!
//! Prints a single JSON document to stdout — redirect it to refresh the
//! committed trajectory file:
//!
//! ```text
//! cargo run --release -p qarchsearch_bench --bin bench_problems > BENCH_problems.json
//! ```
//!
//! Environment variables: `QAS_BENCH_N` (qubits, default 16),
//! `QAS_BENCH_DEPTH` (QAOA depth, default 2), `QAS_BENCH_REPS`
//! (timed repetitions, default 10).

use graphs::ProblemKind;
use qaoa::ansatz::QaoaAnsatz;
use qaoa::energy::EnergyEvaluator;
use qaoa::mixer::Mixer;
use qaoa::Backend;
use serde_json::json;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Mean and best wall time of `reps` runs of `f`, in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    // One untimed warm-up run.
    f();
    let mut total = 0.0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        total += elapsed;
        best = best.min(elapsed);
    }
    (total / reps as f64, best)
}

fn main() {
    let n = env_usize("QAS_BENCH_N", 16);
    let depth = env_usize("QAS_BENCH_DEPTH", 2);
    let reps = env_usize("QAS_BENCH_REPS", 10);

    let graph = graphs::Graph::connected_erdos_renyi(n, 0.5, 7, 50);
    let params: Vec<f64> = (0..2 * depth).map(|i| 0.1 + 0.15 * i as f64).collect();

    let mut results = Vec::new();
    for kind in ProblemKind::all(7) {
        let setup_start = Instant::now();
        let problem = kind.instantiate(&graph);
        let eval = EnergyEvaluator::for_problem(&graph, problem.clone(), Backend::StateVector)
            .expect("instantiated problem matches its graph");
        let classical_ms = setup_start.elapsed().as_secs_f64() * 1e3;

        let compile_start = Instant::now();
        let ansatz = QaoaAnsatz::for_problem(&problem, depth, Mixer::qnas())
            .expect("shipped problems are at most 2-local");
        let compiled = eval
            .compile(&ansatz)
            .expect("state-vector backend compiles");
        // The first evaluation also builds the cached 2^n diagonal.
        let first_energy = compiled.energy_flat(&params).unwrap();
        let compile_and_first_eval_ms = compile_start.elapsed().as_secs_f64() * 1e3;

        let (mean_ms, best_ms) = time_ms(reps, || {
            compiled.energy_flat(&params).unwrap();
        });
        results.push(json!({
            "problem": (problem.name()),
            "num_terms": (problem.terms().len()),
            "max_locality": (problem.max_locality()),
            "classical_reference": {
                "best": (eval.classical_optimum()),
                "quality": (format!("{}", eval.classical_solution().quality)),
                "setup_ms": classical_ms,
            },
            "compile_and_first_eval_ms": compile_and_first_eval_ms,
            "energy_eval_mean_ms": mean_ms,
            "energy_eval_best_ms": best_ms,
            "evals_per_second": (1e3 / mean_ms),
            "first_energy": first_energy,
        }));
    }

    let doc = json!({
        "benchmark": "problems",
        "config": {
            "num_qubits": n,
            "depth": depth,
            "num_edges": (graph.num_edges()),
            "reps": reps,
            "threads": (rayon::current_num_threads()),
            "parallel_threshold_qubits": (statevec::parallel_threshold_qubits()),
            "mixer": "('rx', 'ry')",
            "note": "compiled-energy throughput per problem; training multiplies the per-eval cost by the optimizer budget",
        },
        "results": results,
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}
