//! Fig. 4: time to simulate circuits with serial and parallel architecture
//! search, as a function of the QAOA depth `p`, averaged over several runs on
//! different Erdős–Rényi graphs.
//!
//! Paper shape: serial time grows roughly quadratically with `p` (since
//! `p ≈ k`), the parallel search is >50% faster across the sweep.
//!
//! ```text
//! cargo run --release -p qarchsearch-bench --bin fig4_serial_vs_parallel
//! QAS_PAPER_SCALE=1 cargo run --release -p qarchsearch-bench --bin fig4_serial_vs_parallel
//! ```

use qarchsearch::search::ExecutionMode;
use qarchsearch::session::SearchDriver;
use qarchsearch_bench::{emit, FigureReport, HarnessParams};

fn main() {
    let params = HarnessParams::from_env();
    let mut report = FigureReport::new("fig4", "p", "time_to_simulate_seconds");

    for run in 0..params.runs {
        // Each run uses a different slice of ER graphs, as in the paper
        // ("averaged over five separate runs ... on different Erdős-Renyi
        // graphs").
        let seed = params.seed + run as u64 * 1000;
        let graphs =
            graphs::datasets::erdos_renyi_dataset(params.num_graphs, params.num_nodes, seed);

        for p in 1..=params.p_max {
            let mut config = params.search_config(None);
            config.max_depth = p;

            let serial_outcome = SearchDriver::new(config.clone().with_mode(ExecutionMode::Serial))
                .run(&graphs)
                .expect("serial search");
            // The per-depth time of the deepest level is the cost of adding
            // that depth; Fig. 4 plots the time to search at depth p.
            let serial_time = serial_outcome.elapsed_at_depth(p).unwrap_or(0.0);

            let parallel_outcome = SearchDriver::new(config.with_mode(ExecutionMode::Parallel))
                .run(&graphs)
                .expect("parallel search");
            let parallel_time = parallel_outcome.elapsed_at_depth(p).unwrap_or(0.0);

            report.push("serial", p as f64, serial_time);
            report.push("parallel", p as f64, parallel_time);

            eprintln!(
                "[fig4] run {run} p={p}: serial {serial_time:.3}s parallel {parallel_time:.3}s \
                 (best mixer serial {}, parallel {})",
                serial_outcome.best.mixer_label, parallel_outcome.best.mixer_label
            );
        }
    }

    // Also print per-depth averages over the runs, which is what the figure plots.
    let mut averaged = FigureReport::new("fig4-averaged", "p", "time_to_simulate_seconds");
    for series in ["serial", "parallel"] {
        for p in 1..=params.p_max {
            let ys: Vec<f64> = report
                .points
                .iter()
                .filter(|pt| pt.series == series && (pt.x - p as f64).abs() < 1e-9)
                .map(|pt| pt.y)
                .collect();
            if !ys.is_empty() {
                averaged.push(series, p as f64, ys.iter().sum::<f64>() / ys.len() as f64);
            }
        }
    }

    emit(&report);
    emit(&averaged);
}
