//! JSON-emitting benchmark for the serve-path result cache and request
//! coalescing: what does "never compute the same search twice" buy?
//!
//! Two measurements:
//!
//! 1. **Cold vs warm latency** — submit a search sized to take at least a
//!    second cold, then resubmit it; the warm path must be served from the
//!    result cache at least 100x faster, with a bit-identical
//!    (timing-free) report.
//! 2. **Coalesced fan-out** — submit the same search 8 times back to back
//!    to a single-worker cached server (exactly one execution, the rest
//!    attach or hit) vs 8 sequential runs on a cache-disabled server.
//!
//! ```text
//! cargo run --release -p qarchsearch_bench --bin bench_cache
//! QAS_CACHE_NODES=12 QAS_CACHE_BUDGET=400 ./target/release/bench_cache
//! ```
//!
//! | variable           | meaning                        | default |
//! |--------------------|--------------------------------|---------|
//! | `QAS_CACHE_NODES`  | nodes in the training graph    | 12      |
//! | `QAS_CACHE_PMAX`   | search depth                   | 3       |
//! | `QAS_CACHE_BUDGET` | optimizer budget per candidate | 500     |
//! | `QAS_CACHE_FAN`    | coalesced fan-out width        | 8       |
//!
//! `QAS_CACHE_MIN_COLD` (default 1.0 s) and `QAS_CACHE_MIN_SPEEDUP`
//! (default 100) gate the cold-run-size and warm-speedup assertions; set
//! them to 0 for a fast functional smoke with small parameters.

use graphs::Graph;
use qarchsearch::cache::CacheConfig;
use qarchsearch::report::SearchReport;
use qarchsearch::search::{SearchConfig, SearchOutcome};
use qarchsearch::server::{JobId, JobServer, JobServerConfig, JobSpec, ServerOptions};
use qarchsearch::GateAlphabet;
use serde_json::json;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn job_spec(seed: u64, nodes: usize, p_max: usize, budget: usize) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(p_max)
        .max_gates_per_mixer(2)
        .optimizer_budget(budget)
        .halving(budget.div_ceil(3).max(1), 2)
        .backend(qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    let graphs = vec![Graph::connected_erdos_renyi(nodes, 0.5, seed, 50)];
    JobSpec::new(config, graphs).name(format!("bench-cache-{seed}"))
}

fn report_bytes(outcome: &SearchOutcome) -> String {
    SearchReport::from(outcome).without_timings().to_json()
}

fn cached_server(workers: usize, queue: usize) -> JobServer {
    JobServer::launch(
        JobServerConfig {
            workers,
            queue_capacity: queue,
            ..JobServerConfig::default()
        },
        ServerOptions {
            store: None,
            faults: None,
            cache: Some(CacheConfig::default()),
            shard_id: None,
        },
    )
    .expect("in-memory cached server")
}

fn uncached_server(workers: usize, queue: usize) -> JobServer {
    JobServer::launch(
        JobServerConfig {
            workers,
            queue_capacity: queue,
            ..JobServerConfig::default()
        },
        ServerOptions {
            store: None,
            faults: None,
            cache: None,
            shard_id: None,
        },
    )
    .expect("in-memory uncached server")
}

fn main() {
    let nodes = env_usize("QAS_CACHE_NODES", 12);
    let p_max = env_usize("QAS_CACHE_PMAX", 3);
    let budget = env_usize("QAS_CACHE_BUDGET", 500);
    let fan = env_usize("QAS_CACHE_FAN", 8).max(2);
    let min_cold = env_f64("QAS_CACHE_MIN_COLD", 1.0);
    let min_speedup = env_f64("QAS_CACHE_MIN_SPEEDUP", 100.0);

    // --- 1. cold vs warm latency -----------------------------------------
    let server = cached_server(1, fan + 1);
    let cold_start = Instant::now();
    let id = server.submit(job_spec(7, nodes, p_max, budget)).unwrap();
    let cold_report = report_bytes(&server.wait(id).unwrap().expect("cold run completes"));
    let cold_secs = cold_start.elapsed().as_secs_f64();

    let warm_start = Instant::now();
    let id = server.submit(job_spec(7, nodes, p_max, budget)).unwrap();
    let warm_report = report_bytes(&server.wait(id).unwrap().expect("warm run completes"));
    let warm_secs = warm_start.elapsed().as_secs_f64();
    assert!(
        server.status(id).unwrap().cache_hit,
        "resubmission must be served from the cache"
    );
    assert_eq!(warm_report, cold_report, "cached report diverged");
    assert!(
        cold_secs >= min_cold,
        "cold run finished in {cold_secs:.3}s (< {min_cold}s); raise QAS_CACHE_BUDGET/NODES \
         so the speedup measures a representative search"
    );
    let speedup = cold_secs / warm_secs.max(1e-9);
    assert!(
        speedup >= min_speedup,
        "warm path only {speedup:.0}x faster ({warm_secs:.6}s vs {cold_secs:.3}s)"
    );
    eprintln!(
        "[bench_cache] cold {cold_secs:.3}s vs warm {:.3}ms: {speedup:.0}x",
        warm_secs * 1e3
    );
    server.shutdown();

    // --- 2. coalesced fan-out vs sequential re-execution ------------------
    // Single worker: the first identical submission runs, the rest attach
    // to it in flight (or hit the cache if they arrive after it finishes).
    let server = cached_server(1, fan + 1);
    let fanout_start = Instant::now();
    let ids: Vec<JobId> = (0..fan)
        .map(|_| server.submit(job_spec(21, nodes, p_max, budget)).unwrap())
        .collect();
    let mut fan_reports = Vec::with_capacity(fan);
    for id in &ids {
        fan_reports.push(report_bytes(
            &server.wait(*id).unwrap().expect("fan-out job completes"),
        ));
    }
    let fanout_secs = fanout_start.elapsed().as_secs_f64();
    for report in &fan_reports {
        assert_eq!(report, &fan_reports[0], "fan-out reports diverged");
    }
    let stats = server.stats();
    let cache = stats.cache.expect("cache enabled");
    assert_eq!(cache.insertions, 1, "fan-out must execute exactly once");
    assert_eq!(cache.misses, 1, "only the leader may miss");
    assert_eq!(
        cache.coalesced + cache.hits,
        (fan - 1) as u64,
        "every other subscriber attaches or hits"
    );
    let coalesced = cache.coalesced;
    server.shutdown();

    let server = uncached_server(1, fan + 1);
    let sequential_start = Instant::now();
    for _ in 0..fan {
        let id = server.submit(job_spec(21, nodes, p_max, budget)).unwrap();
        let report = report_bytes(&server.wait(id).unwrap().expect("sequential job completes"));
        assert_eq!(report, fan_reports[0], "uncached rerun diverged");
    }
    let sequential_secs = sequential_start.elapsed().as_secs_f64();
    server.shutdown();
    let fanout_speedup = sequential_secs / fanout_secs.max(1e-9);
    eprintln!(
        "[bench_cache] {fan}-way fan-out {fanout_secs:.3}s ({coalesced} coalesced, 1 \
         execution) vs sequential uncached {sequential_secs:.3}s: {fanout_speedup:.1}x"
    );

    println!(
        "{}",
        serde_json::to_string_pretty(&json!({
            "benchmark": "bench_cache",
            "description": "serve-path result cache: cold vs cached latency for an \
                            identical resubmission, and N-way coalesced fan-out vs \
                            sequential uncached re-execution (bit-identical reports \
                            asserted throughout)",
            "available_cpus": (std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
            "results": [
                {
                    "name": "cold_vs_warm",
                    "nodes": nodes,
                    "p_max": p_max,
                    "budget": budget,
                    "cold_seconds": cold_secs,
                    "warm_seconds": warm_secs,
                    "speedup": speedup,
                },
                {
                    "name": "coalesced_fanout",
                    "fan": fan,
                    "executions": 1,
                    "coalesced": coalesced,
                    "cache_hits": (cache.hits),
                    "fanout_seconds": fanout_secs,
                    "sequential_uncached_seconds": sequential_secs,
                    "speedup": fanout_speedup,
                },
            ],
        }))
        .expect("report serializes")
    );
}
