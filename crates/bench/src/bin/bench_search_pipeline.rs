//! JSON-emitting benchmark for the budget-aware search pipeline.
//!
//! Times a full `qas search`-equivalent run twice on the same graphs and
//! seed:
//!
//! * **baseline** — the paper-faithful full-budget evaluation
//!   (`PipelineConfig::full_budget()`: every candidate trains for the whole
//!   optimizer budget, no pruning, no warm starts), and
//! * **pipeline** — the successive-halving pipeline (candidates pruned at
//!   escalating budget rungs via resumable optimizers, survivors warm-started
//!   across depths, work-stealing execution).
//!
//! It also re-runs the pipeline with 1, 2 and 4 workers and checks the
//! outcomes are bit-identical — the determinism guarantee of the
//! work-stealing scheduler.
//!
//! Prints a single JSON document to stdout — redirect it to refresh the
//! committed trajectory file:
//!
//! ```text
//! cargo run --release -p qarchsearch_bench --bin bench_search_pipeline > BENCH_search_pipeline.json
//! ```
//!
//! Environment variables: `QAS_PIPE_NODES` (default 10), `QAS_PIPE_GRAPHS`
//! (default 3), `QAS_PIPE_PMAX` (default 2), `QAS_PIPE_KMAX` (default 2),
//! `QAS_PIPE_BUDGET` (default 200), `QAS_PIPE_THREADS` (default 4).

use qarchsearch::search::{ExecutionMode, PipelineConfig, SearchConfig, SearchOutcome};
use qarchsearch::session::SearchDriver;
use qarchsearch::GateAlphabet;
use serde_json::{json, Value};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn run(config: SearchConfig, graphs: &[graphs::Graph]) -> (SearchOutcome, f64) {
    let start = Instant::now();
    let outcome = SearchDriver::new(config.with_mode(ExecutionMode::Parallel))
        .run(graphs)
        .expect("search completes");
    (outcome, start.elapsed().as_secs_f64())
}

fn outcome_json(outcome: &SearchOutcome, seconds: f64) -> Value {
    let best_mixer = outcome.best.mixer_label.clone();
    let best_depth = outcome.best.depth;
    let best_energy = outcome.best.energy;
    let best_approx_ratio = outcome.best.approx_ratio;
    let candidates = outcome.num_candidates_evaluated;
    let optimizer_evaluations = outcome.total_optimizer_evaluations;
    let full_budget_evaluations = outcome.full_budget_evaluations;
    json!({
        "seconds": seconds,
        "best_mixer": best_mixer,
        "best_depth": best_depth,
        "best_energy": best_energy,
        "best_approx_ratio": best_approx_ratio,
        "candidates": candidates,
        "optimizer_evaluations": optimizer_evaluations,
        "full_budget_evaluations": full_budget_evaluations,
    })
}

fn main() {
    let nodes = env_usize("QAS_PIPE_NODES", 10);
    let num_graphs = env_usize("QAS_PIPE_GRAPHS", 3);
    let p_max = env_usize("QAS_PIPE_PMAX", 2);
    let k_max = env_usize("QAS_PIPE_KMAX", 2);
    let budget = env_usize("QAS_PIPE_BUDGET", 200);
    let threads = env_usize("QAS_PIPE_THREADS", 4);
    let seed = 2023u64;

    let graphs = graphs::datasets::erdos_renyi_dataset(num_graphs, nodes, seed);

    let base = SearchConfig::builder()
        .alphabet(GateAlphabet::paper_default())
        .max_depth(p_max)
        .max_gates_per_mixer(k_max)
        .optimizer_budget(budget)
        .backend(qaoa::Backend::StateVector)
        .seed(seed)
        .threads(threads)
        .build();

    // Paper-faithful full budget: every candidate, the whole budget.
    let full_cfg = SearchConfig {
        pipeline: PipelineConfig::full_budget(),
        ..base.clone()
    };
    let (full, full_seconds) = run(full_cfg, &graphs);

    // The budget-aware pipeline: halving at eta = 4 from rung
    // min(20, budget), warm starts on, and the predictor gate admitting the
    // top 16 candidates from depth 2 on (`qas search --gate 16`).
    let mut pipe_cfg = base.clone();
    pipe_cfg.pipeline.first_rung = pipe_cfg.pipeline.first_rung.min(budget);
    pipe_cfg.pipeline.predictor_gate = Some(16);
    let (pipe, pipe_seconds) = run(pipe_cfg.clone(), &graphs);

    // Determinism across worker counts: 1, 2 and 4 workers must produce
    // bit-identical winners, energies and budget accounting.
    let mut determinism_runs = Vec::new();
    let mut identical = true;
    for t in [1usize, 2, 4] {
        let (o, _) = run(
            SearchConfig {
                threads: Some(t),
                ..pipe_cfg.clone()
            },
            &graphs,
        );
        identical &= o.best.mixer_label == pipe.best.mixer_label
            && o.best.energy == pipe.best.energy
            && o.total_optimizer_evaluations == pipe.total_optimizer_evaluations;
        let best_mixer = o.best.mixer_label.clone();
        let best_energy = o.best.energy;
        let optimizer_evaluations = o.total_optimizer_evaluations;
        determinism_runs.push(json!({
            "threads": t,
            "best_mixer": best_mixer,
            "best_energy": best_energy,
            "optimizer_evaluations": optimizer_evaluations,
        }));
    }
    assert!(identical, "pipeline outcomes diverged across thread counts");

    let depths: Vec<Value> = pipe
        .depth_results
        .iter()
        .map(|d| {
            let depth = d.depth;
            let candidates = d.candidates.len();
            let pruned = d
                .candidates
                .iter()
                .filter(|c| c.pruned_at_rung.is_some())
                .count();
            let rungs: Vec<Value> = d
                .rungs
                .iter()
                .map(|r| {
                    let target_budget = r.target_budget;
                    let entrants = r.entrants;
                    let survivors = r.survivors;
                    let evaluations = r.evaluations;
                    json!({
                        "target_budget": target_budget,
                        "entrants": entrants,
                        "survivors": survivors,
                        "evaluations": evaluations,
                    })
                })
                .collect();
            json!({
                "depth": depth,
                "candidates": candidates,
                "pruned": pruned,
                "rungs": rungs,
            })
        })
        .collect();

    let first_rung = pipe_cfg.pipeline.first_rung;
    let eta = pipe_cfg.pipeline.eta;
    let config = json!({
        "nodes": nodes,
        "graphs": num_graphs,
        "p_max": p_max,
        "k_max": k_max,
        "budget": budget,
        "threads": threads,
        "alphabet": "rx,ry,rz,h,p",
        "optimizer": "cobyla",
        "backend": "state-vector",
        "seed": seed,
        "pipeline_first_rung": first_rung,
        "pipeline_eta": eta,
        "pipeline_warm_start": true,
        "pipeline_predictor_gate": 16,
    });
    let full_json = outcome_json(&full, full_seconds);
    let pipe_json = outcome_json(&pipe, pipe_seconds);
    let wall_clock_speedup = full_seconds / pipe_seconds;
    let evaluation_speedup =
        full.total_optimizer_evaluations as f64 / pipe.total_optimizer_evaluations as f64;
    let speedup = json!({
        "wall_clock": wall_clock_speedup,
        "optimizer_evaluations": evaluation_speedup,
    });
    let baseline_best_energy = full.best.energy;
    let pipeline_best_energy = pipe.best.energy;
    let equal_or_better = pipe.best.energy >= full.best.energy - 1e-9;
    let energy_delta = pipe.best.energy - full.best.energy;
    let quality = json!({
        "baseline_best_energy": baseline_best_energy,
        "pipeline_best_energy": pipeline_best_energy,
        "equal_or_better": equal_or_better,
        "energy_delta": energy_delta,
    });
    let determinism = json!({
        "identical_across_thread_counts": identical,
        "runs": determinism_runs,
    });
    let doc = json!({
        "benchmark": "search_pipeline",
        "config": config,
        "full_budget_baseline": full_json,
        "pipeline": pipe_json,
        "pipeline_depths": depths,
        "speedup": speedup,
        "quality": quality,
        "determinism": determinism,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("serializes")
    );
}
