//! Fig. 6: the best-performing searched mixer circuit for Max-Cut QAOA.
//!
//! The paper reports that the search discovers the mixer `RX(2β)·RY(2β)`
//! applied to every qubit. This binary runs the search on the ER training
//! dataset and prints the winning mixer as an ASCII circuit over ten qubits,
//! mirroring the figure.
//!
//! ```text
//! cargo run --release -p qarchsearch-bench --bin fig6_best_mixer
//! ```

use qarchsearch::search::{ExecutionMode, SearchOutcome};
use qarchsearch::session::SearchDriver;
use qarchsearch_bench::HarnessParams;
use qcircuit::{draw_ascii, Circuit, Parameter};

fn mixer_circuit(outcome: &SearchOutcome, num_qubits: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for &gate in &outcome.best.gates {
        for q in 0..num_qubits {
            let param = if gate.is_parameterized() {
                Parameter::free("beta", 2.0)
            } else {
                Parameter::None
            };
            c.push(gate, &[q], param);
        }
    }
    c
}

fn main() {
    let params = HarnessParams::from_env();
    let graphs = params.er_dataset();
    let config = params.search_config(None);

    let outcome = SearchDriver::new(config.with_mode(ExecutionMode::Parallel))
        .run(&graphs)
        .expect("search run");

    println!("# fig6 — best performing searched mixer circuit");
    println!(
        "winner: {}  (depth {}, mean energy {:.4}, mean approximation ratio {:.4})",
        outcome.best.mixer_label,
        outcome.best.depth,
        outcome.best.energy,
        outcome.best.approx_ratio
    );
    println!();
    let circuit = mixer_circuit(&outcome, params.num_nodes);
    println!("{}", draw_ascii(&circuit));
    println!(
        "paper reference: RX(2*beta) followed by RY(2*beta) on each of the 10 qubits — label ('rx', 'ry')"
    );
}
