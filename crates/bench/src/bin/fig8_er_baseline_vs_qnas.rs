//! Fig. 8: distribution of approximation ratios obtained by the baseline
//! (`RX`) and searched ("qnas", `RX·RY`) mixers on Erdős–Rényi graphs,
//! averaged over depths `p = 1, 2, 3`.
//!
//! Paper shape: the searched mixer yields a higher average approximation
//! ratio on ER random graphs (both are close to 1; the qnas distribution is
//! shifted right).
//!
//! ```text
//! cargo run --release -p qarchsearch-bench --bin fig8_er_baseline_vs_qnas
//! ```

use qaoa::mixer::Mixer;
use qarchsearch::evaluator::{Evaluator, EvaluatorConfig};
use qarchsearch_bench::{emit, FigureReport, HarnessParams};

fn main() {
    let params = HarnessParams::from_env();
    let graphs = params.er_dataset();
    let depths: Vec<usize> = (1..=params.p_max.min(3)).collect();

    let evaluator = Evaluator::new(EvaluatorConfig {
        budget: params.budget,
        restarts: 3,
        ..EvaluatorConfig::default()
    });

    let mut report = FigureReport::new("fig8", "graph_index", "approx_ratio_mean_p1_3");
    let mut summary = FigureReport::new("fig8-summary", "series_index", "mean_approx_ratio");

    for (series_idx, (label, mixer)) in [("baseline", Mixer::baseline()), ("qnas", Mixer::qnas())]
        .into_iter()
        .enumerate()
    {
        let mut overall = Vec::new();
        for (gi, graph) in graphs.iter().enumerate() {
            // Average the ratio over p = 1..=3 as in the figure caption.
            let mut ratios = Vec::new();
            for &p in &depths {
                let trained = evaluator
                    .evaluate_on_graph(graph, &mixer, p)
                    .expect("candidate evaluation");
                ratios.push(trained.approx_ratio);
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            report.push(label, gi as f64, mean);
            overall.push(mean);
        }
        let grand_mean = overall.iter().sum::<f64>() / overall.len() as f64;
        summary.push(label, series_idx as f64, grand_mean);
        eprintln!(
            "[fig8] {label}: mean r over {} ER graphs = {grand_mean:.4}",
            graphs.len()
        );
    }

    emit(&report);
    emit(&summary);
    println!("paper reference: the searched (qnas) mixer attains a higher average r on ER graphs");
}
