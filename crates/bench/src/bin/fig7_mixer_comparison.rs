//! Fig. 7: approximation ratios of the candidate mixers `('ry','p')`,
//! `('rx','h')`, `('h','p')` and `('rx','ry')` at `p = 1` on random 4-regular
//! graphs.
//!
//! Paper shape: the `('rx','ry')` combination achieves the highest
//! approximation ratio at this low depth.
//!
//! ```text
//! cargo run --release -p qarchsearch-bench --bin fig7_mixer_comparison
//! ```

use qaoa::mixer::Mixer;
use qarchsearch::evaluator::{Evaluator, EvaluatorConfig};
use qarchsearch_bench::{emit, FigureReport, HarnessParams};

fn main() {
    let params = HarnessParams::from_env();
    let graphs = params.regular_dataset();

    // Multi-start training: the candidate mixers have very flat landscapes
    // near the small-angle initial point, so a single local run understates
    // their trained quality (the paper uses 200 COBYLA steps).
    let evaluator = Evaluator::new(EvaluatorConfig {
        budget: params.budget,
        restarts: 3,
        ..EvaluatorConfig::default()
    });

    let mut report = FigureReport::new("fig7", "mixer_index", "approx_ratio_p1");

    for (i, mixer) in Mixer::fig7_candidates().into_iter().enumerate() {
        let result = evaluator
            .evaluate(&graphs, &mixer, 1)
            .expect("candidate evaluation");
        report.push(&mixer.label(), i as f64, result.mean_approx_ratio);
        eprintln!(
            "[fig7] {}: mean r = {:.4} (mean energy {:.4} over {} graphs)",
            mixer.label(),
            result.mean_approx_ratio,
            result.mean_energy,
            graphs.len()
        );
    }

    emit(&report);
    println!("paper reference: ('rx', 'ry') attains the highest approximation ratio at p = 1");
}
