//! Fig. 5: time to search one graph at `p = 2` as the number of cores
//! available to the parallel scheduler is swept (8..64 in steps of 8 in the
//! paper), with the serial time as the reference line.
//!
//! Paper shape: the parallel search makes good use of additional cores and is
//! markedly faster than the serial search at every core count.
//!
//! ```text
//! cargo run --release -p qarchsearch-bench --bin fig5_core_scaling
//! QAS_MAX_CORES=64 QAS_PAPER_SCALE=1 cargo run --release -p qarchsearch-bench --bin fig5_core_scaling
//! ```

use qarchsearch::search::ExecutionMode;
use qarchsearch::session::SearchDriver;
use qarchsearch_bench::{emit, FigureReport, HarnessParams};

fn main() {
    let params = HarnessParams::from_env();
    // One ER graph, p = 2, as in the paper.
    let graph = graphs::Graph::connected_erdos_renyi(params.num_nodes, 0.5, params.seed, 50);
    let graphs = vec![graph];
    let depth = 2.min(params.p_max.max(1));

    let mut config = params.search_config(None);
    config.max_depth = depth;

    let serial_outcome = SearchDriver::new(config.clone().with_mode(ExecutionMode::Serial))
        .run(&graphs)
        .expect("serial search");
    let serial_time = serial_outcome.total_elapsed_seconds;

    let mut report = FigureReport::new("fig5", "cores", "time_to_simulate_seconds");
    report.push("serial", 0.0, serial_time);

    // Paper sweeps 8..=64 step 8; scale the sweep to the machine by default.
    let step = (params.max_cores / 8).max(1);
    let mut cores = step;
    while cores <= params.max_cores {
        let mut cfg = params.search_config(Some(cores));
        cfg.max_depth = depth;
        let outcome = SearchDriver::new(cfg.with_mode(ExecutionMode::Parallel))
            .run(&graphs)
            .expect("parallel search");
        report.push("parallel", cores as f64, outcome.total_elapsed_seconds);
        eprintln!(
            "[fig5] cores={cores}: {:.3}s (serial reference {:.3}s)",
            outcome.total_elapsed_seconds, serial_time
        );
        cores += step;
    }

    emit(&report);
}
