//! JSON-emitting benchmark for the crash-safe serving tier: what does
//! durability cost, and how fast is recovery?
//!
//! Three measurements against the same batch of small searches:
//!
//! 1. **Journaling overhead** — drain the batch on an in-memory
//!    [`JobServer`] vs a durable one (`--state-dir` mode); the overhead is
//!    the relative slowdown of the durable sweep (target: < 5%).
//! 2. **Replay latency** — kill the durable server's state mid-journal
//!    (keep a prefix of the journal, as a hard kill would) and measure
//!    `JobServer::launch` replay + re-enqueue time.
//! 3. **Recovery-to-completion** — time from the relaunch to the resumed
//!    batch fully draining, checked bit-identical to the uninterrupted run.
//!
//! ```text
//! cargo run --release -p qarchsearch_bench --bin bench_fault_recovery
//! QAS_FR_JOBS=8 QAS_FR_NODES=10 ./target/release/bench_fault_recovery
//! ```
//!
//! | variable        | meaning                          | default |
//! |-----------------|----------------------------------|---------|
//! | `QAS_FR_JOBS`   | jobs submitted per sweep         | 6       |
//! | `QAS_FR_NODES`  | nodes per training graph         | 10      |
//! | `QAS_FR_PMAX`   | search depth per job             | 2       |
//! | `QAS_FR_BUDGET` | optimizer budget per candidate   | 240     |
//! | `QAS_FR_REPS`   | timed repetitions per sweep      | 5       |

use graphs::Graph;
use qarchsearch::report::SearchReport;
use qarchsearch::search::{SearchConfig, SearchOutcome};
use qarchsearch::server::{JobId, JobServer, JobServerConfig, JobSpec, ServerOptions};
use qarchsearch::store::StoreConfig;
use qarchsearch::GateAlphabet;
use serde_json::json;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn job_spec(seed: u64, nodes: usize, p_max: usize, budget: usize) -> JobSpec {
    let config = SearchConfig::builder()
        .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
        .max_depth(p_max)
        .max_gates_per_mixer(2)
        .optimizer_budget(budget)
        .halving(budget.div_ceil(3).max(1), 2)
        .backend(qaoa::Backend::StateVector)
        .threads(1)
        .seed(seed)
        .build();
    let graphs = vec![Graph::connected_erdos_renyi(nodes, 0.5, seed, 50)];
    JobSpec::new(config, graphs).name(format!("bench-{seed}"))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qas-bench-fault-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench state dir");
    dir
}

fn report_bytes(outcome: &SearchOutcome) -> String {
    SearchReport::from(outcome).without_timings().to_json()
}

/// Submit the batch and drain it; returns (elapsed seconds, per-job
/// timing-free report bytes in submission order).
fn drain_batch(
    server: &JobServer,
    jobs: usize,
    nodes: usize,
    p_max: usize,
    budget: usize,
) -> (f64, Vec<String>) {
    let start = Instant::now();
    let ids: Vec<JobId> = (0..jobs)
        .map(|i| {
            server
                .submit(job_spec(i as u64, nodes, p_max, budget))
                .expect("queue sized to fit")
        })
        .collect();
    let reports = ids
        .iter()
        .map(|id| {
            let outcome = server
                .wait(*id)
                .expect("job exists")
                .expect("job completes");
            report_bytes(&outcome)
        })
        .collect();
    (start.elapsed().as_secs_f64(), reports)
}

fn memory_server(workers: usize, queue: usize) -> JobServer {
    JobServer::start(JobServerConfig {
        workers,
        queue_capacity: queue,
        ..JobServerConfig::default()
    })
}

fn durable_server(dir: &Path, workers: usize, queue: usize) -> JobServer {
    JobServer::launch(
        JobServerConfig {
            workers,
            queue_capacity: queue,
            ..JobServerConfig::default()
        },
        ServerOptions {
            store: Some(StoreConfig::new(dir)),
            faults: None,
            cache: None,
            shard_id: None,
        },
    )
    .expect("open bench state dir")
}

fn main() {
    let jobs = env_usize("QAS_FR_JOBS", 6);
    let nodes = env_usize("QAS_FR_NODES", 10);
    let p_max = env_usize("QAS_FR_PMAX", 2);
    let budget = env_usize("QAS_FR_BUDGET", 240);
    let reps = env_usize("QAS_FR_REPS", 5).max(1);
    let workers = 2usize;
    let queue = jobs.max(1);

    // --- 1. journaling overhead: in-memory vs durable sweeps -------------
    let mut memory_secs = Vec::with_capacity(reps);
    let mut durable_secs = Vec::with_capacity(reps);
    let mut baseline_reports = None;
    for rep in 0..reps {
        let server = memory_server(workers, queue);
        let (secs, reports) = drain_batch(&server, jobs, nodes, p_max, budget);
        server.shutdown();
        memory_secs.push(secs);
        baseline_reports.get_or_insert(reports);

        let dir = fresh_dir(&format!("overhead-{rep}"));
        let server = durable_server(&dir, workers, queue);
        let (secs, reports) = drain_batch(&server, jobs, nodes, p_max, budget);
        server.shutdown();
        durable_secs.push(secs);
        assert_eq!(
            Some(&reports),
            baseline_reports.as_ref(),
            "durability leaked into results"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let memory_best = memory_secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let durable_best = durable_secs.iter().cloned().fold(f64::INFINITY, f64::min);
    // Each rep runs the memory and durable sweeps back to back under the
    // same machine load, so the per-rep ratio cancels slow load drift that
    // best-of-N across the whole window cannot; the median of those ratios
    // is the overhead estimate.
    let mut ratios: Vec<f64> = memory_secs
        .iter()
        .zip(&durable_secs)
        .map(|(m, d)| d / m)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ratio = if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    };
    let overhead_percent = (median_ratio - 1.0) * 100.0;
    eprintln!(
        "[bench_fault_recovery] journaling overhead: memory {memory_best:.3}s vs durable \
         {durable_best:.3}s best-of-{reps}, median pairwise {overhead_percent:+.2}%"
    );

    // --- 2+3. crash replay latency and recovery-to-completion ------------
    // Build a journal mid-flight: run the batch durably, capture the
    // uncompacted journal, then keep only a prefix (a hard kill mid-run).
    let crash_dir = fresh_dir("crash");
    let server = durable_server(&crash_dir, workers, queue);
    let (_, reference_reports) = drain_batch(&server, jobs, nodes, p_max, budget);
    let journal = std::fs::read_to_string(crash_dir.join("journal.log")).expect("journal exists");
    server.shutdown();
    let lines: Vec<&str> = journal.lines().collect();
    // Cut at 60% of the journal: some jobs finished, some mid-checkpoint.
    // Workers interleave un-fsynced progress records with the submission
    // loop, so push the cut past the last `Submitted` record if needed —
    // the recovery sweep below waits on every job of the batch.
    let last_submitted = lines
        .iter()
        .rposition(|line| line.contains("\"Submitted\""))
        .map_or(0, |idx| idx + 1);
    let cut = (lines.len() * 3 / 5).max(1).max(last_submitted);
    let mut prefix = lines[..cut].join("\n");
    prefix.push('\n');

    let mut replay_secs = Vec::with_capacity(reps);
    let mut recover_secs = Vec::with_capacity(reps);
    let mut recovered_jobs = 0usize;
    for rep in 0..reps {
        let dir = fresh_dir(&format!("replay-{rep}"));
        std::fs::write(dir.join("journal.log"), &prefix).expect("write crash journal");
        let replay_start = Instant::now();
        let server = durable_server(&dir, workers, queue);
        replay_secs.push(replay_start.elapsed().as_secs_f64());
        let recovery = server.recovery().expect("durable launch").clone();
        recovered_jobs = recovery.resumed_jobs + recovery.requeued_jobs + recovery.terminal_jobs;
        let recover_start = Instant::now();
        for (i, reference) in reference_reports.iter().enumerate() {
            let id = JobId(i as u64 + 1);
            let outcome = server
                .wait(id)
                .expect("job recovered")
                .expect("job completes after recovery");
            assert_eq!(
                &report_bytes(&outcome),
                reference,
                "job {id} diverged after crash recovery"
            );
        }
        recover_secs.push(recover_start.elapsed().as_secs_f64());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&crash_dir);
    let replay_best = replay_secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let recover_best = recover_secs.iter().cloned().fold(f64::INFINITY, f64::min);
    eprintln!(
        "[bench_fault_recovery] crash replay {:.1}ms ({recovered_jobs} jobs from {cut}/{} \
         records), recovery-to-completion {recover_best:.3}s",
        replay_best * 1e3,
        lines.len()
    );

    println!(
        "{}",
        serde_json::to_string_pretty(&json!({
            "benchmark": "bench_fault_recovery",
            "description": "durable JobServer: journaling overhead vs in-memory serving, \
                            journal replay latency, and crash recovery-to-completion \
                            (bit-identical reports asserted)",
            "available_cpus": (std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
            "results": [
                {
                    "name": "journaling_overhead",
                    "workers": workers,
                    "jobs": jobs,
                    "nodes": nodes,
                    "p_max": p_max,
                    "budget": budget,
                    "reps": reps,
                    "memory_seconds_best": memory_best,
                    "durable_seconds_best": durable_best,
                    "overhead_percent_median_pairwise": overhead_percent,
                },
                {
                    "name": "crash_recovery",
                    "journal_records_total": (lines.len()),
                    "journal_records_kept": cut,
                    "jobs_recovered": recovered_jobs,
                    "replay_seconds_best": replay_best,
                    "recovery_to_completion_seconds_best": recover_best,
                },
            ],
        }))
        .expect("report serializes")
    );
}
