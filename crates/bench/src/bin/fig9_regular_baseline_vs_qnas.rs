//! Fig. 9: per-depth approximation ratios of the baseline and qnas mixers on
//! 10-node random 4-regular graphs, for `p = 1, 2, 3`.
//!
//! Paper shape: on random regular graphs the two mixers perform comparably at
//! all depths (the aggregated ratios coincide at 1.0).
//!
//! ```text
//! cargo run --release -p qarchsearch-bench --bin fig9_regular_baseline_vs_qnas
//! ```

use qaoa::mixer::Mixer;
use qarchsearch::evaluator::{Evaluator, EvaluatorConfig};
use qarchsearch_bench::{emit, FigureReport, HarnessParams};

fn main() {
    let params = HarnessParams::from_env();
    let graphs = params.regular_dataset();
    let depths: Vec<usize> = (1..=params.p_max.min(3)).collect();

    let evaluator = Evaluator::new(EvaluatorConfig {
        budget: params.budget,
        restarts: 3,
        ..EvaluatorConfig::default()
    });

    let mut report = FigureReport::new("fig9", "p", "approx_ratio");

    for (label, mixer) in [("baseline", Mixer::baseline()), ("qnas", Mixer::qnas())] {
        for &p in &depths {
            let result = evaluator
                .evaluate(&graphs, &mixer, p)
                .expect("candidate evaluation");
            report.push(label, p as f64, result.mean_approx_ratio);
            eprintln!(
                "[fig9] {label} p={p}: mean r = {:.4} over {} regular graphs",
                result.mean_approx_ratio,
                graphs.len()
            );
        }
    }

    emit(&report);
    println!("paper reference: baseline and qnas mixers perform comparably on 4-regular graphs");
}
