//! Shared harness utilities for the figure-reproduction binaries and the
//! Criterion benches.
//!
//! Every figure of the paper's evaluation has a dedicated binary
//! (`fig4_serial_vs_parallel`, `fig5_core_scaling`, `fig6_best_mixer`,
//! `fig7_mixer_comparison`, `fig8_er_baseline_vs_qnas`,
//! `fig9_regular_baseline_vs_qnas`). They all print a [`FigureReport`]
//! table and a JSON blob so the numbers can be compared against the paper
//! (see `EXPERIMENTS.md`).
//!
//! The paper's full workload (2500 candidate circuits × 20 graphs × 200
//! COBYLA steps on a Polaris node) is larger than what a default `cargo run`
//! should take, so each binary uses scaled-down defaults and honours
//! environment variables for full-scale runs:
//!
//! | variable          | meaning                                    | default |
//! |-------------------|--------------------------------------------|---------|
//! | `QAS_GRAPHS`      | number of graphs per dataset               | 3       |
//! | `QAS_NODES`       | nodes per graph                            | 10      |
//! | `QAS_PMAX`        | maximum QAOA depth                         | 3       |
//! | `QAS_KMAX`        | maximum gates per mixer                    | 2       |
//! | `QAS_BUDGET`      | optimizer evaluations per candidate        | 40      |
//! | `QAS_RUNS`        | repetitions to average over (Fig. 4)       | 2       |
//! | `QAS_MAX_CORES`   | largest thread count swept (Fig. 5)        | 2× CPUs |
//! | `QAS_PAPER_SCALE` | set to `1` to use the paper's full sizes   | unset   |

pub use qarchsearch::report::{FigureReport, SearchReport, SeriesPoint};

use graphs::Graph;
use qaoa::Backend;
use qarchsearch::search::{SearchConfig, SearchStrategy};

/// Scaled experiment sizes, controlled by environment variables.
#[derive(Debug, Clone)]
pub struct HarnessParams {
    /// Graphs per dataset.
    pub num_graphs: usize,
    /// Nodes per graph.
    pub num_nodes: usize,
    /// Maximum QAOA depth `p_max`.
    pub p_max: usize,
    /// Maximum gates per mixer `K_max`.
    pub k_max: usize,
    /// Optimizer budget per candidate per graph.
    pub budget: usize,
    /// Independent repetitions for timing averages.
    pub runs: usize,
    /// Largest core count swept in Fig. 5.
    pub max_cores: usize,
    /// Base RNG seed.
    pub seed: u64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl HarnessParams {
    /// Parameters from the environment, falling back to quick defaults (or to
    /// the paper's full sizes when `QAS_PAPER_SCALE=1`).
    pub fn from_env() -> HarnessParams {
        let paper = std::env::var("QAS_PAPER_SCALE")
            .map(|v| v == "1")
            .unwrap_or(false);
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        if paper {
            HarnessParams {
                num_graphs: env_usize("QAS_GRAPHS", 20),
                num_nodes: env_usize("QAS_NODES", 10),
                p_max: env_usize("QAS_PMAX", 4),
                k_max: env_usize("QAS_KMAX", 4),
                budget: env_usize("QAS_BUDGET", 200),
                runs: env_usize("QAS_RUNS", 5),
                max_cores: env_usize("QAS_MAX_CORES", 64),
                seed: 2023,
            }
        } else {
            HarnessParams {
                num_graphs: env_usize("QAS_GRAPHS", 3),
                num_nodes: env_usize("QAS_NODES", 10),
                p_max: env_usize("QAS_PMAX", 3),
                k_max: env_usize("QAS_KMAX", 2),
                budget: env_usize("QAS_BUDGET", 40),
                runs: env_usize("QAS_RUNS", 2),
                max_cores: env_usize("QAS_MAX_CORES", 2 * cpus),
                seed: 2023,
            }
        }
    }

    /// Tiny parameters for the Criterion benches and for tests.
    pub fn tiny() -> HarnessParams {
        HarnessParams {
            num_graphs: 2,
            num_nodes: 8,
            p_max: 2,
            k_max: 2,
            budget: 15,
            runs: 1,
            max_cores: 4,
            seed: 7,
        }
    }

    /// The Erdős–Rényi profiling dataset (§3.1).
    pub fn er_dataset(&self) -> Vec<Graph> {
        graphs::datasets::erdos_renyi_dataset(self.num_graphs, self.num_nodes, self.seed)
    }

    /// The random 4-regular evaluation dataset (§3.2).
    pub fn regular_dataset(&self) -> Vec<Graph> {
        graphs::datasets::random_regular_dataset(self.num_graphs, self.num_nodes, 4, self.seed + 1)
    }

    /// A search configuration with this harness's sizes.
    ///
    /// Figure reproductions compare the *paper's* serial and parallel
    /// algorithms, so the budget-aware pipeline (pruning, warm starts) is
    /// disabled: serial vs. parallel must differ only in scheduling, never
    /// in how much budget each candidate receives.
    pub fn search_config(&self, threads: Option<usize>) -> SearchConfig {
        let mut builder = SearchConfig::builder()
            .max_depth(self.p_max)
            .max_gates_per_mixer(self.k_max)
            .optimizer_budget(self.budget)
            .backend(Backend::TensorNetwork)
            .strategy(SearchStrategy::Exhaustive)
            .seed(self.seed)
            .no_prune();
        if let Some(t) = threads {
            builder = builder.threads(t);
        }
        builder.build()
    }
}

/// Print a figure report as a table and as JSON, the common tail of every
/// `fig*` binary.
pub fn emit(report: &FigureReport) {
    println!("{}", report.to_table());
    println!("--- JSON ---");
    println!("{}", report.to_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_modest() {
        let p = HarnessParams::from_env();
        assert!(p.num_graphs >= 1);
        assert!(p.p_max >= 1);
        assert!(p.budget >= 1);
    }

    #[test]
    fn tiny_params_build_datasets() {
        let p = HarnessParams::tiny();
        let er = p.er_dataset();
        let reg = p.regular_dataset();
        assert_eq!(er.len(), 2);
        assert_eq!(reg.len(), 2);
        for g in reg {
            assert!(g.is_regular(4));
        }
    }

    #[test]
    fn search_config_honours_thread_request() {
        let p = HarnessParams::tiny();
        let cfg = p.search_config(Some(3));
        assert_eq!(cfg.threads, Some(3));
        assert_eq!(cfg.max_depth, 2);
        let cfg2 = p.search_config(None);
        assert_eq!(cfg2.threads, None);
    }
}
