//! Ablation: classical optimizer choice (COBYLA vs Nelder–Mead vs SPSA vs
//! random search) at a fixed evaluation budget for the QAOA evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optim::OptimizerKind;
use qaoa::mixer::Mixer;
use qaoa::Backend;
use qarchsearch::evaluator::{Evaluator, EvaluatorConfig};

fn bench_optimizer_compare(c: &mut Criterion) {
    let graph = graphs::Graph::connected_erdos_renyi(8, 0.5, 23, 50);

    let mut group = c.benchmark_group("optimizer_compare");
    group.sample_size(10);

    for kind in [
        OptimizerKind::Cobyla,
        OptimizerKind::NelderMead,
        OptimizerKind::Spsa,
        OptimizerKind::RandomSearch,
    ] {
        let evaluator = Evaluator::new(EvaluatorConfig {
            backend: Backend::TensorNetwork,
            optimizer: kind,
            budget: 25,
            ..EvaluatorConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("train_p1", kind.to_string()),
            &kind,
            |b, _| {
                b.iter(|| {
                    evaluator
                        .evaluate_on_graph(&graph, &Mixer::baseline(), 1)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimizer_compare);
criterion_main!(benches);
