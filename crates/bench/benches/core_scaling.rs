//! Criterion companion to Fig. 5: parallel search time at p = 2 as the outer
//! thread-pool size grows, with the serial scheduler as the reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarchsearch::search::ExecutionMode;
use qarchsearch::session::SearchDriver;
use qarchsearch_bench::HarnessParams;

fn bench_core_scaling(c: &mut Criterion) {
    let params = HarnessParams::tiny();
    let graph = graphs::Graph::connected_erdos_renyi(params.num_nodes, 0.5, params.seed, 50);
    let graphs = vec![graph];

    let mut group = c.benchmark_group("fig5_core_scaling");
    group.sample_size(10);

    let mut serial_config = params.search_config(None);
    serial_config.max_depth = 2;
    group.bench_function("serial_reference", |b| {
        b.iter(|| {
            SearchDriver::new(serial_config.clone().with_mode(ExecutionMode::Serial))
                .run(&graphs)
                .unwrap()
        });
    });

    for threads in [1usize, 2, 4] {
        let mut config = params.search_config(Some(threads));
        config.max_depth = 2;
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, _| {
            b.iter(|| {
                SearchDriver::new(config.clone().with_mode(ExecutionMode::Parallel))
                    .run(&graphs)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_core_scaling);
criterion_main!(benches);
