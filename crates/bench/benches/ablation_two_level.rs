//! Ablation of the two-level parallelization scheme (Figs. 2–3):
//!
//! * outer level only — candidates in parallel, edges sequential,
//! * inner level only — candidates sequential, edges in parallel,
//! * both levels — the full scheme,
//! * neither — fully serial.

use criterion::{criterion_group, criterion_main, Criterion};
use qaoa::Backend;
use qarchsearch::search::ExecutionMode;
use qarchsearch::session::SearchDriver;
use qarchsearch_bench::HarnessParams;

fn bench_two_level(c: &mut Criterion) {
    let params = HarnessParams::tiny();
    let graphs = params.er_dataset();

    let mut group = c.benchmark_group("ablation_two_level");
    group.sample_size(10);

    let mut base = params.search_config(None);
    base.max_depth = 1;

    // Fully serial: serial scheduler + sequential edge evaluation.
    let mut serial_cfg = base.clone();
    serial_cfg.evaluator.backend = Backend::TensorNetworkSequential;
    group.bench_function("neither", |b| {
        b.iter(|| {
            SearchDriver::new(serial_cfg.clone().with_mode(ExecutionMode::Serial))
                .run(&graphs)
                .unwrap()
        });
    });

    // Inner only: serial scheduler, parallel edges.
    let mut inner_cfg = base.clone();
    inner_cfg.evaluator.backend = Backend::TensorNetwork;
    group.bench_function("inner_only", |b| {
        b.iter(|| {
            SearchDriver::new(inner_cfg.clone().with_mode(ExecutionMode::Serial))
                .run(&graphs)
                .unwrap()
        });
    });

    // Outer only: parallel scheduler, sequential edges.
    let mut outer_cfg = base.clone();
    outer_cfg.evaluator.backend = Backend::TensorNetworkSequential;
    outer_cfg.threads = Some(4);
    group.bench_function("outer_only", |b| {
        b.iter(|| {
            SearchDriver::new(outer_cfg.clone().with_mode(ExecutionMode::Parallel))
                .run(&graphs)
                .unwrap()
        });
    });

    // Both levels.
    let mut both_cfg = base.clone();
    both_cfg.evaluator.backend = Backend::TensorNetwork;
    both_cfg.threads = Some(4);
    group.bench_function("both", |b| {
        b.iter(|| {
            SearchDriver::new(both_cfg.clone().with_mode(ExecutionMode::Parallel))
                .run(&graphs)
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_two_level);
criterion_main!(benches);
