//! Microbenchmarks for the state-vector gate kernels and the compiled
//! simulation pipeline (the hot loop of every candidate evaluation).
//!
//! The JSON-emitting counterpart `bench_gate_kernels` (a regular binary)
//! produces the committed `BENCH_gate_kernels.json` numbers; this Criterion
//! harness is the interactive/per-commit view of the same kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::ansatz::QaoaAnsatz;
use qaoa::energy::EnergyEvaluator;
use qaoa::mixer::Mixer;
use qaoa::Backend;
use qcircuit::{Gate, GateMatrix};
use statevec::StateVector;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_kernels");
    group.sample_size(10);

    for n in [12usize, 16] {
        let plus = StateVector::plus_state(n).unwrap();

        let rx = match GateMatrix::of(Gate::RX, 0.3) {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        group.bench_with_input(BenchmarkId::new("single_qubit", n), &n, |b, _| {
            let mut s = plus.clone();
            b.iter(|| s.apply_single_qubit(&rx, n / 2));
        });

        let rxx = match GateMatrix::of(Gate::RXX, 0.7) {
            GateMatrix::Two(m) => m,
            _ => unreachable!(),
        };
        group.bench_with_input(BenchmarkId::new("two_qubit", n), &n, |b, _| {
            let mut s = plus.clone();
            b.iter(|| s.apply_two_qubit(&rxx, n - 1, 0));
        });

        // A full Max-Cut cost layer: one fused phase pass vs one RZZ kernel
        // per edge.
        let graph = graphs::Graph::connected_erdos_renyi(n, 0.5, 7, 50);
        let edges: Vec<(usize, usize, f64)> =
            graph.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        let table = statevec::expectation::maxcut_diagonal(n, &edges);
        group.bench_with_input(BenchmarkId::new("cost_layer_fused", n), &n, |b, _| {
            let mut s = plus.clone();
            b.iter(|| s.apply_phase_table(&table, 0.8).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cost_layer_per_edge", n), &n, |b, _| {
            let mut s = plus.clone();
            b.iter(|| {
                for &(u, v, w) in &edges {
                    let m = match GateMatrix::of(Gate::RZZ, 2.0 * w * 0.8) {
                        GateMatrix::Two(m) => m,
                        _ => unreachable!(),
                    };
                    s.apply_two_qubit(&m, u, v);
                }
            });
        });
    }
    group.finish();
}

fn bench_energy_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("qaoa_energy_eval");
    group.sample_size(10);

    let n = 12;
    let graph = graphs::Graph::connected_erdos_renyi(n, 0.5, 7, 50);
    let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
    let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
    let params = [0.4, 0.7, 0.3, 0.1];

    group.bench_function(BenchmarkId::new("legacy_bind_per_call", n), |b| {
        b.iter(|| eval.energy_flat(&ansatz, &params).unwrap());
    });
    let compiled = eval.compile(&ansatz).unwrap();
    group.bench_function(BenchmarkId::new("compiled", n), |b| {
        b.iter(|| compiled.energy_flat(&params).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_energy_eval);
criterion_main!(benches);
