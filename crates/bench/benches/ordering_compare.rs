//! Ablation: contraction-ordering heuristics (greedy min-degree vs min-fill
//! vs natural order) for the tensor networks produced by QAOA expectation
//! values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::ansatz::QaoaAnsatz;
use qaoa::mixer::Mixer;
use tensornet::{OrderingHeuristic, TensorNetwork};

fn bench_ordering_compare(c: &mut Criterion) {
    let graph = graphs::Graph::connected_erdos_renyi(10, 0.4, 17, 50);
    let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
    let circuit = ansatz.bind(&[0.4, 0.2], &[0.3, 0.1]).expect("bind");
    let edge = graph.edges()[0];
    let network = TensorNetwork::for_diagonal_expectation(
        &circuit,
        &[(edge.u, [1.0, -1.0]), (edge.v, [1.0, -1.0])],
    )
    .expect("network");

    let mut group = c.benchmark_group("ordering_compare");
    group.sample_size(20);

    for (name, heuristic) in [
        ("min-degree", OrderingHeuristic::MinDegree),
        ("min-fill", OrderingHeuristic::MinFill),
        ("natural", OrderingHeuristic::Natural),
    ] {
        group.bench_with_input(BenchmarkId::new("contract", name), &heuristic, |b, h| {
            b.iter(|| network.contract_with_heuristic(*h).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering_compare);
criterion_main!(benches);
