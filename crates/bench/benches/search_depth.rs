//! Criterion companion to Fig. 4: serial vs parallel search time as a
//! function of the QAOA depth `p`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarchsearch::search::ExecutionMode;
use qarchsearch::session::SearchDriver;
use qarchsearch_bench::HarnessParams;

fn bench_search_depth(c: &mut Criterion) {
    let params = HarnessParams::tiny();
    let graphs = params.er_dataset();

    let mut group = c.benchmark_group("fig4_search_depth");
    group.sample_size(10);

    for p in 1..=params.p_max {
        let mut config = params.search_config(None);
        config.max_depth = p;

        group.bench_with_input(BenchmarkId::new("serial", p), &p, |b, _| {
            b.iter(|| {
                SearchDriver::new(config.clone().with_mode(ExecutionMode::Serial))
                    .run(&graphs)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel", p), &p, |b, _| {
            b.iter(|| {
                SearchDriver::new(config.clone().with_mode(ExecutionMode::Parallel))
                    .run(&graphs)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_depth);
criterion_main!(benches);
