//! Ablation: dense state-vector backend vs tensor-network backend for one
//! QAOA energy evaluation (the design choice called out in DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::ansatz::QaoaAnsatz;
use qaoa::energy::EnergyEvaluator;
use qaoa::mixer::Mixer;
use qaoa::Backend;

fn bench_backend_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_compare");
    group.sample_size(10);

    for n in [8usize, 10, 12] {
        let graph = graphs::Graph::connected_erdos_renyi(n, 0.4, 5, 50);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::qnas());
        for backend in [Backend::StateVector, Backend::TensorNetwork] {
            let eval = EnergyEvaluator::new(&graph, backend);
            group.bench_with_input(BenchmarkId::new(backend.to_string(), n), &n, |b, _| {
                b.iter(|| eval.energy(&ansatz, &[0.4], &[0.3]).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backend_compare);
criterion_main!(benches);
