//! Criterion companion to Figs. 7–9: cost of training each candidate mixer at
//! p = 1 on a 4-regular graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::mixer::Mixer;
use qaoa::Backend;
use qarchsearch::evaluator::{Evaluator, EvaluatorConfig};

fn bench_mixer_eval(c: &mut Criterion) {
    let graph = graphs::Graph::random_regular(8, 4, 3).expect("regular graph");
    let evaluator = Evaluator::new(EvaluatorConfig {
        backend: Backend::TensorNetwork,
        budget: 20,
        ..EvaluatorConfig::default()
    });

    let mut group = c.benchmark_group("fig7_mixer_eval");
    group.sample_size(10);

    let mut mixers = Mixer::fig7_candidates();
    mixers.push(Mixer::baseline());
    for mixer in mixers {
        group.bench_with_input(
            BenchmarkId::new("train_p1", mixer.label()),
            &mixer,
            |b, m| {
                b.iter(|| evaluator.evaluate_on_graph(&graph, m, 1).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mixer_eval);
criterion_main!(benches);
