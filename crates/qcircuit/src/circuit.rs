//! The circuit container: an ordered list of instructions over `n` qubits.

use crate::error::CircuitError;
use crate::gate::Gate;
use crate::matrix::GateMatrix;
use crate::parameter::Parameter;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One gate application: a [`Gate`], its qubit operands and its parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// The gate kind.
    pub gate: Gate,
    /// Qubit operands (length equals `gate.arity()`).
    pub qubits: Vec<usize>,
    /// The rotation angle (or `Parameter::None`).
    pub parameter: Parameter,
}

impl Instruction {
    /// Build and validate an instruction against a circuit width.
    pub fn new(
        gate: Gate,
        qubits: &[usize],
        parameter: Parameter,
        width: usize,
    ) -> Result<Self, CircuitError> {
        if qubits.len() != gate.arity() {
            return Err(CircuitError::WrongArity {
                gate: gate.to_string(),
                expected: gate.arity(),
                got: qubits.len(),
            });
        }
        for &q in qubits {
            if q >= width {
                return Err(CircuitError::QubitOutOfRange { index: q, width });
            }
        }
        if qubits.len() == 2 && qubits[0] == qubits[1] {
            return Err(CircuitError::DuplicateQubit { qubit: qubits[0] });
        }
        if gate.is_parameterized() && parameter.is_none() {
            return Err(CircuitError::MissingParameter {
                gate: gate.to_string(),
            });
        }
        if !gate.is_parameterized() && !parameter.is_none() {
            return Err(CircuitError::UnexpectedParameter {
                gate: gate.to_string(),
            });
        }
        Ok(Instruction {
            gate,
            qubits: qubits.to_vec(),
            parameter,
        })
    }

    /// The concrete matrix of this instruction, if its parameter is resolved
    /// by `lookup` (bound parameters ignore the lookup).
    pub fn matrix(&self, lookup: &dyn Fn(&str) -> Option<f64>) -> Option<GateMatrix> {
        let theta = if self.gate.is_parameterized() {
            self.parameter.resolve(lookup)?
        } else {
            0.0
        };
        Some(GateMatrix::of(self.gate, theta))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameter.is_none() {
            write!(f, "{} {:?}", self.gate, self.qubits)
        } else {
            write!(f, "{}({}) {:?}", self.gate, self.parameter, self.qubits)
        }
    }
}

/// A parameterized quantum circuit over a fixed number of qubits.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// An empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Circuit width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Append a gate; panics on invalid operands (use [`Circuit::try_push`]
    /// for a fallible version).
    pub fn push(&mut self, gate: Gate, qubits: &[usize], parameter: Parameter) -> &mut Self {
        self.try_push(gate, qubits, parameter)
            .expect("invalid instruction");
        self
    }

    /// Append a gate, validating operands and parameters.
    pub fn try_push(
        &mut self,
        gate: Gate,
        qubits: &[usize],
        parameter: Parameter,
    ) -> Result<&mut Self, CircuitError> {
        let inst = Instruction::new(gate, qubits, parameter, self.num_qubits)?;
        self.instructions.push(inst);
        Ok(self)
    }

    // --- convenience builders -------------------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, &[q], Parameter::None)
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, &[q], Parameter::None)
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, &[q], Parameter::None)
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, &[q], Parameter::None)
    }

    /// RX rotation on `q` with a bound angle.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::RX, &[q], Parameter::bound(theta))
    }

    /// RY rotation on `q` with a bound angle.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::RY, &[q], Parameter::bound(theta))
    }

    /// RZ rotation on `q` with a bound angle.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::RZ, &[q], Parameter::bound(theta))
    }

    /// Phase rotation on `q` with a bound angle.
    pub fn p(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::P, &[q], Parameter::bound(theta))
    }

    /// CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::CX, &[control, target], Parameter::None)
    }

    /// CZ on the pair `(a, b)`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::CZ, &[a, b], Parameter::None)
    }

    /// RZZ interaction on the pair `(a, b)` with a bound angle.
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::RZZ, &[a, b], Parameter::bound(theta))
    }

    /// A layer of Hadamards on every qubit (the `|+>^n` initial state prep).
    pub fn h_layer(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.h(q);
        }
        self
    }

    // --- analysis -------------------------------------------------------------

    /// Sorted, de-duplicated names of free parameters in the circuit.
    pub fn free_parameters(&self) -> Vec<String> {
        let mut names: BTreeSet<String> = BTreeSet::new();
        for inst in &self.instructions {
            if let Some(n) = inst.parameter.name() {
                names.insert(n.to_string());
            }
        }
        names.into_iter().collect()
    }

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.instructions.len()
    }

    /// Number of two-qubit gates (a common hardware-cost proxy).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.arity() == 2)
            .count()
    }

    /// Circuit depth: the length of the longest chain of instructions that
    /// touch a common qubit, computed greedily layer by layer.
    pub fn depth(&self) -> usize {
        let mut qubit_depth = vec![0usize; self.num_qubits];
        for inst in &self.instructions {
            let level = inst
                .qubits
                .iter()
                .map(|&q| qubit_depth[q])
                .max()
                .unwrap_or(0)
                + 1;
            for &q in &inst.qubits {
                qubit_depth[q] = level;
            }
        }
        qubit_depth.into_iter().max().unwrap_or(0)
    }

    /// Count of parameterized gates.
    pub fn parameterized_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.is_parameterized())
            .count()
    }

    // --- transformation -------------------------------------------------------

    /// Append every instruction of `other` to `self`. Fails when the widths
    /// differ.
    pub fn compose(&mut self, other: &Circuit) -> Result<&mut Self, CircuitError> {
        if other.num_qubits != self.num_qubits {
            return Err(CircuitError::WidthMismatch {
                left: self.num_qubits,
                right: other.num_qubits,
            });
        }
        self.instructions.extend(other.instructions.iter().cloned());
        Ok(self)
    }

    /// A new circuit with the named parameters bound to values.
    ///
    /// Every free parameter appearing in the circuit must be present in
    /// `assignments`, otherwise [`CircuitError::UnboundParameter`] is
    /// returned. Bound parameters are left untouched.
    pub fn bind(&self, assignments: &[(&str, f64)]) -> Result<Circuit, CircuitError> {
        let lookup = |name: &str| {
            assignments
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
        };
        let mut out = Circuit::new(self.num_qubits);
        for inst in &self.instructions {
            let parameter = match &inst.parameter {
                Parameter::Free { name, multiplier } => match lookup(name) {
                    Some(v) => Parameter::Bound(multiplier * v),
                    None => return Err(CircuitError::UnboundParameter { name: name.clone() }),
                },
                other => other.clone(),
            };
            out.instructions.push(Instruction {
                gate: inst.gate,
                qubits: inst.qubits.clone(),
                parameter,
            });
        }
        Ok(out)
    }

    /// The inverse (dagger) circuit. Parameterized gates get negated angles;
    /// all parameters must already be bound.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            let (gate, parameter) = match (&inst.gate, &inst.parameter) {
                (g, Parameter::Bound(v)) if g.is_parameterized() => (*g, Parameter::Bound(-v)),
                (_, Parameter::Free { name, .. }) => {
                    return Err(CircuitError::UnboundParameter { name: name.clone() });
                }
                (Gate::S, _) => (Gate::Sdg, Parameter::None),
                (Gate::Sdg, _) => (Gate::S, Parameter::None),
                (Gate::T, _) => (Gate::Tdg, Parameter::None),
                (Gate::Tdg, _) => (Gate::T, Parameter::None),
                (g, p) => (*g, p.clone()),
            };
            out.instructions.push(Instruction {
                gate,
                qubits: inst.qubits.clone(),
                parameter,
            });
        }
        Ok(out)
    }

    /// Widen the circuit to `new_width` qubits (no-op when already wide
    /// enough); instructions are unchanged.
    pub fn widen(&mut self, new_width: usize) -> &mut Self {
        if new_width > self.num_qubits {
            self.num_qubits = new_width;
        }
        self
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit[{} qubits, {} gates]",
            self.num_qubits,
            self.len()
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_qubit_range() {
        let mut c = Circuit::new(2);
        assert!(c.try_push(Gate::H, &[0], Parameter::None).is_ok());
        let err = c.try_push(Gate::H, &[5], Parameter::None).unwrap_err();
        assert_eq!(err, CircuitError::QubitOutOfRange { index: 5, width: 2 });
    }

    #[test]
    fn push_validates_arity() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::CX, &[0], Parameter::None).unwrap_err();
        assert!(matches!(err, CircuitError::WrongArity { .. }));
    }

    #[test]
    fn push_rejects_duplicate_qubits() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::CX, &[1, 1], Parameter::None).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQubit { qubit: 1 });
    }

    #[test]
    fn push_validates_parameter_presence() {
        let mut c = Circuit::new(1);
        let err = c.try_push(Gate::RX, &[0], Parameter::None).unwrap_err();
        assert!(matches!(err, CircuitError::MissingParameter { .. }));
        let err = c
            .try_push(Gate::H, &[0], Parameter::bound(0.1))
            .unwrap_err();
        assert!(matches!(err, CircuitError::UnexpectedParameter { .. }));
    }

    #[test]
    fn free_parameters_are_sorted_unique() {
        let mut c = Circuit::new(2);
        c.push(Gate::RX, &[0], Parameter::free("beta", 2.0));
        c.push(Gate::RX, &[1], Parameter::free("beta", 2.0));
        c.push(Gate::RZZ, &[0, 1], Parameter::free("gamma", 1.0));
        assert_eq!(
            c.free_parameters(),
            vec!["beta".to_string(), "gamma".to_string()]
        );
    }

    #[test]
    fn bind_resolves_all_parameters() {
        let mut c = Circuit::new(1);
        c.push(Gate::RX, &[0], Parameter::free("beta", 2.0));
        let bound = c.bind(&[("beta", 0.5)]).unwrap();
        assert!(bound.free_parameters().is_empty());
        assert_eq!(bound.instructions()[0].parameter, Parameter::Bound(1.0));
    }

    #[test]
    fn bind_missing_parameter_errors() {
        let mut c = Circuit::new(1);
        c.push(Gate::RX, &[0], Parameter::free("beta", 1.0));
        assert!(matches!(
            c.bind(&[("gamma", 0.5)]),
            Err(CircuitError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn depth_counts_parallel_layers_once() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // one layer
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // second layer
        c.cx(1, 2); // third layer (shares qubit 1)
        assert_eq!(c.depth(), 3);
        c.rx(0, 0.1); // fits in layer 3 alongside cx(1,2)? qubit 0 last used layer 2 -> layer 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn compose_requires_same_width() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        assert!(matches!(
            a.compose(&b),
            Err(CircuitError::WidthMismatch { .. })
        ));
        let mut c = Circuit::new(2);
        c.h(0);
        a.compose(&c).unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn inverse_reverses_and_negates() {
        let mut c = Circuit::new(2);
        c.h(0).rx(1, 0.3).cx(0, 1);
        let inv = c.inverse().unwrap();
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.instructions()[0].gate, Gate::CX);
        assert_eq!(inv.instructions()[1].gate, Gate::RX);
        assert_eq!(inv.instructions()[1].parameter, Parameter::Bound(-0.3));
        assert_eq!(inv.instructions()[2].gate, Gate::H);
    }

    #[test]
    fn inverse_maps_s_to_sdg() {
        let mut c = Circuit::new(1);
        c.push(Gate::S, &[0], Parameter::None);
        c.push(Gate::T, &[0], Parameter::None);
        let inv = c.inverse().unwrap();
        assert_eq!(inv.instructions()[0].gate, Gate::Tdg);
        assert_eq!(inv.instructions()[1].gate, Gate::Sdg);
    }

    #[test]
    fn inverse_requires_bound_parameters() {
        let mut c = Circuit::new(1);
        c.push(Gate::RX, &[0], Parameter::free("beta", 1.0));
        assert!(c.inverse().is_err());
    }

    #[test]
    fn gate_counts() {
        let mut c = Circuit::new(3);
        c.h_layer();
        c.rzz(0, 1, 0.5).rzz(1, 2, 0.5);
        c.rx(0, 0.2);
        assert_eq!(c.gate_count(), 6);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.parameterized_gate_count(), 3);
    }

    #[test]
    fn widen_only_grows() {
        let mut c = Circuit::new(2);
        c.widen(5);
        assert_eq!(c.num_qubits(), 5);
        c.widen(3);
        assert_eq!(c.num_qubits(), 5);
    }
}
