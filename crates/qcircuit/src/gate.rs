//! The gate set used by QArchSearch and its QAOA driver application.
//!
//! The rotation-gate alphabet `A_R` of the paper (|A_R| = 5) is drawn from the
//! single-qubit gates defined here; the two-qubit gates are what the QAOA cost
//! layer (`RZZ`/`CX`+`RZ`) and generic entangling mixers need.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A quantum gate kind.
///
/// Gates are split into three families:
///
/// * parameterless single-qubit gates (`H`, `X`, `Y`, `Z`, `S`, `Sdg`, `T`,
///   `Tdg`, `I`),
/// * parameterized single-qubit rotations (`RX`, `RY`, `RZ`, `P`),
/// * two-qubit gates (`CX`, `CZ`, `SWAP`) and the parameterized `RZZ`
///   interaction used by the Max-Cut cost operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate.
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Inverse T gate.
    Tdg,
    /// Rotation about X: RX(θ) = exp(-i θ X / 2).
    RX,
    /// Rotation about Y: RY(θ) = exp(-i θ Y / 2).
    RY,
    /// Rotation about Z: RZ(θ) = exp(-i θ Z / 2).
    RZ,
    /// Phase rotation P(θ) = diag(1, e^{iθ}).
    P,
    /// Controlled-X (CNOT).
    CX,
    /// Controlled-Z.
    CZ,
    /// SWAP.
    SWAP,
    /// Two-qubit ZZ interaction: RZZ(θ) = exp(-i θ Z⊗Z / 2).
    RZZ,
    /// Controlled phase rotation CP(θ) = diag(1,1,1,e^{iθ}).
    CP,
    /// Two-qubit XX interaction: RXX(θ) = exp(-i θ X⊗X / 2).
    RXX,
    /// Two-qubit YY interaction: RYY(θ) = exp(-i θ Y⊗Y / 2).
    RYY,
}

impl Gate {
    /// Number of qubit operands the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            Gate::I
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::RX
            | Gate::RY
            | Gate::RZ
            | Gate::P => 1,
            Gate::CX | Gate::CZ | Gate::SWAP | Gate::RZZ | Gate::CP | Gate::RXX | Gate::RYY => 2,
        }
    }

    /// Whether the gate carries a rotation angle.
    pub fn is_parameterized(self) -> bool {
        matches!(
            self,
            Gate::RX | Gate::RY | Gate::RZ | Gate::P | Gate::RZZ | Gate::CP | Gate::RXX | Gate::RYY
        )
    }

    /// Whether the gate's matrix is diagonal in the computational basis.
    ///
    /// Diagonal gates are important for the tensor-network backend: they can
    /// be represented as rank-1 (per-qubit) or rank-2 diagonal tensors rather
    /// than full matrices, which significantly reduces contraction width
    /// (cf. Lykov & Alexeev, "Importance of Diagonal Gates in Tensor Network
    /// Simulations").
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::RZ
                | Gate::P
                | Gate::CZ
                | Gate::RZZ
                | Gate::CP
        )
    }

    /// Whether the gate is Hermitian (its own inverse up to global phase for
    /// the parameterless ones listed here).
    pub fn is_self_inverse(self) -> bool {
        matches!(
            self,
            Gate::I | Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::CX | Gate::CZ | Gate::SWAP
        )
    }

    /// The canonical lower-case mnemonic, matching the names used in the
    /// paper's figures (`'rx'`, `'ry'`, `'h'`, `'p'`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Gate::I => "i",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::RX => "rx",
            Gate::RY => "ry",
            Gate::RZ => "rz",
            Gate::P => "p",
            Gate::CX => "cx",
            Gate::CZ => "cz",
            Gate::SWAP => "swap",
            Gate::RZZ => "rzz",
            Gate::CP => "cp",
            Gate::RXX => "rxx",
            Gate::RYY => "ryy",
        }
    }

    /// All single-qubit gates that may appear in a mixer alphabet.
    pub fn single_qubit_gates() -> &'static [Gate] {
        &[
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::RX,
            Gate::RY,
            Gate::RZ,
            Gate::P,
        ]
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

impl FromStr for Gate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "i" | "id" => Ok(Gate::I),
            "h" => Ok(Gate::H),
            "x" => Ok(Gate::X),
            "y" => Ok(Gate::Y),
            "z" => Ok(Gate::Z),
            "s" => Ok(Gate::S),
            "sdg" => Ok(Gate::Sdg),
            "t" => Ok(Gate::T),
            "tdg" => Ok(Gate::Tdg),
            "rx" => Ok(Gate::RX),
            "ry" => Ok(Gate::RY),
            "rz" => Ok(Gate::RZ),
            "p" | "phase" | "u1" => Ok(Gate::P),
            "cx" | "cnot" => Ok(Gate::CX),
            "cz" => Ok(Gate::CZ),
            "swap" => Ok(Gate::SWAP),
            "rzz" => Ok(Gate::RZZ),
            "cp" | "cphase" => Ok(Gate::CP),
            "rxx" => Ok(Gate::RXX),
            "ryy" => Ok(Gate::RYY),
            other => Err(format!("unknown gate mnemonic '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_family() {
        for g in Gate::single_qubit_gates() {
            assert_eq!(g.arity(), 1, "{g} should be single-qubit");
        }
        for g in [
            Gate::CX,
            Gate::CZ,
            Gate::SWAP,
            Gate::RZZ,
            Gate::CP,
            Gate::RXX,
            Gate::RYY,
        ] {
            assert_eq!(g.arity(), 2, "{g} should be two-qubit");
        }
    }

    #[test]
    fn parameterized_gates_are_rotations() {
        assert!(Gate::RX.is_parameterized());
        assert!(Gate::RY.is_parameterized());
        assert!(Gate::RZ.is_parameterized());
        assert!(Gate::P.is_parameterized());
        assert!(Gate::RZZ.is_parameterized());
        assert!(!Gate::H.is_parameterized());
        assert!(!Gate::CX.is_parameterized());
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::RZ.is_diagonal());
        assert!(Gate::P.is_diagonal());
        assert!(Gate::CZ.is_diagonal());
        assert!(Gate::RZZ.is_diagonal());
        assert!(!Gate::RX.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::CX.is_diagonal());
    }

    #[test]
    fn mnemonic_round_trips() {
        let all = [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::RX,
            Gate::RY,
            Gate::RZ,
            Gate::P,
            Gate::CX,
            Gate::CZ,
            Gate::SWAP,
            Gate::RZZ,
            Gate::CP,
            Gate::RXX,
            Gate::RYY,
        ];
        for g in all {
            let parsed: Gate = g.mnemonic().parse().unwrap();
            assert_eq!(parsed, g);
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("cnot".parse::<Gate>().unwrap(), Gate::CX);
        assert_eq!("phase".parse::<Gate>().unwrap(), Gate::P);
        assert_eq!("ID".parse::<Gate>().unwrap(), Gate::I);
        assert!("frob".parse::<Gate>().is_err());
    }

    #[test]
    fn self_inverse_gates() {
        assert!(Gate::H.is_self_inverse());
        assert!(Gate::X.is_self_inverse());
        assert!(Gate::CX.is_self_inverse());
        assert!(!Gate::S.is_self_inverse());
        assert!(!Gate::RX.is_self_inverse());
    }
}
