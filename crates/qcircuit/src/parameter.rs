//! Circuit parameters: bound constants and named free parameters.
//!
//! The searched mixers in the paper share a single variational angle `β`
//! across every qubit (Fig. 6 shows `RX(2β)·RY(2β)` on all ten qubits). To
//! express that economically the [`Parameter`] type carries a *multiplier*,
//! so `Parameter::free("beta", 2.0)` represents `2β` and binding `β = 0.4`
//! yields an angle of `0.8`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A gate angle: either a bound constant or `multiplier × named-parameter`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Parameter {
    /// No parameter (for parameterless gates).
    #[default]
    None,
    /// A fixed numeric angle in radians.
    Bound(f64),
    /// A named free parameter scaled by a constant multiplier.
    Free {
        /// Parameter name, e.g. `"beta"` or `"gamma_1"`.
        name: String,
        /// Constant multiplier applied at bind time.
        multiplier: f64,
    },
}

impl Parameter {
    /// A bound constant angle.
    pub fn bound(value: f64) -> Self {
        Parameter::Bound(value)
    }

    /// A free parameter `multiplier × name`.
    pub fn free(name: impl Into<String>, multiplier: f64) -> Self {
        Parameter::Free {
            name: name.into(),
            multiplier,
        }
    }

    /// Whether this is a free (unbound) parameter.
    pub fn is_free(&self) -> bool {
        matches!(self, Parameter::Free { .. })
    }

    /// Whether this is `Parameter::None`.
    pub fn is_none(&self) -> bool {
        matches!(self, Parameter::None)
    }

    /// The parameter name if free.
    pub fn name(&self) -> Option<&str> {
        match self {
            Parameter::Free { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Resolve to a numeric angle given an assignment lookup.
    ///
    /// Returns `None` when the parameter is free and the lookup does not
    /// contain its name, or when called on `Parameter::None`.
    pub fn resolve(&self, lookup: &dyn Fn(&str) -> Option<f64>) -> Option<f64> {
        match self {
            Parameter::None => None,
            Parameter::Bound(v) => Some(*v),
            Parameter::Free { name, multiplier } => lookup(name).map(|v| v * multiplier),
        }
    }

    /// Bind with an explicit value for the named parameter, leaving bound and
    /// none parameters untouched.
    pub fn bind_value(&self, name: &str, value: f64) -> Parameter {
        match self {
            Parameter::Free {
                name: n,
                multiplier,
            } if n == name => Parameter::Bound(multiplier * value),
            other => other.clone(),
        }
    }

    /// Numeric value if already bound.
    pub fn value(&self) -> Option<f64> {
        match self {
            Parameter::Bound(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<f64> for Parameter {
    fn from(v: f64) -> Self {
        Parameter::Bound(v)
    }
}

impl fmt::Display for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parameter::None => write!(f, "-"),
            Parameter::Bound(v) => write!(f, "{v:.4}"),
            Parameter::Free { name, multiplier } => {
                if (*multiplier - 1.0).abs() < f64::EPSILON {
                    write!(f, "{name}")
                } else {
                    write!(f, "{multiplier}*{name}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_resolves_to_itself() {
        let p = Parameter::bound(1.25);
        assert_eq!(p.resolve(&|_| None), Some(1.25));
        assert_eq!(p.value(), Some(1.25));
        assert!(!p.is_free());
    }

    #[test]
    fn free_resolves_with_multiplier() {
        let p = Parameter::free("beta", 2.0);
        assert!(p.is_free());
        assert_eq!(p.name(), Some("beta"));
        let resolved = p.resolve(&|n| if n == "beta" { Some(0.5) } else { None });
        assert_eq!(resolved, Some(1.0));
    }

    #[test]
    fn free_without_assignment_is_unresolved() {
        let p = Parameter::free("gamma", 1.0);
        assert_eq!(p.resolve(&|_| None), None);
    }

    #[test]
    fn bind_value_only_affects_matching_name() {
        let p = Parameter::free("beta", 2.0);
        assert_eq!(p.bind_value("gamma", 3.0), p);
        assert_eq!(p.bind_value("beta", 0.25), Parameter::Bound(0.5));
        let b = Parameter::bound(0.1);
        assert_eq!(b.bind_value("beta", 9.0), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Parameter::None.to_string(), "-");
        assert_eq!(Parameter::free("beta", 1.0).to_string(), "beta");
        assert_eq!(Parameter::free("beta", 2.0).to_string(), "2*beta");
        assert_eq!(Parameter::bound(0.5).to_string(), "0.5000");
    }

    #[test]
    fn from_f64() {
        let p: Parameter = 0.75.into();
        assert_eq!(p, Parameter::Bound(0.75));
    }
}
