//! Error types for circuit construction and manipulation.

use thiserror::Error;

/// Errors produced while building, binding or composing circuits.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum CircuitError {
    /// A qubit index was out of range for the circuit width.
    #[error("qubit index {index} out of range for circuit with {width} qubits")]
    QubitOutOfRange {
        /// The offending index.
        index: usize,
        /// The circuit width.
        width: usize,
    },

    /// A gate was applied to the wrong number of qubits.
    #[error("gate {gate} expects {expected} qubit(s) but {got} were supplied")]
    WrongArity {
        /// Gate name.
        gate: String,
        /// Expected operand count.
        expected: usize,
        /// Supplied operand count.
        got: usize,
    },

    /// The same qubit was used twice in one instruction.
    #[error("duplicate qubit {qubit} in multi-qubit instruction")]
    DuplicateQubit {
        /// The duplicated qubit index.
        qubit: usize,
    },

    /// A parameter required for binding was not supplied.
    #[error("unbound parameter '{name}'")]
    UnboundParameter {
        /// Name of the missing parameter.
        name: String,
    },

    /// A parameterless gate was given a parameter expression (or vice versa).
    #[error("gate {gate} does not take a parameter")]
    UnexpectedParameter {
        /// Gate name.
        gate: String,
    },

    /// A parameterized gate is missing its parameter.
    #[error("gate {gate} requires a parameter")]
    MissingParameter {
        /// Gate name.
        gate: String,
    },

    /// Circuits of mismatched width were composed.
    #[error("cannot compose circuits of width {left} and {right}")]
    WidthMismatch {
        /// Width of the left-hand circuit.
        left: usize,
        /// Width of the right-hand circuit.
        right: usize,
    },
}
