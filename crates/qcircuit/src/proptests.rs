//! Property-based tests for the circuit IR.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::matrix::GateMatrix;
use crate::parameter::Parameter;
use proptest::prelude::*;

fn arb_single_qubit_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::I),
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::T),
        Just(Gate::RX),
        Just(Gate::RY),
        Just(Gate::RZ),
        Just(Gate::P),
    ]
}

fn arb_two_qubit_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::CX),
        Just(Gate::CZ),
        Just(Gate::SWAP),
        Just(Gate::RZZ),
        Just(Gate::CP),
        Just(Gate::RXX),
        Just(Gate::RYY),
    ]
}

/// A random circuit over `n` qubits with `len` instructions and bound angles.
pub fn arb_bound_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    let inst = (
        prop_oneof![
            arb_single_qubit_gate().boxed(),
            arb_two_qubit_gate().boxed()
        ],
        0..n,
        0..n,
        -3.2_f64..3.2,
    );
    proptest::collection::vec(inst, 0..=len).prop_map(move |instrs| {
        let mut c = Circuit::new(n);
        for (gate, q0, q1, theta) in instrs {
            let param = if gate.is_parameterized() {
                Parameter::bound(theta)
            } else {
                Parameter::None
            };
            if gate.arity() == 1 {
                c.push(gate, &[q0], param);
            } else if q0 != q1 {
                c.push(gate, &[q0, q1], param);
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_gate_matrices_are_unitary(gate in prop_oneof![arb_single_qubit_gate(), arb_two_qubit_gate()], theta in -10.0_f64..10.0) {
        let m = GateMatrix::of(gate, theta);
        prop_assert!(m.is_unitary(1e-9));
    }

    #[test]
    fn diagonal_flag_is_consistent_with_matrix(gate in prop_oneof![arb_single_qubit_gate(), arb_two_qubit_gate()], theta in -10.0_f64..10.0) {
        let m = GateMatrix::of(gate, theta);
        prop_assert_eq!(m.diagonal().is_some(), gate.is_diagonal());
    }

    #[test]
    fn depth_never_exceeds_gate_count(c in arb_bound_circuit(5, 30)) {
        prop_assert!(c.depth() <= c.gate_count());
    }

    #[test]
    fn inverse_has_same_length_and_width(c in arb_bound_circuit(4, 20)) {
        let inv = c.inverse().unwrap();
        prop_assert_eq!(inv.len(), c.len());
        prop_assert_eq!(inv.num_qubits(), c.num_qubits());
    }

    #[test]
    fn bind_is_idempotent_on_bound_circuits(c in arb_bound_circuit(4, 20)) {
        // Circuits without free parameters are unchanged by bind().
        let bound = c.bind(&[]).unwrap();
        prop_assert_eq!(bound, c);
    }

    #[test]
    fn dagger_dagger_is_identity_map(gate in prop_oneof![arb_single_qubit_gate(), arb_two_qubit_gate()], theta in -6.3_f64..6.3) {
        let m = GateMatrix::of(gate, theta);
        prop_assert!(m.dagger().dagger().max_abs_diff(&m) < 1e-12);
    }
}
