//! Numeric gate matrices.
//!
//! Both simulator backends need the concrete `2×2` / `4×4` unitary of each
//! gate. [`GateMatrix`] returns them as small fixed-size arrays of
//! `Complex<f64>`; the diagonal-only accessors let the tensor-network backend
//! exploit diagonal gates (see [`crate::Gate::is_diagonal`]).

use crate::gate::Gate;
use num_complex::Complex64;

/// Convenience constructor for a `Complex64`.
#[inline]
pub fn c64(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

/// A concrete gate matrix: either a 2×2 single-qubit matrix or a 4×4
/// two-qubit matrix, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub enum GateMatrix {
    /// Single-qubit 2×2 unitary, row-major.
    One([Complex64; 4]),
    /// Two-qubit 4×4 unitary, row-major, ordering |q1 q0⟩ with the first
    /// operand being the *control* / first tensor factor.
    Two([Complex64; 16]),
}

impl GateMatrix {
    /// Build the matrix of `gate` with rotation angle `theta` (ignored for
    /// parameterless gates).
    pub fn of(gate: Gate, theta: f64) -> GateMatrix {
        let z = c64(0.0, 0.0);
        let o = c64(1.0, 0.0);
        match gate {
            Gate::I => GateMatrix::One([o, z, z, o]),
            Gate::H => {
                let s = 1.0 / 2.0_f64.sqrt();
                GateMatrix::One([c64(s, 0.0), c64(s, 0.0), c64(s, 0.0), c64(-s, 0.0)])
            }
            Gate::X => GateMatrix::One([z, o, o, z]),
            Gate::Y => GateMatrix::One([z, c64(0.0, -1.0), c64(0.0, 1.0), z]),
            Gate::Z => GateMatrix::One([o, z, z, c64(-1.0, 0.0)]),
            Gate::S => GateMatrix::One([o, z, z, c64(0.0, 1.0)]),
            Gate::Sdg => GateMatrix::One([o, z, z, c64(0.0, -1.0)]),
            Gate::T => {
                let p = Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_4);
                GateMatrix::One([o, z, z, p])
            }
            Gate::Tdg => {
                let p = Complex64::from_polar(1.0, -std::f64::consts::FRAC_PI_4);
                GateMatrix::One([o, z, z, p])
            }
            Gate::RX => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                GateMatrix::One([c64(c, 0.0), c64(0.0, -s), c64(0.0, -s), c64(c, 0.0)])
            }
            Gate::RY => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                GateMatrix::One([c64(c, 0.0), c64(-s, 0.0), c64(s, 0.0), c64(c, 0.0)])
            }
            Gate::RZ => {
                let m = Complex64::from_polar(1.0, -theta / 2.0);
                let p = Complex64::from_polar(1.0, theta / 2.0);
                GateMatrix::One([m, z, z, p])
            }
            Gate::P => {
                let p = Complex64::from_polar(1.0, theta);
                GateMatrix::One([o, z, z, p])
            }
            Gate::CX => GateMatrix::Two([
                o, z, z, z, //
                z, o, z, z, //
                z, z, z, o, //
                z, z, o, z,
            ]),
            Gate::CZ => GateMatrix::Two([
                o,
                z,
                z,
                z, //
                z,
                o,
                z,
                z, //
                z,
                z,
                o,
                z, //
                z,
                z,
                z,
                c64(-1.0, 0.0),
            ]),
            Gate::SWAP => GateMatrix::Two([
                o, z, z, z, //
                z, z, o, z, //
                z, o, z, z, //
                z, z, z, o,
            ]),
            Gate::RZZ => {
                let m = Complex64::from_polar(1.0, -theta / 2.0);
                let p = Complex64::from_polar(1.0, theta / 2.0);
                GateMatrix::Two([
                    m, z, z, z, //
                    z, p, z, z, //
                    z, z, p, z, //
                    z, z, z, m,
                ])
            }
            Gate::CP => {
                let p = Complex64::from_polar(1.0, theta);
                GateMatrix::Two([
                    o, z, z, z, //
                    z, o, z, z, //
                    z, z, o, z, //
                    z, z, z, p,
                ])
            }
            Gate::RXX => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                let cc = c64(c, 0.0);
                let is = c64(0.0, -s);
                GateMatrix::Two([
                    cc, z, z, is, //
                    z, cc, is, z, //
                    z, is, cc, z, //
                    is, z, z, cc,
                ])
            }
            Gate::RYY => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                let cc = c64(c, 0.0);
                let is = c64(0.0, -s);
                let nis = c64(0.0, s);
                GateMatrix::Two([
                    cc, z, z, nis, //
                    z, cc, is, z, //
                    z, is, cc, z, //
                    nis, z, z, cc,
                ])
            }
        }
    }

    /// The diagonal entries, if the matrix is diagonal.
    pub fn diagonal(&self) -> Option<Vec<Complex64>> {
        let (dim, data): (usize, &[Complex64]) = match self {
            GateMatrix::One(m) => (2, m),
            GateMatrix::Two(m) => (4, m),
        };
        let mut diag = Vec::with_capacity(dim);
        for r in 0..dim {
            for c in 0..dim {
                let v = data[r * dim + c];
                if r == c {
                    diag.push(v);
                } else if v.norm() > 1e-12 {
                    return None;
                }
            }
        }
        Some(diag)
    }

    /// Matrix dimension (2 or 4).
    pub fn dim(&self) -> usize {
        match self {
            GateMatrix::One(_) => 2,
            GateMatrix::Two(_) => 4,
        }
    }

    /// Row-major data slice.
    pub fn data(&self) -> &[Complex64] {
        match self {
            GateMatrix::One(m) => m,
            GateMatrix::Two(m) => m,
        }
    }

    /// Conjugate transpose of the matrix.
    pub fn dagger(&self) -> GateMatrix {
        match self {
            GateMatrix::One(m) => {
                let mut out = [c64(0.0, 0.0); 4];
                for r in 0..2 {
                    for c in 0..2 {
                        out[c * 2 + r] = m[r * 2 + c].conj();
                    }
                }
                GateMatrix::One(out)
            }
            GateMatrix::Two(m) => {
                let mut out = [c64(0.0, 0.0); 16];
                for r in 0..4 {
                    for c in 0..4 {
                        out[c * 4 + r] = m[r * 4 + c].conj();
                    }
                }
                GateMatrix::Two(out)
            }
        }
    }

    /// Multiply `self * other` (both must have the same dimension).
    pub fn matmul(&self, other: &GateMatrix) -> GateMatrix {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in matmul");
        let n = self.dim();
        let a = self.data();
        let b = other.data();
        let mut out = vec![c64(0.0, 0.0); n * n];
        for r in 0..n {
            for k in 0..n {
                let av = a[r * n + k];
                if av.norm() == 0.0 {
                    continue;
                }
                for c in 0..n {
                    out[r * n + c] += av * b[k * n + c];
                }
            }
        }
        if n == 2 {
            let mut arr = [c64(0.0, 0.0); 4];
            arr.copy_from_slice(&out);
            GateMatrix::One(arr)
        } else {
            let mut arr = [c64(0.0, 0.0); 16];
            arr.copy_from_slice(&out);
            GateMatrix::Two(arr)
        }
    }

    /// Maximum absolute difference to another matrix of the same dimension.
    pub fn max_abs_diff(&self, other: &GateMatrix) -> f64 {
        assert_eq!(self.dim(), other.dim());
        self.data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| (a - b).norm())
            .fold(0.0, f64::max)
    }

    /// Check unitarity: `U† U = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let prod = self.dagger().matmul(self);
        let n = self.dim();
        let mut ok = true;
        for r in 0..n {
            for c in 0..n {
                let expected = if r == c { c64(1.0, 0.0) } else { c64(0.0, 0.0) };
                if (prod.data()[r * n + c] - expected).norm() > tol {
                    ok = false;
                }
            }
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn all_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::RX,
            Gate::RY,
            Gate::RZ,
            Gate::P,
            Gate::CX,
            Gate::CZ,
            Gate::SWAP,
            Gate::RZZ,
            Gate::CP,
            Gate::RXX,
            Gate::RYY,
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in all_gates() {
            for theta in [0.0, 0.3, 1.0, PI, 2.5 * PI] {
                let m = GateMatrix::of(g, theta);
                assert!(m.is_unitary(1e-10), "{g} with theta={theta} not unitary");
            }
        }
    }

    #[test]
    fn diagonal_flag_matches_matrix() {
        for g in all_gates() {
            let m = GateMatrix::of(g, 0.7);
            assert_eq!(
                m.diagonal().is_some(),
                g.is_diagonal(),
                "diagonal mismatch for {g}"
            );
        }
    }

    #[test]
    fn rx_at_pi_is_minus_i_x() {
        let rx = GateMatrix::of(Gate::RX, PI);
        let x = GateMatrix::of(Gate::X, 0.0);
        // RX(π) = -i X, so RX(π) * (i) == X elementwise.
        let scaled: Vec<_> = rx.data().iter().map(|v| v * c64(0.0, 1.0)).collect();
        for (a, b) in scaled.iter().zip(x.data()) {
            assert!((a - b).norm() < 1e-12);
        }
    }

    #[test]
    fn rz_is_diagonal_with_expected_phases() {
        let theta = 0.42;
        let m = GateMatrix::of(Gate::RZ, theta);
        let d = m.diagonal().unwrap();
        assert!((d[0] - Complex64::from_polar(1.0, -theta / 2.0)).norm() < 1e-12);
        assert!((d[1] - Complex64::from_polar(1.0, theta / 2.0)).norm() < 1e-12);
    }

    #[test]
    fn rzz_diagonal_signs() {
        let theta = 1.1;
        let m = GateMatrix::of(Gate::RZZ, theta);
        let d = m.diagonal().unwrap();
        let minus = Complex64::from_polar(1.0, -theta / 2.0);
        let plus = Complex64::from_polar(1.0, theta / 2.0);
        assert!((d[0] - minus).norm() < 1e-12); // |00>
        assert!((d[1] - plus).norm() < 1e-12); // |01>
        assert!((d[2] - plus).norm() < 1e-12); // |10>
        assert!((d[3] - minus).norm() < 1e-12); // |11>
    }

    #[test]
    fn cx_permutes_basis() {
        let m = GateMatrix::of(Gate::CX, 0.0);
        let d = m.data();
        // |10> -> |11>, |11> -> |10>  (first operand = control = most significant)
        assert!((d[2 * 4 + 3] - c64(1.0, 0.0)).norm() < 1e-12);
        assert!((d[3 * 4 + 2] - c64(1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn dagger_of_s_is_sdg() {
        let s = GateMatrix::of(Gate::S, 0.0);
        let sdg = GateMatrix::of(Gate::Sdg, 0.0);
        assert!(s.dagger().max_abs_diff(&sdg) < 1e-12);
    }

    #[test]
    fn matmul_identity() {
        let h = GateMatrix::of(Gate::H, 0.0);
        let id = GateMatrix::of(Gate::I, 0.0);
        assert!(h.matmul(&id).max_abs_diff(&h) < 1e-12);
        // H * H = I
        assert!(h.matmul(&h).max_abs_diff(&id) < 1e-12);
    }
}
