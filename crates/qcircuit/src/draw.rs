//! ASCII circuit drawing, used to render the discovered mixer circuit the way
//! the paper presents it in Fig. 6.

use crate::circuit::Circuit;
use crate::parameter::Parameter;

/// Render a circuit as ASCII art, one line per qubit.
///
/// Single-qubit gates are drawn as boxed labels on their wire; two-qubit gates
/// are drawn with a control dot `*` and the gate label on the target wire, in
/// their own column.
///
/// ```
/// use qcircuit::{Circuit, Parameter, Gate, draw_ascii};
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.push(Gate::RX, &[1], Parameter::free("beta", 2.0));
/// let art = draw_ascii(&c);
/// assert!(art.contains("H"));
/// assert!(art.contains("RX(2*beta)"));
/// ```
pub fn draw_ascii(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }
    // Column-by-column greedy packing: place each instruction in the first
    // column where all of its qubits are free.
    let mut columns: Vec<Vec<Option<String>>> = Vec::new();
    let mut qubit_frontier = vec![0usize; n];

    for inst in circuit.instructions() {
        let col_idx = inst
            .qubits
            .iter()
            .map(|&q| qubit_frontier[q])
            .max()
            .unwrap_or(0);
        while columns.len() <= col_idx {
            columns.push(vec![None; n]);
        }
        let label = instruction_label(inst.gate.mnemonic(), &inst.parameter);
        if inst.qubits.len() == 1 {
            columns[col_idx][inst.qubits[0]] = Some(label);
        } else {
            // Control dot on the first operand, label on the second.
            columns[col_idx][inst.qubits[0]] = Some("*".to_string());
            columns[col_idx][inst.qubits[1]] = Some(label);
        }
        for &q in &inst.qubits {
            qubit_frontier[q] = col_idx + 1;
        }
    }

    // Pad every column to a uniform width.
    let col_widths: Vec<usize> = columns
        .iter()
        .map(|col| {
            col.iter()
                .filter_map(|c| c.as_ref().map(|s| s.len()))
                .max()
                .unwrap_or(1)
        })
        .collect();

    let mut out = String::new();
    for q in 0..n {
        out.push_str(&format!("q{q:<2}: "));
        for (ci, col) in columns.iter().enumerate() {
            let w = col_widths[ci];
            match &col[q] {
                Some(label) => {
                    out.push_str(&format!("-[{label:^w$}]-", w = w));
                }
                None => {
                    out.push_str(&"-".repeat(w + 4));
                }
            }
        }
        out.push('\n');
    }
    out
}

fn instruction_label(mnemonic: &str, parameter: &Parameter) -> String {
    match parameter {
        Parameter::None => mnemonic.to_uppercase(),
        p => format!("{}({})", mnemonic.to_uppercase(), p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn empty_circuit_draws_nothing() {
        let c = Circuit::new(0);
        assert_eq!(draw_ascii(&c), "");
    }

    #[test]
    fn every_qubit_gets_a_line() {
        let mut c = Circuit::new(4);
        c.h_layer();
        let art = draw_ascii(&c);
        assert_eq!(art.lines().count(), 4);
        for q in 0..4 {
            assert!(art.contains(&format!("q{q}")), "missing wire for qubit {q}");
        }
    }

    #[test]
    fn shared_beta_renders_like_fig6() {
        // Reproduce the structure of Fig. 6: RX(2β) then RY(2β) on each qubit.
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::RX, &[q], Parameter::free("beta", 2.0));
        }
        for q in 0..3 {
            c.push(Gate::RY, &[q], Parameter::free("beta", 2.0));
        }
        let art = draw_ascii(&c);
        assert!(art.contains("RX(2*beta)"));
        assert!(art.contains("RY(2*beta)"));
    }

    #[test]
    fn two_qubit_gate_draws_control_dot() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let art = draw_ascii(&c);
        assert!(art.contains('*'));
        assert!(art.contains("CX"));
    }

    #[test]
    fn columns_pack_parallel_gates() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let art = draw_ascii(&c);
        // Both H gates share a column, so each line has exactly one box.
        for line in art.lines() {
            assert_eq!(line.matches('[').count(), 1);
        }
    }
}
