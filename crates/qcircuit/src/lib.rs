//! # qcircuit — quantum circuit IR and gate library
//!
//! This crate is the "Qiskit substitute" of the QArchSearch reproduction: a
//! small, dependency-light intermediate representation for parameterized
//! quantum circuits. The QArchSearch **QBuilder** module turns encoded circuit
//! descriptions into [`Circuit`] values, which are then executed by either the
//! dense state-vector backend (`statevec`) or the tensor-network backend
//! (`tensornet`).
//!
//! ## Design
//!
//! * [`Gate`] enumerates the gate set used by the paper: single-qubit Clifford
//!   and rotation gates (`H`, `X`, `Y`, `Z`, `S`, `T`, `RX`, `RY`, `RZ`, phase
//!   `P`) plus the two-qubit entanglers required by the QAOA cost layer
//!   (`CX`, `CZ`, `RZZ`, `SWAP`).
//! * Rotation angles are [`Parameter`] values: either a bound constant or a
//!   named free parameter with an optional multiplier (so the searched mixers
//!   can share one `beta` across all qubits exactly as in Fig. 6 of the
//!   paper, `RX(2β)`/`RY(2β)`).
//! * [`Circuit`] is an ordered list of [`Instruction`]s with convenience
//!   constructors, composition, parameter binding, unitary/matrix helpers for
//!   small gate counts, and an ASCII drawer used to reproduce Fig. 6.
//!
//! ## Example
//!
//! ```
//! use qcircuit::{Circuit, Gate, Parameter};
//!
//! let mut c = Circuit::new(3);
//! c.h(0).h(1).h(2);
//! c.push(Gate::RZZ, &[0, 1], Parameter::free("gamma", 1.0));
//! c.push(Gate::RX, &[0], Parameter::free("beta", 2.0));
//! assert_eq!(c.num_qubits(), 3);
//! assert_eq!(c.free_parameters(), vec!["beta".to_string(), "gamma".to_string()]);
//! let bound = c.bind(&[("gamma", 0.3), ("beta", 0.7)]).unwrap();
//! assert!(bound.free_parameters().is_empty());
//! ```

pub mod circuit;
pub mod draw;
pub mod error;
pub mod gate;
pub mod matrix;
pub mod optimize;
pub mod parameter;
pub mod qasm;

pub use circuit::{Circuit, Instruction};
pub use draw::draw_ascii;
pub use error::CircuitError;
pub use gate::Gate;
pub use matrix::{c64, GateMatrix};
pub use parameter::Parameter;

#[cfg(test)]
mod proptests;
