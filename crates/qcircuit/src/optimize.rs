//! Lightweight peephole circuit optimization.
//!
//! The architecture search produces many near-duplicate candidates (e.g.
//! `H·H` or `RX·RX` patterns from the exhaustive enumeration). These passes
//! normalize such circuits before simulation: they cancel adjacent
//! self-inverse gates, merge adjacent rotations about the same axis, and drop
//! identity gates. They are semantics-preserving up to global phase, which the
//! Max-Cut expectation value cannot observe.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;
use crate::parameter::Parameter;

/// Result of an optimization pass: the rewritten circuit and how many gates
/// were removed.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReport {
    /// The optimized circuit.
    pub circuit: Circuit,
    /// Gates removed across all passes.
    pub removed: usize,
}

/// Apply all passes repeatedly until a fixed point is reached.
pub fn optimize(circuit: &Circuit) -> OptimizeReport {
    let mut current = circuit.clone();
    let mut removed_total = 0;
    loop {
        let before = current.len();
        current = drop_identities(&current);
        current = cancel_adjacent_self_inverse(&current);
        current = merge_adjacent_rotations(&current);
        let after = current.len();
        removed_total += before - after;
        if after == before {
            return OptimizeReport {
                circuit: current,
                removed: removed_total,
            };
        }
    }
}

/// Remove explicit identity gates.
pub fn drop_identities(circuit: &Circuit) -> Circuit {
    rebuild(circuit, |insts| {
        insts
            .iter()
            .filter(|i| i.gate != Gate::I)
            .cloned()
            .collect()
    })
}

/// Cancel adjacent pairs of the same self-inverse gate acting on the same
/// qubits (e.g. `H q0; H q0` or `CX q0,q1; CX q0,q1`), provided no other gate
/// on those qubits sits between them.
pub fn cancel_adjacent_self_inverse(circuit: &Circuit) -> Circuit {
    rebuild(circuit, |insts| {
        let mut out: Vec<Instruction> = Vec::with_capacity(insts.len());
        for inst in insts {
            let cancels = out
                .last()
                .map(|prev| {
                    prev.gate == inst.gate
                        && prev.qubits == inst.qubits
                        && inst.gate.is_self_inverse()
                        && inst.parameter.is_none()
                })
                .unwrap_or(false);
            if cancels {
                out.pop();
            } else {
                out.push(inst.clone());
            }
        }
        out
    })
}

/// Merge adjacent rotations of the same kind on the same qubits when both
/// angles are bound (`RX(a); RX(b)` → `RX(a + b)`); a merged rotation whose
/// total angle is (numerically) zero is dropped.
pub fn merge_adjacent_rotations(circuit: &Circuit) -> Circuit {
    rebuild(circuit, |insts| {
        let mut out: Vec<Instruction> = Vec::with_capacity(insts.len());
        for inst in insts {
            let mergeable = matches!(
                inst.gate,
                Gate::RX
                    | Gate::RY
                    | Gate::RZ
                    | Gate::P
                    | Gate::RZZ
                    | Gate::CP
                    | Gate::RXX
                    | Gate::RYY
            );
            let merged = match (out.last(), mergeable) {
                (Some(prev), true) if prev.gate == inst.gate && prev.qubits == inst.qubits => {
                    match (prev.parameter.value(), inst.parameter.value()) {
                        (Some(a), Some(b)) => Some(a + b),
                        _ => None,
                    }
                }
                _ => None,
            };
            match merged {
                Some(total) => {
                    out.pop();
                    if total.abs() > 1e-12 {
                        out.push(Instruction {
                            gate: inst.gate,
                            qubits: inst.qubits.clone(),
                            parameter: Parameter::Bound(total),
                        });
                    }
                }
                None => out.push(inst.clone()),
            }
        }
        out
    })
}

/// Rebuild a circuit from a transformed instruction list.
fn rebuild(circuit: &Circuit, transform: impl Fn(&[Instruction]) -> Vec<Instruction>) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for inst in transform(circuit.instructions()) {
        out.push(inst.gate, &inst.qubits, inst.parameter);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_dropped() {
        let mut c = Circuit::new(2);
        c.push(Gate::I, &[0], Parameter::None);
        c.h(1);
        c.push(Gate::I, &[1], Parameter::None);
        let r = optimize(&c);
        assert_eq!(r.circuit.len(), 1);
        assert_eq!(r.removed, 2);
    }

    #[test]
    fn adjacent_hadamards_cancel() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let r = optimize(&c);
        assert!(r.circuit.is_empty());
        assert_eq!(r.removed, 2);
    }

    #[test]
    fn adjacent_cx_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).h(0);
        let r = optimize(&c);
        assert_eq!(r.circuit.len(), 1);
        assert_eq!(r.circuit.instructions()[0].gate, Gate::H);
    }

    #[test]
    fn cx_with_different_operands_does_not_cancel() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 0).cx(1, 2);
        let r = optimize(&c);
        assert_eq!(r.circuit.len(), 3);
    }

    #[test]
    fn adjacent_rotations_merge() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.3).rx(0, 0.5);
        let r = optimize(&c);
        assert_eq!(r.circuit.len(), 1);
        assert_eq!(r.circuit.instructions()[0].parameter, Parameter::Bound(0.8));
    }

    #[test]
    fn rotations_summing_to_zero_disappear() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.7).rz(0, -0.7).h(0);
        let r = optimize(&c);
        assert_eq!(r.circuit.len(), 1);
        assert_eq!(r.circuit.instructions()[0].gate, Gate::H);
    }

    #[test]
    fn free_parameters_are_left_untouched() {
        let mut c = Circuit::new(1);
        c.push(Gate::RX, &[0], Parameter::free("beta", 2.0));
        c.push(Gate::RX, &[0], Parameter::free("beta", 2.0));
        let r = optimize(&c);
        // Symbolic rotations are not merged (the pass only handles bound angles).
        assert_eq!(r.circuit.len(), 2);
        assert_eq!(r.removed, 0);
    }

    #[test]
    fn cascading_cancellations_reach_a_fixed_point() {
        // X RX(0.4) RX(-0.4) X  → X X → (empty)
        let mut c = Circuit::new(1);
        c.x(0).rx(0, 0.4).rx(0, -0.4).x(0);
        let r = optimize(&c);
        assert!(r.circuit.is_empty(), "left {:?}", r.circuit.instructions());
        assert_eq!(r.removed, 4);
    }

    #[test]
    fn optimization_preserves_rzz_semantics() {
        let mut c = Circuit::new(2);
        c.rzz(0, 1, 0.25).rzz(0, 1, 0.5);
        let r = optimize(&c);
        assert_eq!(r.circuit.len(), 1);
        assert_eq!(
            r.circuit.instructions()[0].parameter,
            Parameter::Bound(0.75)
        );
    }

    #[test]
    fn unrelated_gates_are_not_reordered() {
        let mut c = Circuit::new(2);
        c.h(0).rx(1, 0.2).h(0);
        // The two H gates are *not* adjacent in instruction order w.r.t. the
        // intervening RX on another qubit; the simple peephole keeps them.
        let r = cancel_adjacent_self_inverse(&c);
        assert_eq!(r.len(), 3);
    }
}
