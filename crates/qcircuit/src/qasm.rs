//! Minimal OpenQASM-2-style text export.
//!
//! QArchSearch's original QBuilder emits Qiskit circuits; the closest portable
//! artifact is an OpenQASM dump. Only the gate set of this crate is supported,
//! which is enough to inspect or export searched mixers and full QAOA ansätze.

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::parameter::Parameter;

/// Serialize a fully-bound circuit to an OpenQASM-2-like string.
///
/// Free parameters are rejected (bind them first) because QASM 2 has no
/// symbolic parameters.
pub fn to_qasm(circuit: &Circuit) -> Result<String, CircuitError> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for inst in circuit.instructions() {
        let args: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
        let args = args.join(",");
        let line = match (&inst.gate, &inst.parameter) {
            (g, Parameter::None) => format!("{} {};", qasm_name(*g), args),
            (g, Parameter::Bound(v)) => format!("{}({}) {};", qasm_name(*g), v, args),
            (_, Parameter::Free { name, .. }) => {
                return Err(CircuitError::UnboundParameter { name: name.clone() })
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

fn qasm_name(gate: Gate) -> &'static str {
    match gate {
        Gate::I => "id",
        Gate::H => "h",
        Gate::X => "x",
        Gate::Y => "y",
        Gate::Z => "z",
        Gate::S => "s",
        Gate::Sdg => "sdg",
        Gate::T => "t",
        Gate::Tdg => "tdg",
        Gate::RX => "rx",
        Gate::RY => "ry",
        Gate::RZ => "rz",
        Gate::P => "u1",
        Gate::CX => "cx",
        Gate::CZ => "cz",
        Gate::SWAP => "swap",
        Gate::RZZ => "rzz",
        Gate::CP => "cu1",
        Gate::RXX => "rxx",
        Gate::RYY => "ryy",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qasm_header_and_register() {
        let c = Circuit::new(3);
        let q = to_qasm(&c).unwrap();
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
    }

    #[test]
    fn bound_gates_serialize() {
        let mut c = Circuit::new(2);
        c.h(0).rx(1, 0.5).cx(0, 1).rzz(0, 1, 1.5);
        let q = to_qasm(&c).unwrap();
        assert!(q.contains("h q[0];"));
        assert!(q.contains("rx(0.5) q[1];"));
        assert!(q.contains("cx q[0],q[1];"));
        assert!(q.contains("rzz(1.5) q[0],q[1];"));
    }

    #[test]
    fn free_parameters_are_rejected() {
        let mut c = Circuit::new(1);
        c.push(Gate::RX, &[0], Parameter::free("beta", 1.0));
        assert!(matches!(
            to_qasm(&c),
            Err(CircuitError::UnboundParameter { .. })
        ));
    }
}
