//! Structure-of-arrays amplitude buffer for batched circuit execution.
//!
//! [`BatchStateVector`] holds `B` dense states in two f64 planes (real and
//! imaginary), each interleaved amplitude-major × batch-minor: element `b` of
//! amplitude `z` lives at `re[z * batch + b]` / `im[z * batch + b]`. That
//! layout buys two things over `B` independent `Vec<Complex64>` states:
//!
//! * every kernel streams `B` states per basis-index visit — one angle-table
//!   lookup (or one pair/quad index computation) amortizes over the whole
//!   batch;
//! * the inner `b` loop reads and writes contiguous pure-f64 runs with no
//!   real/imaginary interleaving, so the explicit arithmetic in the kernels
//!   below autovectorizes across the batch lane (interleaved `Complex64`
//!   forces shuffle-heavy codegen that pins throughput at scalar FP rates).
//!
//! On top of the layout, [`BatchStateVector::apply_single_qubit_run_batch`]
//! executes a whole *run* of single-qubit gates (e.g. one QAOA mixer layer)
//! in a single cache-blocked sweep: the buffer is walked once in L2-sized
//! blocks and every low-stride gate of the run is applied while a block is
//! hot, instead of one full-memory pass per gate.
//!
//! **Bit-identity contract.** Every kernel performs, per batch element, the
//! exact same sequence of f64 operations as the scalar [`StateVector`]
//! kernels in [`crate::state`] — identical expression trees (the explicit
//! real/imaginary forms below are the textual expansion of `num_complex`'s
//! `Mul`/`Add`), identical per-amplitude gate order (cache blocking reorders
//! *which block* is touched first, never the op order any single amplitude
//! sees), and the same thread-chunking decisions (batch elements are
//! independent, so chunk boundaries in the amplitude dimension cannot change
//! any element's arithmetic; the diagonal-expectation reduction mirrors the
//! scalar partial-sum structure term for term). A batch run therefore
//! produces bit-for-bit the same amplitudes and energies as `B` scalar runs,
//! for any batch size and any thread count.

use crate::error::SimulatorError;
use crate::parallel_threshold_qubits;
use crate::state::{par_index_ranges, parallel_chunk_size, StateVector, MAX_DENSE_QUBITS};
use num_complex::Complex64;
use rayon::prelude::*;
use std::ops::Range;

/// Per-execution scratch owned by the batch buffer so repeated
/// [`crate::CompiledProgram::execute_batch_into`] calls are allocation-free
/// once warm: per-element gate matrices, the distinct-angle phase-factor
/// planes, and the staged SoA gate coefficients for fused runs. Taken out of
/// the buffer during execution (to sidestep aliasing with the amplitude
/// data) and restored afterwards.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchExecScratch {
    /// One 2×2 matrix per batch element for single-qubit ops (for fused
    /// runs: gate-major × batch-minor, `ngates * batch` entries).
    pub(crate) mat1: Vec<[Complex64; 4]>,
    /// One 4×4 matrix per batch element for two-qubit ops.
    pub(crate) mat2: Vec<[Complex64; 16]>,
    /// Phase factors, distinct-value-major × batch-minor:
    /// `factors_re/im[v * batch + b] = e^{i·scale_b·values[v]}`.
    pub(crate) factors_re: Vec<f64>,
    pub(crate) factors_im: Vec<f64>,
    /// Targets of the single-qubit gates in the current fused run.
    pub(crate) run_targets: Vec<usize>,
    /// SoA coefficient staging for fused runs.
    pub(crate) coef: Vec<f64>,
}

/// Raw f64 plane pointer for the scoped-disjoint-index kernels (same
/// pattern as `state::AmpPtr`).
#[derive(Clone, Copy)]
struct PlanePtr(*mut f64);

impl PlanePtr {
    fn get(self) -> *mut f64 {
        self.0
    }
}

// SAFETY: dereferenced only at indices derived from disjoint base-index
// ranges (see `apply_two_qubit_batch`); distinct ranges address disjoint
// rows, so concurrent workers never alias.
unsafe impl Send for PlanePtr {}
unsafe impl Sync for PlanePtr {}

/// Cache block, in amplitudes, for fused single-qubit runs: the largest
/// power of two keeping one block of both planes within ~256 KiB, so a run
/// of low-stride gates replays against L2 instead of streaming memory once
/// per gate.
pub(crate) fn run_block_amps(batch: usize) -> usize {
    let amps = ((1usize << 18) / (16 * batch.max(1))).max(2);
    1usize << (usize::BITS - 1 - amps.leading_zeros())
}

/// Apply one staged single-qubit gate to a contiguous span of the planes.
///
/// `c` holds the 2×2 matrix entry-major × batch-minor (`c[j*batch + b]` =
/// entry `j/2`'s re (even `j`) or im (odd `j`) for element `b`). The span
/// length must be a multiple of `2 * target_stride * batch`. The expression
/// tree per element is exactly `m[0]*x + m[1]*y` / `m[2]*x + m[3]*y` over
/// `Complex64` — same multiplies, same subtraction/addition order — so the
/// result is bit-identical to the scalar kernel.
#[inline]
fn apply_one_q_span(re: &mut [f64], im: &mut [f64], c: &[f64], batch: usize, target_stride: usize) {
    // Monomorphize the power-of-two batch widths `preferred_batch_tile`
    // produces: a compile-time trip count lets the inner loop unroll and
    // vectorize (the arithmetic itself is unchanged, so results are
    // bit-identical whichever body runs).
    match batch {
        2 => apply_one_q_span_b::<2>(re, im, c, target_stride),
        4 => apply_one_q_span_b::<4>(re, im, c, target_stride),
        8 => apply_one_q_span_b::<8>(re, im, c, target_stride),
        16 => apply_one_q_span_b::<16>(re, im, c, target_stride),
        32 => apply_one_q_span_b::<32>(re, im, c, target_stride),
        _ => apply_one_q_span_dyn(re, im, c, batch, target_stride),
    }
}

#[inline]
fn apply_one_q_span_b<const B: usize>(
    re: &mut [f64],
    im: &mut [f64],
    c: &[f64],
    target_stride: usize,
) {
    let mut cc = [[0.0f64; B]; 8];
    for (j, row) in cc.iter_mut().enumerate() {
        row.copy_from_slice(&c[j * B..(j + 1) * B]);
    }
    let row_stride = target_stride * B;
    let row_block = 2 * row_stride;
    for (re_pairs, im_pairs) in re
        .chunks_exact_mut(row_block)
        .zip(im.chunks_exact_mut(row_block))
    {
        let (lo_re, hi_re) = re_pairs.split_at_mut(row_stride);
        let (lo_im, hi_im) = im_pairs.split_at_mut(row_stride);
        for (((lo_re_row, hi_re_row), lo_im_row), hi_im_row) in lo_re
            .chunks_exact_mut(B)
            .zip(hi_re.chunks_exact_mut(B))
            .zip(lo_im.chunks_exact_mut(B))
            .zip(hi_im.chunks_exact_mut(B))
        {
            let lo_re_row: &mut [f64; B] = lo_re_row.try_into().unwrap();
            let hi_re_row: &mut [f64; B] = hi_re_row.try_into().unwrap();
            let lo_im_row: &mut [f64; B] = lo_im_row.try_into().unwrap();
            let hi_im_row: &mut [f64; B] = hi_im_row.try_into().unwrap();
            for b in 0..B {
                let xre = lo_re_row[b];
                let xim = lo_im_row[b];
                let yre = hi_re_row[b];
                let yim = hi_im_row[b];
                lo_re_row[b] =
                    (cc[0][b] * xre - cc[1][b] * xim) + (cc[2][b] * yre - cc[3][b] * yim);
                lo_im_row[b] =
                    (cc[0][b] * xim + cc[1][b] * xre) + (cc[2][b] * yim + cc[3][b] * yre);
                hi_re_row[b] =
                    (cc[4][b] * xre - cc[5][b] * xim) + (cc[6][b] * yre - cc[7][b] * yim);
                hi_im_row[b] =
                    (cc[4][b] * xim + cc[5][b] * xre) + (cc[6][b] * yim + cc[7][b] * yre);
            }
        }
    }
}

#[inline]
fn apply_one_q_span_dyn(
    re: &mut [f64],
    im: &mut [f64],
    c: &[f64],
    batch: usize,
    target_stride: usize,
) {
    let row_stride = target_stride * batch;
    let row_block = 2 * row_stride;
    for (re_pairs, im_pairs) in re
        .chunks_exact_mut(row_block)
        .zip(im.chunks_exact_mut(row_block))
    {
        let (lo_re, hi_re) = re_pairs.split_at_mut(row_stride);
        let (lo_im, hi_im) = im_pairs.split_at_mut(row_stride);
        for (((lo_re_row, hi_re_row), lo_im_row), hi_im_row) in lo_re
            .chunks_exact_mut(batch)
            .zip(hi_re.chunks_exact_mut(batch))
            .zip(lo_im.chunks_exact_mut(batch))
            .zip(hi_im.chunks_exact_mut(batch))
        {
            for b in 0..batch {
                let xre = lo_re_row[b];
                let xim = lo_im_row[b];
                let yre = hi_re_row[b];
                let yim = hi_im_row[b];
                lo_re_row[b] = (c[b] * xre - c[batch + b] * xim)
                    + (c[2 * batch + b] * yre - c[3 * batch + b] * yim);
                lo_im_row[b] = (c[b] * xim + c[batch + b] * xre)
                    + (c[2 * batch + b] * yim + c[3 * batch + b] * yre);
                hi_re_row[b] = (c[4 * batch + b] * xre - c[5 * batch + b] * xim)
                    + (c[6 * batch + b] * yre - c[7 * batch + b] * yim);
                hi_im_row[b] = (c[4 * batch + b] * xim + c[5 * batch + b] * xre)
                    + (c[6 * batch + b] * yim + c[7 * batch + b] * yre);
            }
        }
    }
}

/// Stage per-element 2×2 matrices entry-major × batch-minor into `out[at..]`.
fn stage_one_q_coeffs(ms: &[[Complex64; 4]], batch: usize, out: &mut [f64]) {
    for (b, m) in ms.iter().enumerate() {
        for (j, entry) in m.iter().enumerate() {
            out[2 * j * batch + b] = entry.re;
            out[(2 * j + 1) * batch + b] = entry.im;
        }
    }
}

/// `B` dense `2^n`-amplitude states in one structure-of-arrays buffer.
#[derive(Debug, Clone)]
pub struct BatchStateVector {
    num_qubits: usize,
    batch: usize,
    /// Real plane, amplitude-major × batch-minor: `re[z * batch + b]`.
    re: Vec<f64>,
    /// Imaginary plane, same layout.
    im: Vec<f64>,
    scratch: BatchExecScratch,
}

impl BatchStateVector {
    /// `B` copies of the all-zeros state `|0...0⟩`.
    pub fn zero_states(num_qubits: usize, batch: usize) -> Result<Self, SimulatorError> {
        assert!(batch >= 1, "batch size must be at least 1");
        if num_qubits > MAX_DENSE_QUBITS {
            return Err(SimulatorError::TooManyQubits {
                num_qubits,
                max: MAX_DENSE_QUBITS,
            });
        }
        let dim = 1usize << num_qubits;
        let mut out = BatchStateVector {
            num_qubits,
            batch,
            re: vec![0.0; dim * batch],
            im: vec![0.0; dim * batch],
            scratch: BatchExecScratch::default(),
        };
        out.reset_zero();
        Ok(out)
    }

    /// Register width shared by every element.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of states in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Change the batch size in place, keeping the allocation when capacity
    /// suffices (amplitudes are left unspecified — callers reset before
    /// executing). Lets one buffer serve varying tile sizes without
    /// reallocating every call.
    pub fn resize_batch(&mut self, batch: usize) {
        assert!(batch >= 1, "batch size must be at least 1");
        let dim = 1usize << self.num_qubits;
        self.batch = batch;
        self.re.resize(dim * batch, 0.0);
        self.im.resize(dim * batch, 0.0);
    }

    /// Reset every element to `|0...0⟩` in place.
    pub fn reset_zero(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[..self.batch].fill(1.0);
    }

    /// Reset every element to the uniform superposition `|+⟩^{⊗n}` in place.
    /// The fill value depends only on the dimension, so it is bit-identical
    /// to [`StateVector::reset_plus`].
    pub fn reset_plus(&mut self) {
        let dim = 1usize << self.num_qubits;
        self.re.fill(1.0 / (dim as f64).sqrt());
        self.im.fill(0.0);
    }

    /// Extract element `b` as a standalone [`StateVector`] (gather copy).
    pub fn state(&self, b: usize) -> StateVector {
        assert!(b < self.batch, "batch element {b} out of range");
        let dim = 1usize << self.num_qubits;
        let amps: Vec<Complex64> = (0..dim)
            .map(|z| Complex64::new(self.re[z * self.batch + b], self.im[z * self.batch + b]))
            .collect();
        StateVector::from_amplitudes(amps).expect("2^n amplitudes")
    }

    pub(crate) fn take_exec_scratch(&mut self) -> BatchExecScratch {
        std::mem::take(&mut self.scratch)
    }

    pub(crate) fn restore_exec_scratch(&mut self, scratch: BatchExecScratch) {
        self.scratch = scratch;
    }

    /// Apply a per-element 2×2 matrix (`ms[b]` to element `b`) to qubit
    /// `target` of every state. Same pair-walking structure as
    /// [`StateVector::apply_single_qubit`], with each amplitude pair widened
    /// to a contiguous row of `batch` elements.
    pub(crate) fn apply_single_qubit_batch(&mut self, ms: &[[Complex64; 4]], target: usize) {
        assert_eq!(ms.len(), self.batch, "one matrix per batch element");
        assert!(
            target < self.num_qubits,
            "qubit {target} out of range for a {}-qubit state",
            self.num_qubits
        );
        let stride = 1usize << target;
        let block = 2 * stride;
        let batch = self.batch;

        // Stack staging covers every tile `crate::preferred_batch_tile`
        // hands out; oversized custom batches pay one scratch-free Vec.
        const SOA_MAX: usize = 32;
        let mut stack = [0.0f64; 8 * SOA_MAX];
        let mut heap;
        let c: &mut [f64] = if batch <= SOA_MAX {
            &mut stack[..8 * batch]
        } else {
            heap = vec![0.0; 8 * batch];
            &mut heap
        };
        stage_one_q_coeffs(ms, batch, c);
        let c: &[f64] = c;

        let work = |(re_chunk, im_chunk): (&mut [f64], &mut [f64])| {
            apply_one_q_span(re_chunk, im_chunk, c, batch, stride)
        };

        if self.num_qubits >= parallel_threshold_qubits() {
            let dim = 1usize << self.num_qubits;
            let chunk_size = parallel_chunk_size(dim, block) * batch;
            self.re
                .par_chunks_mut(chunk_size)
                .zip(self.im.par_chunks_mut(chunk_size))
                .for_each(work);
        } else {
            work((&mut self.re, &mut self.im));
        }
    }

    /// Apply a *run* of single-qubit gates — gate `g` with target
    /// `targets[g]` and per-element matrices `ms[g*batch .. (g+1)*batch]` —
    /// in one cache-blocked sweep: the planes are walked once in
    /// `block_amps`-amplitude blocks and every gate of the run is applied to
    /// a block while it is cache-hot.
    ///
    /// Gates are applied in run order within each block, and every gate's
    /// pair stride must fit the block (`2 << target <= block_amps`, checked),
    /// so each amplitude sees exactly the same op sequence as `targets.len()`
    /// full-buffer passes — bit-identical, just with ~1/len the memory
    /// traffic. `coef` is caller-provided staging (reused across calls).
    pub(crate) fn apply_single_qubit_run_batch(
        &mut self,
        targets: &[usize],
        ms: &[[Complex64; 4]],
        block_amps: usize,
        coef: &mut Vec<f64>,
    ) {
        let batch = self.batch;
        let ngates = targets.len();
        assert_eq!(
            ms.len(),
            ngates * batch,
            "one matrix per gate per batch element"
        );
        assert!(
            block_amps.is_power_of_two(),
            "run block must be a power of two"
        );
        for &t in targets {
            assert!(
                t < self.num_qubits,
                "qubit {t} out of range for a {}-qubit state",
                self.num_qubits
            );
            assert!(
                (2usize << t) <= block_amps,
                "gate stride 2^{t} exceeds the {block_amps}-amplitude run block"
            );
        }

        coef.clear();
        coef.resize(ngates * 8 * batch, 0.0);
        for (g, gm) in ms.chunks_exact(batch).enumerate() {
            stage_one_q_coeffs(gm, batch, &mut coef[g * 8 * batch..(g + 1) * 8 * batch]);
        }
        let coef: &[f64] = coef;
        let block_elems = (block_amps * batch).min(self.re.len());

        let work = |(re_block, im_block): (&mut [f64], &mut [f64])| {
            for (g, &t) in targets.iter().enumerate() {
                let c = &coef[g * 8 * batch..(g + 1) * 8 * batch];
                apply_one_q_span(re_block, im_block, c, batch, 1usize << t);
            }
        };

        if self.num_qubits >= parallel_threshold_qubits() {
            self.re
                .par_chunks_mut(block_elems)
                .zip(self.im.par_chunks_mut(block_elems))
                .for_each(work);
        } else {
            for pair in self
                .re
                .chunks_mut(block_elems)
                .zip(self.im.chunks_mut(block_elems))
            {
                work(pair);
            }
        }
    }

    /// Apply a per-element 4×4 matrix to the ordered pair `(q1, q0)` of every
    /// state — the batched twin of [`StateVector::apply_two_qubit`], same
    /// bit-interleaved base-index enumeration, same `Complex64` arithmetic.
    pub(crate) fn apply_two_qubit_batch(&mut self, ms: &[[Complex64; 16]], q1: usize, q0: usize) {
        assert_eq!(ms.len(), self.batch, "one matrix per batch element");
        assert!(q1 != q0, "two-qubit gate needs distinct operands, got {q1}");
        assert!(
            q1 < self.num_qubits && q0 < self.num_qubits,
            "qubits ({q1}, {q0}) out of range for a {}-qubit state",
            self.num_qubits
        );
        let bit1 = 1usize << q1;
        let bit0 = 1usize << q0;
        let (lo, hi) = (q1.min(q0), q1.max(q0));
        let lo_mask = (1usize << lo) - 1;
        let mid_mask = ((1usize << (hi - 1)) - 1) & !lo_mask;
        let hi_mask = !(lo_mask | mid_mask);
        let dim = 1usize << self.num_qubits;
        let quads = dim / 4;
        let batch = self.batch;

        let re_ptr = PlanePtr(self.re.as_mut_ptr());
        let im_ptr = PlanePtr(self.im.as_mut_ptr());
        let work = move |range: Range<usize>| {
            let re = re_ptr.get();
            let im = im_ptr.get();
            for k in range {
                let base = (k & lo_mask) | ((k & mid_mask) << 1) | ((k & hi_mask) << 2);
                let r00 = base * batch;
                let r01 = (base | bit0) * batch;
                let r10 = (base | bit1) * batch;
                let r11 = (base | bit1 | bit0) * batch;
                for (b, m) in ms.iter().enumerate() {
                    // SAFETY: as in the scalar kernel, the k -> base expansion
                    // is injective with both operand bits clear, so rows of
                    // distinct k are disjoint; per-thread ranges of k are
                    // disjoint too, and `b < batch` keeps every index inside
                    // the row. All indices are < 2^n · batch by construction.
                    unsafe {
                        let a00 = Complex64::new(*re.add(r00 + b), *im.add(r00 + b));
                        let a01 = Complex64::new(*re.add(r01 + b), *im.add(r01 + b));
                        let a10 = Complex64::new(*re.add(r10 + b), *im.add(r10 + b));
                        let a11 = Complex64::new(*re.add(r11 + b), *im.add(r11 + b));
                        let n00 = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
                        let n01 = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
                        let n10 = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
                        let n11 = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
                        *re.add(r00 + b) = n00.re;
                        *im.add(r00 + b) = n00.im;
                        *re.add(r01 + b) = n01.re;
                        *im.add(r01 + b) = n01.im;
                        *re.add(r10 + b) = n10.re;
                        *im.add(r10 + b) = n10.im;
                        *re.add(r11 + b) = n11.re;
                        *im.add(r11 + b) = n11.im;
                    }
                }
            }
        };

        if self.num_qubits >= parallel_threshold_qubits() {
            par_index_ranges(quads, work);
        } else {
            work(0..quads);
        }
    }

    /// Multiply element `b` of amplitude `z` by the factor at
    /// `index[z] * batch + b` — the batched fused diagonal-phase pass. The
    /// compiled program supplies `index` (per-amplitude distinct-angle index)
    /// and the factor planes (`e^{i·scale_b·values[v]}`, precomputed once per
    /// distinct angle per element), so a whole cost layer costs one complex
    /// multiply per amplitude-element instead of one `sin`/`cos` pair.
    ///
    /// Bit-identical to [`StateVector::apply_phase_table`]: the factor for
    /// `(z, b)` is `from_polar(1.0, scale_b * angles[z])` with `angles[z]`
    /// reproduced exactly by `values[index[z]]` (the LUT stores the table's
    /// f64 bit patterns verbatim), and the multiply below is the expansion of
    /// `num_complex`'s `MulAssign`.
    pub(crate) fn apply_phase_lut(&mut self, index: &[u32], fre: &[f64], fim: &[f64]) {
        let dim = 1usize << self.num_qubits;
        assert_eq!(index.len(), dim, "one LUT index per amplitude");
        assert_eq!(fre.len(), fim.len(), "factor planes must match");
        let batch = self.batch;

        let work = |(re_chunk, im_chunk): (&mut [f64], &mut [f64]), base_amp: usize| {
            for ((re_row, im_row), &v) in re_chunk
                .chunks_exact_mut(batch)
                .zip(im_chunk.chunks_exact_mut(batch))
                .zip(&index[base_amp..])
            {
                let fre = &fre[v as usize * batch..(v as usize + 1) * batch];
                let fim = &fim[v as usize * batch..(v as usize + 1) * batch];
                for b in 0..batch {
                    let are = re_row[b];
                    let aim = im_row[b];
                    re_row[b] = are * fre[b] - aim * fim[b];
                    im_row[b] = are * fim[b] + aim * fre[b];
                }
            }
        };

        if self.num_qubits >= parallel_threshold_qubits() {
            let chunk_amps = parallel_chunk_size(dim, 1).max(1);
            self.re
                .par_chunks_mut(chunk_amps * batch)
                .zip(self.im.par_chunks_mut(chunk_amps * batch))
                .enumerate()
                .for_each(|(i, pair)| work(pair, i * chunk_amps));
        } else {
            work((&mut self.re, &mut self.im), 0);
        }
    }

    /// Per-element expectation `⟨ψ_b| D |ψ_b⟩` of a diagonal observable, one
    /// sweep for the whole batch. Appends `batch` values to `out` (cleared
    /// first), mirroring the scalar reduction structure of
    /// [`StateVector::expectation_diagonal`] exactly: same sequential z-order
    /// accumulation below the parallel threshold, same per-thread range
    /// partials (combined in range order, starting from 0.0) above it — so
    /// each `out[b]` is bit-identical to the scalar result at any thread
    /// count.
    pub fn expectation_diagonal_batch(
        &self,
        diagonal: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), SimulatorError> {
        let dim = 1usize << self.num_qubits;
        if diagonal.len() != dim {
            return Err(SimulatorError::DimensionMismatch {
                observable: diagonal.len(),
                state: dim,
            });
        }
        let batch = self.batch;
        out.clear();
        out.resize(batch, 0.0);

        let partial = |range: Range<usize>, acc: &mut [f64]| {
            let re_rows = &self.re[range.start * batch..range.end * batch];
            let im_rows = &self.im[range.start * batch..range.end * batch];
            for ((re_row, im_row), &d) in re_rows
                .chunks_exact(batch)
                .zip(im_rows.chunks_exact(batch))
                .zip(&diagonal[range])
            {
                for b in 0..batch {
                    // `norm_sqr() * d` with norm_sqr = re·re + im·im.
                    acc[b] += (re_row[b] * re_row[b] + im_row[b] * im_row[b]) * d;
                }
            }
        };

        if self.num_qubits >= parallel_threshold_qubits() {
            // Same chunking decisions as `par_sum_ranges`, with vector-valued
            // partials combined in the same order the scalar path sums them.
            let threads = rayon::current_num_threads().clamp(1, dim.max(1));
            if threads <= 1 {
                partial(0..dim, out);
            } else {
                let chunk = dim.div_ceil(threads);
                let partials: Vec<Vec<f64>> = std::thread::scope(|scope| {
                    let partial = &partial;
                    let handles: Vec<_> = (0..threads)
                        .map(|t| (t * chunk, ((t + 1) * chunk).min(dim)))
                        .take_while(|(start, end)| start < end)
                        .map(|(start, end)| {
                            scope.spawn(move || {
                                let mut acc = vec![0.0; batch];
                                partial(start..end, &mut acc);
                                acc
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("reduction worker panicked"))
                        .collect()
                });
                for p in partials {
                    for (o, v) in out.iter_mut().zip(&p) {
                        *o += v;
                    }
                }
            }
        } else {
            partial(0..dim, out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_states_puts_every_element_at_zero() {
        let b = BatchStateVector::zero_states(3, 4).unwrap();
        for e in 0..4 {
            assert_eq!(b.state(e), StateVector::zero_state(3).unwrap());
        }
    }

    #[test]
    fn reset_plus_matches_scalar_plus_state_bitwise() {
        let mut b = BatchStateVector::zero_states(5, 3).unwrap();
        b.reset_plus();
        let scalar = StateVector::plus_state(5).unwrap();
        for e in 0..3 {
            let s = b.state(e);
            for (a, r) in s.amplitudes().iter().zip(scalar.amplitudes()) {
                assert_eq!(a.re.to_bits(), r.re.to_bits());
                assert_eq!(a.im.to_bits(), r.im.to_bits());
            }
        }
    }

    #[test]
    fn too_many_qubits_is_rejected() {
        assert!(matches!(
            BatchStateVector::zero_states(31, 2),
            Err(SimulatorError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn resize_batch_keeps_width_and_changes_count() {
        let mut b = BatchStateVector::zero_states(4, 7).unwrap();
        b.resize_batch(3);
        assert_eq!(b.batch(), 3);
        assert_eq!(b.num_qubits(), 4);
        b.reset_zero();
        for e in 0..3 {
            assert_eq!(b.state(e), StateVector::zero_state(4).unwrap());
        }
    }

    #[test]
    fn expectation_batch_dimension_mismatch() {
        let b = BatchStateVector::zero_states(2, 2).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            b.expectation_diagonal_batch(&[1.0, 2.0], &mut out),
            Err(SimulatorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn batched_kernels_match_scalar_kernels_bitwise() {
        // Distinct per-element matrices; scalar reference applies each one to
        // its own state. Checked below and above the parallel threshold via
        // an n=15 width (default threshold 14).
        use qcircuit::{Gate, GateMatrix};
        for n in [4usize, 15] {
            let batch = 3;
            let mut bsv = BatchStateVector::zero_states(n, batch).unwrap();
            bsv.reset_plus();
            let mut scalars: Vec<StateVector> = (0..batch)
                .map(|_| StateVector::plus_state(n).unwrap())
                .collect();

            let thetas = [0.3, -1.1, 2.4];
            let ms1: Vec<[Complex64; 4]> = thetas
                .iter()
                .map(|&t| match GateMatrix::of(Gate::RY, t) {
                    GateMatrix::One(m) => m,
                    _ => unreachable!(),
                })
                .collect();
            bsv.apply_single_qubit_batch(&ms1, n - 1);
            for (s, m) in scalars.iter_mut().zip(&ms1) {
                s.apply_single_qubit(m, n - 1);
            }

            let ms2: Vec<[Complex64; 16]> = thetas
                .iter()
                .map(|&t| match GateMatrix::of(Gate::RXX, t) {
                    GateMatrix::Two(m) => m,
                    _ => unreachable!(),
                })
                .collect();
            bsv.apply_two_qubit_batch(&ms2, n - 1, 1);
            for (s, m) in scalars.iter_mut().zip(&ms2) {
                s.apply_two_qubit(m, n - 1, 1);
            }

            // Phase LUT vs scalar phase table: two distinct angles.
            let dim = 1usize << n;
            let angles: Vec<f64> = (0..dim)
                .map(|z| if z % 2 == 0 { 0.7 } else { -0.2 })
                .collect();
            let index: Vec<u32> = (0..dim).map(|z| (z % 2) as u32).collect();
            let values = [0.7, -0.2];
            let scales = [0.5, 1.0, -2.0];
            let mut fre = Vec::new();
            let mut fim = Vec::new();
            for &v in &values {
                for &scale in &scales {
                    let f = Complex64::from_polar(1.0, scale * v);
                    fre.push(f.re);
                    fim.push(f.im);
                }
            }
            bsv.apply_phase_lut(&index, &fre, &fim);
            for (s, &scale) in scalars.iter_mut().zip(&scales) {
                s.apply_phase_table(&angles, scale).unwrap();
            }

            for (e, scalar) in scalars.iter().enumerate() {
                let got = bsv.state(e);
                for (a, r) in got.amplitudes().iter().zip(scalar.amplitudes()) {
                    assert_eq!(a.re.to_bits(), r.re.to_bits(), "n={n} element {e}");
                    assert_eq!(a.im.to_bits(), r.im.to_bits(), "n={n} element {e}");
                }
            }

            // Diagonal expectation, same diagonal for all elements.
            let diag: Vec<f64> = (0..dim).map(|z| (z % 5) as f64 - 2.0).collect();
            let mut out = Vec::new();
            bsv.expectation_diagonal_batch(&diag, &mut out).unwrap();
            for (e, scalar) in scalars.iter().enumerate() {
                let want = scalar.expectation_diagonal(&diag).unwrap();
                assert_eq!(out[e].to_bits(), want.to_bits(), "n={n} element {e}");
            }
        }
    }

    #[test]
    fn fused_run_matches_per_gate_passes_bitwise() {
        // A run of per-qubit gates applied through the cache-blocked kernel
        // must equal one apply_single_qubit_batch pass per gate, bit for bit
        // — including when the block is far smaller than the state and when
        // it covers the whole state. n=15 also exercises the parallel path.
        use qcircuit::{Gate, GateMatrix};
        for n in [6usize, 15] {
            for batch in [1usize, 3, 4] {
                let targets: Vec<usize> = (0..n.min(8)).collect();
                let ms: Vec<[Complex64; 4]> = (0..targets.len() * batch)
                    .map(|i| {
                        let gate = if i % 2 == 0 { Gate::RX } else { Gate::RY };
                        match GateMatrix::of(gate, 0.1 + 0.2 * i as f64) {
                            GateMatrix::One(m) => m,
                            _ => unreachable!(),
                        }
                    })
                    .collect();

                let mut fused = BatchStateVector::zero_states(n, batch).unwrap();
                fused.reset_plus();
                let mut coef = Vec::new();
                for block_amps in [1usize << 9, 1usize << n] {
                    let mut reference = BatchStateVector::zero_states(n, batch).unwrap();
                    reference.reset_plus();
                    for (g, &t) in targets.iter().enumerate() {
                        reference.apply_single_qubit_batch(&ms[g * batch..(g + 1) * batch], t);
                    }
                    fused.reset_plus();
                    fused.apply_single_qubit_run_batch(&targets, &ms, block_amps, &mut coef);
                    for e in 0..batch {
                        let got = fused.state(e);
                        let want = reference.state(e);
                        for (a, r) in got.amplitudes().iter().zip(want.amplitudes()) {
                            assert_eq!(
                                a.re.to_bits(),
                                r.re.to_bits(),
                                "n={n} batch={batch} block={block_amps} element {e}"
                            );
                            assert_eq!(a.im.to_bits(), r.im.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn fused_run_rejects_strides_wider_than_the_block() {
        let mut b = BatchStateVector::zero_states(12, 2).unwrap();
        let m = [
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 0.0),
            Complex64::new(0.0, 0.0),
            Complex64::new(1.0, 0.0),
        ];
        let mut coef = Vec::new();
        // Qubit 11 needs 2^12 amplitudes per pair block; offer only 2^8.
        b.apply_single_qubit_run_batch(&[11], &[m, m], 1 << 8, &mut coef);
    }

    #[test]
    fn batched_kernels_match_scalar_across_multiple_worker_threads() {
        // Force a 4-thread pool so the scoped-thread paths genuinely split
        // work, then compare against the default-pool scalar result.
        use qcircuit::{Gate, GateMatrix};
        let n = 15;
        let batch = 2;
        let thetas = [0.9, -0.4];
        let ms2: Vec<[Complex64; 16]> = thetas
            .iter()
            .map(|&t| match GateMatrix::of(Gate::RXX, t) {
                GateMatrix::Two(m) => m,
                _ => unreachable!(),
            })
            .collect();
        let dim = 1usize << n;
        let diag: Vec<f64> = (0..dim).map(|z| ((z * 7) % 11) as f64 * 0.25).collect();

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let (threaded_states, threaded_out) = pool.install(|| {
            let mut bsv = BatchStateVector::zero_states(n, batch).unwrap();
            bsv.reset_plus();
            bsv.apply_two_qubit_batch(&ms2, n - 1, 2);
            let mut out = Vec::new();
            bsv.expectation_diagonal_batch(&diag, &mut out).unwrap();
            ((0..batch).map(|e| bsv.state(e)).collect::<Vec<_>>(), out)
        });

        // The scalar reference runs in the SAME pool: the expectation
        // reduction's chunk boundaries depend on the thread count, and the
        // contract is batch ≡ scalar at equal thread count (each path is
        // separately deterministic for a fixed pool).
        for (e, m) in ms2.iter().enumerate() {
            let (scalar, want) = pool.install(|| {
                let mut scalar = StateVector::plus_state(n).unwrap();
                scalar.apply_two_qubit(m, n - 1, 2);
                let want = scalar.expectation_diagonal(&diag).unwrap();
                (scalar, want)
            });
            for (a, r) in threaded_states[e]
                .amplitudes()
                .iter()
                .zip(scalar.amplitudes())
            {
                assert_eq!(a.re.to_bits(), r.re.to_bits(), "element {e}");
                assert_eq!(a.im.to_bits(), r.im.to_bits(), "element {e}");
            }
            assert_eq!(threaded_out[e].to_bits(), want.to_bits(), "element {e}");
        }
    }
}
