//! One-time lowering of a [`Circuit`] into a flat, allocation-free op list.
//!
//! Rebinding an ansatz template and re-deriving every gate matrix on every
//! optimizer iteration dominates QAOA training time. [`CompiledProgram`]
//! does that work once:
//!
//! * free parameters become **slots** — executing the program takes a flat
//!   `&[f64]` of slot values, no `Circuit` clone, no string lookups;
//! * gates with fixed angles are lowered to their concrete matrices at
//!   compile time;
//! * maximal runs of *diagonal* gates (the entire QAOA cost layer: one
//!   `RZZ` per edge, plus any diagonal mixer gates) are fused into
//!   precomputed per-basis-state **angle tables**, applied as a single
//!   multiply pass over the amplitudes regardless of how many gates the run
//!   contained. Tables are deduplicated, so the `p` cost layers of a QAOA
//!   circuit share one table and only differ in the `γ_k` scale.
//!
//! ```
//! use qcircuit::{Circuit, Gate, Parameter};
//! use statevec::{CompiledProgram, StateVector};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).h(1);
//! c.push(Gate::RZZ, &[0, 1], Parameter::free("gamma", 2.0));
//! c.push(Gate::RX, &[0], Parameter::free("beta", 2.0));
//! c.push(Gate::RX, &[1], Parameter::free("beta", 2.0));
//! let program = CompiledProgram::compile(&c).unwrap();
//! assert_eq!(program.param_names(), ["gamma", "beta"]);
//!
//! // Reuse one scratch state across evaluations — no allocation per run.
//! let mut scratch = StateVector::zero_state(2).unwrap();
//! program.execute_into(&[0.4, 0.3], &mut scratch).unwrap();
//! assert!((scratch.norm_squared() - 1.0).abs() < 1e-12);
//! ```

use crate::batch::BatchStateVector;
use crate::error::SimulatorError;
use crate::state::StateVector;
use num_complex::Complex64;
use qcircuit::{Circuit, Gate, GateMatrix, Parameter};
use std::collections::HashMap;

/// Distinct-value view of an angle table, for the batched phase pass.
///
/// A fused cost-layer table holds `2^n` angles but typically only a handful
/// of *distinct* f64 bit patterns (a Max-Cut layer over `|E|` unit-weight
/// edges produces at most `|E| + 1` cut values). The batch executor
/// exponentiates each distinct value once per batch element and then streams
/// one table lookup + complex multiply per amplitude-element, instead of a
/// `sin`/`cos` pair per amplitude as the scalar path does. `values[index[z]]`
/// reproduces `table[z]` bit-for-bit, so the factors are bitwise the same
/// numbers the scalar kernel computes.
#[derive(Debug, Clone)]
struct PhaseLut {
    /// Distinct angle bit patterns, in first-appearance order.
    values: Vec<f64>,
    /// Per-basis-state index into `values` (u32: dims are ≤ 2^30).
    index: Vec<u32>,
}

impl PhaseLut {
    fn build(table: &[f64]) -> PhaseLut {
        let mut seen: HashMap<u64, u32> = HashMap::new();
        let mut values: Vec<f64> = Vec::new();
        let mut index = vec![0u32; table.len()];
        for (slot, &theta) in index.iter_mut().zip(table) {
            *slot = *seen.entry(theta.to_bits()).or_insert_with(|| {
                values.push(theta);
                (values.len() - 1) as u32
            });
        }
        PhaseLut { values, index }
    }
}

/// One factor of a fused per-qubit single-qubit chain.
#[derive(Debug, Clone)]
enum OneQFactor {
    /// A fixed 2×2 matrix.
    Fixed([Complex64; 4]),
    /// A rotation whose matrix is `gate` at angle `multiplier · params[slot]`.
    Rot {
        gate: Gate,
        slot: usize,
        multiplier: f64,
    },
}

/// `a · b` for row-major 2×2 complex matrices.
fn mul2(a: &[Complex64; 4], b: &[Complex64; 4]) -> [Complex64; 4] {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// One lowered operation of a compiled program.
#[derive(Debug, Clone)]
enum CompiledOp {
    /// Initialize the uniform superposition directly (recognized leading
    /// `H`-on-every-qubit layer — the QAOA `|s⟩ = |+⟩^{⊗n}` preparation).
    InitPlus,
    /// Fixed 2×2 matrix on `target`.
    OneQ { target: usize, m: [Complex64; 4] },
    /// A fused chain of single-qubit gates on one qubit: the 2×2 factors are
    /// multiplied at execution (a handful of flops) and applied as a single
    /// pass over the amplitudes. Single-qubit gates on *different* qubits
    /// commute, so a whole mixer layer collapses to one pass per qubit
    /// regardless of how many gates the mixer applies.
    OneQChain {
        target: usize,
        factors: Vec<OneQFactor>,
    },
    /// Parameterized non-diagonal single-qubit rotation: the matrix is
    /// rebuilt from `gate` with angle `multiplier · params[slot]` at
    /// execution (one sincos per gate per run).
    OneQRot {
        gate: Gate,
        target: usize,
        slot: usize,
        multiplier: f64,
    },
    /// Fixed 4×4 matrix on `(q1, q0)`.
    TwoQ {
        q1: usize,
        q0: usize,
        m: [Complex64; 16],
    },
    /// Parameterized non-diagonal two-qubit rotation (`RXX` / `RYY`).
    TwoQRot {
        gate: Gate,
        q1: usize,
        q0: usize,
        slot: usize,
        multiplier: f64,
    },
    /// Fixed diagonal phase pass: `amp[z] *= e^{i·tables[table][z]}`.
    Phase { table: usize },
    /// Parameter-scaled diagonal phase pass:
    /// `amp[z] *= e^{i·params[slot]·tables[table][z]}` — the fused cost
    /// layer, one pass per layer independent of the edge count.
    PhaseScaled { table: usize, slot: usize },
}

/// The per-basis-state phase contribution of one diagonal gate, with angles
/// expressed *per unit of the driving value* (the slot value for free
/// parameters, 1.0 for fixed gates).
#[derive(Debug, Clone)]
enum DiagTerm {
    /// Single-qubit diagonal: angle `a0` when the bit is clear, `a1` set.
    One { q: usize, a0: f64, a1: f64 },
    /// Two-qubit diagonal: angles indexed by `(bit_{q1} << 1) | bit_{q0}`.
    Two { q1: usize, q0: usize, a: [f64; 4] },
}

impl DiagTerm {
    /// Stable hash key (exact bit patterns; compile-time only).
    fn key(&self, out: &mut Vec<u64>) {
        match self {
            DiagTerm::One { q, a0, a1 } => {
                out.push(1);
                out.push(*q as u64);
                out.push(a0.to_bits());
                out.push(a1.to_bits());
            }
            DiagTerm::Two { q1, q0, a } => {
                out.push(2);
                out.push(*q1 as u64);
                out.push(*q0 as u64);
                out.extend(a.iter().map(|x| x.to_bits()));
            }
        }
    }
}

/// A circuit lowered once into specialized kernels with parameter slots.
///
/// Compile with [`CompiledProgram::compile`], then run many times with
/// different parameter values via [`CompiledProgram::execute_into`] (scratch
/// reuse) or [`CompiledProgram::run`] (fresh allocation).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    num_qubits: usize,
    param_names: Vec<String>,
    ops: Vec<CompiledOp>,
    tables: Vec<Vec<f64>>,
    /// Distinct-value views of `tables`, same indices.
    luts: Vec<PhaseLut>,
    source_instructions: usize,
}

/// Compile-time accumulator for a run of consecutive diagonal gates.
#[derive(Default)]
struct PendingDiag {
    /// Terms with fixed angles (bound or parameterless diagonal gates).
    fixed: Vec<DiagTerm>,
    /// Terms linear in one parameter slot, keyed by slot (insertion order).
    scaled: Vec<(usize, Vec<DiagTerm>)>,
}

impl PendingDiag {
    fn is_empty(&self) -> bool {
        self.fixed.is_empty() && self.scaled.is_empty()
    }

    fn scaled_terms_mut(&mut self, slot: usize) -> &mut Vec<DiagTerm> {
        if let Some(pos) = self.scaled.iter().position(|(s, _)| *s == slot) {
            return &mut self.scaled[pos].1;
        }
        self.scaled.push((slot, Vec::new()));
        &mut self.scaled.last_mut().expect("just pushed").1
    }
}

impl CompiledProgram {
    /// Lower `circuit` into a compiled program. Free parameters are assigned
    /// slots in order of first appearance (see
    /// [`CompiledProgram::param_names`]).
    pub fn compile(circuit: &Circuit) -> Result<CompiledProgram, SimulatorError> {
        let num_qubits = circuit.num_qubits();
        if num_qubits > crate::state::MAX_DENSE_QUBITS {
            return Err(SimulatorError::TooManyQubits {
                num_qubits,
                max: crate::state::MAX_DENSE_QUBITS,
            });
        }
        let mut builder = ProgramBuilder {
            num_qubits,
            param_names: Vec::new(),
            ops: Vec::new(),
            tables: Vec::new(),
            luts: Vec::new(),
            table_index: HashMap::new(),
            pending: PendingDiag::default(),
            pending_chains: Vec::new(),
        };

        for inst in circuit.instructions() {
            builder.lower(inst)?;
        }
        builder.flush_chains();
        builder.flush_pending();
        let mut ops = builder.ops;
        Self::recognize_plus_prefix(&mut ops, num_qubits);

        Ok(CompiledProgram {
            num_qubits: builder.num_qubits,
            param_names: builder.param_names,
            ops,
            tables: builder.tables,
            luts: builder.luts,
            source_instructions: circuit.len(),
        })
    }

    /// Replace a leading `H`-on-every-qubit layer with a direct `|+⟩^{⊗n}`
    /// initialization (one fill instead of `n` kernel passes) — the standard
    /// opening of every QAOA circuit.
    fn recognize_plus_prefix(ops: &mut Vec<CompiledOp>, num_qubits: usize) {
        if num_qubits == 0 || ops.len() < num_qubits {
            return;
        }
        let h = match GateMatrix::of(Gate::H, 0.0) {
            GateMatrix::One(m) => m,
            GateMatrix::Two(_) => unreachable!("H is single-qubit"),
        };
        let mut seen = vec![false; num_qubits];
        for op in ops.iter().take(num_qubits) {
            match op {
                CompiledOp::OneQ { target, m } if *m == h && !seen[*target] => {
                    seen[*target] = true;
                }
                _ => return,
            }
        }
        ops.splice(0..num_qubits, [CompiledOp::InitPlus]);
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Parameter names in slot order.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// Number of parameter slots.
    pub fn num_params(&self) -> usize {
        self.param_names.len()
    }

    /// Slot index of a named parameter, if present.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.param_names.iter().position(|n| n == name)
    }

    /// Number of lowered operations (after diagonal fusion).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of instructions in the source circuit.
    pub fn source_instructions(&self) -> usize {
        self.source_instructions
    }

    /// Number of distinct fused angle tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Execute the program from `|0...0⟩` into a caller-provided scratch
    /// state (reset in place — no allocation). `params` supplies one value
    /// per slot, in [`CompiledProgram::param_names`] order.
    pub fn execute_into(
        &self,
        params: &[f64],
        state: &mut StateVector,
    ) -> Result<(), SimulatorError> {
        if params.len() != self.param_names.len() {
            return Err(SimulatorError::WrongParameterCount {
                expected: self.param_names.len(),
                got: params.len(),
            });
        }
        if state.num_qubits() != self.num_qubits {
            return Err(SimulatorError::WidthMismatch {
                program: self.num_qubits,
                state: state.num_qubits(),
            });
        }
        let mut ops = self.ops.as_slice();
        if matches!(ops.first(), Some(CompiledOp::InitPlus)) {
            state.reset_plus();
            ops = &ops[1..];
        } else {
            state.reset_zero();
        }
        for op in ops {
            match op {
                // Only ever spliced in at index 0, which the prologue above
                // consumed; a mid-program occurrence would be a compiler bug
                // (reset_plus here would discard all prior gates).
                CompiledOp::InitPlus => unreachable!("InitPlus past the program start"),
                CompiledOp::OneQ { target, m } => state.apply_single_qubit(m, *target),
                CompiledOp::OneQChain { target, factors } => {
                    let one = Complex64::new(1.0, 0.0);
                    let zero = Complex64::new(0.0, 0.0);
                    let mut m = [one, zero, zero, one];
                    for f in factors {
                        let fm = match f {
                            OneQFactor::Fixed(fm) => *fm,
                            OneQFactor::Rot {
                                gate,
                                slot,
                                multiplier,
                            } => match GateMatrix::of(*gate, multiplier * params[*slot]) {
                                GateMatrix::One(fm) => fm,
                                GateMatrix::Two(_) => unreachable!("single-qubit rotation"),
                            },
                        };
                        // Applying f after the accumulated chain means
                        // left-multiplying its matrix.
                        m = mul2(&fm, &m);
                    }
                    state.apply_single_qubit(&m, *target);
                }
                CompiledOp::OneQRot {
                    gate,
                    target,
                    slot,
                    multiplier,
                } => {
                    let theta = multiplier * params[*slot];
                    match GateMatrix::of(*gate, theta) {
                        GateMatrix::One(m) => state.apply_single_qubit(&m, *target),
                        GateMatrix::Two(_) => unreachable!("single-qubit rotation"),
                    }
                }
                CompiledOp::TwoQ { q1, q0, m } => state.apply_two_qubit(m, *q1, *q0),
                CompiledOp::TwoQRot {
                    gate,
                    q1,
                    q0,
                    slot,
                    multiplier,
                } => {
                    let theta = multiplier * params[*slot];
                    match GateMatrix::of(*gate, theta) {
                        GateMatrix::Two(m) => state.apply_two_qubit(&m, *q1, *q0),
                        GateMatrix::One(_) => unreachable!("two-qubit rotation"),
                    }
                }
                CompiledOp::Phase { table } => {
                    state.apply_phase_table(&self.tables[*table], 1.0)?;
                }
                CompiledOp::PhaseScaled { table, slot } => {
                    state.apply_phase_table(&self.tables[*table], params[*slot])?;
                }
            }
        }
        Ok(())
    }

    /// Execute into a freshly allocated state (convenience wrapper around
    /// [`CompiledProgram::execute_into`]).
    pub fn run(&self, params: &[f64]) -> Result<StateVector, SimulatorError> {
        let mut state = StateVector::zero_state(self.num_qubits)?;
        self.execute_into(params, &mut state)?;
        Ok(state)
    }

    /// Execute the program once per batch element of `state`, from `|0...0⟩`,
    /// in one sweep over the structure-of-arrays buffer. `params` is
    /// batch-major: element `b`'s slot values occupy
    /// `params[b·num_params .. (b+1)·num_params]`.
    ///
    /// Bit-identical to calling [`CompiledProgram::execute_into`] once per
    /// element (see the contract on [`crate::batch`]): gate kernels perform
    /// the same per-element arithmetic, and phase passes draw their angles
    /// from the same tables via a distinct-value lookup whose factors are
    /// `e^{i·scale_b·θ}` for bitwise the same `scale_b·θ` products.
    pub fn execute_batch_into(
        &self,
        params: &[f64],
        state: &mut BatchStateVector,
    ) -> Result<(), SimulatorError> {
        let batch = state.batch();
        let np = self.param_names.len();
        if params.len() != np * batch {
            return Err(SimulatorError::WrongParameterCount {
                expected: np * batch,
                got: params.len(),
            });
        }
        if state.num_qubits() != self.num_qubits {
            return Err(SimulatorError::WidthMismatch {
                program: self.num_qubits,
                state: state.num_qubits(),
            });
        }
        let mut ops = self.ops.as_slice();
        if matches!(ops.first(), Some(CompiledOp::InitPlus)) {
            state.reset_plus();
            ops = &ops[1..];
        } else {
            state.reset_zero();
        }
        // Per-element slot values, shared by every op below.
        let slots_of = |b: usize| &params[b * np..(b + 1) * np];

        // Stage the per-element 2×2 matrices of one single-qubit op.
        let stage_one_q = |op: &CompiledOp, out: &mut Vec<[Complex64; 4]>| match op {
            CompiledOp::OneQ { m, .. } => {
                for _ in 0..batch {
                    out.push(*m);
                }
            }
            CompiledOp::OneQChain { factors, .. } => {
                for b in 0..batch {
                    let slots = slots_of(b);
                    let one = Complex64::new(1.0, 0.0);
                    let zero = Complex64::new(0.0, 0.0);
                    let mut m = [one, zero, zero, one];
                    for f in factors {
                        let fm = match f {
                            OneQFactor::Fixed(fm) => *fm,
                            OneQFactor::Rot {
                                gate,
                                slot,
                                multiplier,
                            } => match GateMatrix::of(*gate, multiplier * slots[*slot]) {
                                GateMatrix::One(fm) => fm,
                                GateMatrix::Two(_) => unreachable!("single-qubit rotation"),
                            },
                        };
                        m = mul2(&fm, &m);
                    }
                    out.push(m);
                }
            }
            CompiledOp::OneQRot {
                gate,
                slot,
                multiplier,
                ..
            } => {
                for b in 0..batch {
                    let theta = multiplier * slots_of(b)[*slot];
                    match GateMatrix::of(*gate, theta) {
                        GateMatrix::One(m) => out.push(m),
                        GateMatrix::Two(_) => unreachable!("single-qubit rotation"),
                    }
                }
            }
            _ => unreachable!("not a single-qubit op"),
        };
        let one_q_target = |op: &CompiledOp| match op {
            CompiledOp::OneQ { target, .. }
            | CompiledOp::OneQChain { target, .. }
            | CompiledOp::OneQRot { target, .. } => Some(*target),
            _ => None,
        };

        let mut scr = state.take_exec_scratch();
        let block_amps = crate::batch::run_block_amps(batch);
        let mut i = 0;
        while i < ops.len() {
            // Fuse a maximal run of consecutive single-qubit ops whose pair
            // strides fit the cache block into ONE blocked sweep (a QAOA
            // mixer layer is exactly such a run). Gates keep their program
            // order per amplitude, so results are bit-identical to the
            // one-pass-per-gate path; only the memory traffic changes.
            if one_q_target(&ops[i]).is_some() {
                let mut k = i;
                while k < ops.len() {
                    match one_q_target(&ops[k]) {
                        Some(t) if (2usize << t) <= block_amps => k += 1,
                        _ => break,
                    }
                }
                if k - i >= 2 {
                    scr.run_targets.clear();
                    scr.mat1.clear();
                    for op in &ops[i..k] {
                        scr.run_targets
                            .push(one_q_target(op).expect("single-qubit run op"));
                        stage_one_q(op, &mut scr.mat1);
                    }
                    let mut coef = std::mem::take(&mut scr.coef);
                    state.apply_single_qubit_run_batch(
                        &scr.run_targets,
                        &scr.mat1,
                        block_amps,
                        &mut coef,
                    );
                    scr.coef = coef;
                    i = k;
                    continue;
                }
            }
            let op = &ops[i];
            i += 1;
            match op {
                CompiledOp::InitPlus => unreachable!("InitPlus past the program start"),
                CompiledOp::OneQ { target, .. }
                | CompiledOp::OneQChain { target, .. }
                | CompiledOp::OneQRot { target, .. } => {
                    scr.mat1.clear();
                    stage_one_q(op, &mut scr.mat1);
                    state.apply_single_qubit_batch(&scr.mat1, *target);
                }
                CompiledOp::TwoQ { q1, q0, m } => {
                    scr.mat2.clear();
                    scr.mat2.resize(batch, *m);
                    state.apply_two_qubit_batch(&scr.mat2, *q1, *q0);
                }
                CompiledOp::TwoQRot {
                    gate,
                    q1,
                    q0,
                    slot,
                    multiplier,
                } => {
                    scr.mat2.clear();
                    for b in 0..batch {
                        let theta = multiplier * slots_of(b)[*slot];
                        match GateMatrix::of(*gate, theta) {
                            GateMatrix::Two(m) => scr.mat2.push(m),
                            GateMatrix::One(_) => unreachable!("two-qubit rotation"),
                        }
                    }
                    state.apply_two_qubit_batch(&scr.mat2, *q1, *q0);
                }
                CompiledOp::Phase { table } => {
                    let lut = &self.luts[*table];
                    scr.factors_re.clear();
                    scr.factors_im.clear();
                    for &v in &lut.values {
                        for _ in 0..batch {
                            // Same expression as the scalar pass at scale 1.0.
                            let f = Complex64::from_polar(1.0, 1.0 * v);
                            scr.factors_re.push(f.re);
                            scr.factors_im.push(f.im);
                        }
                    }
                    state.apply_phase_lut(&lut.index, &scr.factors_re, &scr.factors_im);
                }
                CompiledOp::PhaseScaled { table, slot } => {
                    let lut = &self.luts[*table];
                    scr.factors_re.clear();
                    scr.factors_im.clear();
                    for &v in &lut.values {
                        for b in 0..batch {
                            let scale = slots_of(b)[*slot];
                            let f = Complex64::from_polar(1.0, scale * v);
                            scr.factors_re.push(f.re);
                            scr.factors_im.push(f.im);
                        }
                    }
                    state.apply_phase_lut(&lut.index, &scr.factors_re, &scr.factors_im);
                }
            }
        }
        state.restore_exec_scratch(scr);
        Ok(())
    }

    /// Execute `B` parameter vectors in one sweep and return the `B` final
    /// states (convenience wrapper around
    /// [`CompiledProgram::execute_batch_into`]; an empty input yields an
    /// empty output).
    pub fn run_batch<P: AsRef<[f64]>>(
        &self,
        params_list: &[P],
    ) -> Result<Vec<StateVector>, SimulatorError> {
        if params_list.is_empty() {
            return Ok(Vec::new());
        }
        let np = self.param_names.len();
        let mut flat = Vec::with_capacity(np * params_list.len());
        for p in params_list {
            let p = p.as_ref();
            if p.len() != np {
                return Err(SimulatorError::WrongParameterCount {
                    expected: np,
                    got: p.len(),
                });
            }
            flat.extend_from_slice(p);
        }
        let mut state = BatchStateVector::zero_states(self.num_qubits, params_list.len())?;
        self.execute_batch_into(&flat, &mut state)?;
        Ok((0..params_list.len()).map(|b| state.state(b)).collect())
    }
}

struct ProgramBuilder {
    num_qubits: usize,
    param_names: Vec<String>,
    ops: Vec<CompiledOp>,
    tables: Vec<Vec<f64>>,
    luts: Vec<PhaseLut>,
    table_index: HashMap<Vec<u64>, usize>,
    pending: PendingDiag,
    /// Per-qubit chains of consecutive single-qubit gates (first-touch
    /// order). At most one of `pending` / `pending_chains` is non-empty:
    /// accumulating into one flushes the other, which preserves gate order
    /// on every qubit.
    pending_chains: Vec<(usize, Vec<OneQFactor>)>,
}

impl ProgramBuilder {
    fn slot_of(&mut self, name: &str) -> usize {
        if let Some(i) = self.param_names.iter().position(|n| n == name) {
            return i;
        }
        self.param_names.push(name.to_string());
        self.param_names.len() - 1
    }

    fn lower(&mut self, inst: &qcircuit::Instruction) -> Result<(), SimulatorError> {
        let gate = inst.gate;
        if gate.is_diagonal() {
            // Diagonal gates do not commute with pending chains on their
            // operands, so close the chains before accumulating.
            self.flush_chains();
            return self.lower_diagonal(inst);
        }
        // Non-diagonal gate: close the current diagonal run first.
        self.flush_pending();
        if gate.arity() == 1 {
            let factor = match &inst.parameter {
                Parameter::Free { name, multiplier } => {
                    let slot = self.slot_of(name);
                    OneQFactor::Rot {
                        gate,
                        slot,
                        multiplier: *multiplier,
                    }
                }
                _ => {
                    let matrix = inst
                        .matrix(&|_| None)
                        .expect("bound/parameterless instruction has a matrix");
                    match matrix {
                        GateMatrix::One(m) => OneQFactor::Fixed(m),
                        GateMatrix::Two(_) => unreachable!("single-qubit gate"),
                    }
                }
            };
            self.push_chain_factor(inst.qubits[0], factor);
            return Ok(());
        }
        // Two-qubit non-diagonal gate: a hard barrier for chains too.
        self.flush_chains();
        match &inst.parameter {
            Parameter::Free { name, multiplier } => {
                let slot = self.slot_of(name);
                self.ops.push(CompiledOp::TwoQRot {
                    gate,
                    q1: inst.qubits[0],
                    q0: inst.qubits[1],
                    slot,
                    multiplier: *multiplier,
                });
            }
            _ => {
                let matrix = inst
                    .matrix(&|_| None)
                    .expect("bound/parameterless instruction has a matrix");
                match matrix {
                    GateMatrix::Two(m) => self.ops.push(CompiledOp::TwoQ {
                        q1: inst.qubits[0],
                        q0: inst.qubits[1],
                        m,
                    }),
                    GateMatrix::One(_) => unreachable!("two-qubit gate"),
                }
            }
        }
        Ok(())
    }

    fn push_chain_factor(&mut self, target: usize, factor: OneQFactor) {
        if let Some((_, factors)) = self.pending_chains.iter_mut().find(|(q, _)| *q == target) {
            factors.push(factor);
        } else {
            self.pending_chains.push((target, vec![factor]));
        }
    }

    /// Emit the accumulated per-qubit chains: a single-factor chain becomes
    /// a plain op, an all-fixed chain is premultiplied at compile time, and
    /// anything else becomes a [`CompiledOp::OneQChain`] whose 2×2 product
    /// is formed at execution.
    fn flush_chains(&mut self) {
        let chains = std::mem::take(&mut self.pending_chains);
        for (target, mut factors) in chains {
            if factors.len() == 1 {
                match factors.pop().expect("one factor") {
                    OneQFactor::Fixed(m) => self.ops.push(CompiledOp::OneQ { target, m }),
                    OneQFactor::Rot {
                        gate,
                        slot,
                        multiplier,
                    } => self.ops.push(CompiledOp::OneQRot {
                        gate,
                        target,
                        slot,
                        multiplier,
                    }),
                }
                continue;
            }
            if factors.iter().all(|f| matches!(f, OneQFactor::Fixed(_))) {
                let one = Complex64::new(1.0, 0.0);
                let zero = Complex64::new(0.0, 0.0);
                let mut m = [one, zero, zero, one];
                for f in &factors {
                    if let OneQFactor::Fixed(fm) = f {
                        m = mul2(fm, &m);
                    }
                }
                self.ops.push(CompiledOp::OneQ { target, m });
                continue;
            }
            self.ops.push(CompiledOp::OneQChain { target, factors });
        }
    }

    fn lower_diagonal(&mut self, inst: &qcircuit::Instruction) -> Result<(), SimulatorError> {
        let gate = inst.gate;
        if gate == Gate::I {
            return Ok(());
        }
        match &inst.parameter {
            Parameter::Free { name, multiplier } => {
                // The parameterized diagonal gates all have phases linear in
                // the angle θ = multiplier · value, so the per-unit-value
                // angles are the θ-coefficients times the multiplier.
                let m = *multiplier;
                let term = match gate {
                    Gate::RZ => DiagTerm::One {
                        q: inst.qubits[0],
                        a0: -m / 2.0,
                        a1: m / 2.0,
                    },
                    Gate::P => DiagTerm::One {
                        q: inst.qubits[0],
                        a0: 0.0,
                        a1: m,
                    },
                    Gate::RZZ => DiagTerm::Two {
                        q1: inst.qubits[0],
                        q0: inst.qubits[1],
                        a: [-m / 2.0, m / 2.0, m / 2.0, -m / 2.0],
                    },
                    Gate::CP => DiagTerm::Two {
                        q1: inst.qubits[0],
                        q0: inst.qubits[1],
                        a: [0.0, 0.0, 0.0, m],
                    },
                    other => {
                        // `Instruction::new` rejects free parameters on
                        // non-parameterized gates, so this cannot happen.
                        unreachable!("free parameter on non-parameterized diagonal gate {other}")
                    }
                };
                let name = name.clone();
                let slot = self.slot_of(&name);
                self.pending.scaled_terms_mut(slot).push(term);
            }
            _ => {
                let matrix = inst
                    .matrix(&|_| None)
                    .expect("bound/parameterless instruction has a matrix");
                let diag = matrix
                    .diagonal()
                    .expect("diagonal gate has a diagonal matrix");
                let term = match diag.len() {
                    2 => DiagTerm::One {
                        q: inst.qubits[0],
                        a0: diag[0].arg(),
                        a1: diag[1].arg(),
                    },
                    _ => DiagTerm::Two {
                        q1: inst.qubits[0],
                        q0: inst.qubits[1],
                        a: [diag[0].arg(), diag[1].arg(), diag[2].arg(), diag[3].arg()],
                    },
                };
                self.pending.fixed.push(term);
            }
        }
        Ok(())
    }

    /// Emit the accumulated diagonal run as phase ops (one per slot plus one
    /// for the fixed part), building or reusing angle tables.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        if !pending.fixed.is_empty() {
            let table = self.intern_table(&pending.fixed);
            self.ops.push(CompiledOp::Phase { table });
        }
        for (slot, terms) in pending.scaled {
            let table = self.intern_table(&terms);
            self.ops.push(CompiledOp::PhaseScaled { table, slot });
        }
    }

    /// Build the per-basis-state angle table for `terms`, reusing an
    /// existing table when an identical term list was compiled before (the
    /// `p` cost layers of a QAOA circuit all share one table).
    fn intern_table(&mut self, terms: &[DiagTerm]) -> usize {
        let mut key = Vec::with_capacity(terms.len() * 5);
        for t in terms {
            t.key(&mut key);
        }
        if let Some(&idx) = self.table_index.get(&key) {
            return idx;
        }
        let dim = 1usize << self.num_qubits;
        let mut table = vec![0.0f64; dim];
        let fill = |out: &mut [f64], base: usize| {
            for (off, angle) in out.iter_mut().enumerate() {
                let z = base + off;
                let mut sum = 0.0;
                for t in terms {
                    sum += match t {
                        DiagTerm::One { q, a0, a1 } => {
                            if (z >> q) & 1 == 0 {
                                *a0
                            } else {
                                *a1
                            }
                        }
                        DiagTerm::Two { q1, q0, a } => a[(((z >> q1) & 1) << 1) | ((z >> q0) & 1)],
                    };
                }
                *angle = sum;
            }
        };
        if self.num_qubits >= crate::parallel_threshold_qubits() {
            crate::state::par_chunks_with_base(&mut table, fill);
        } else {
            fill(&mut table, 0);
        }
        self.luts.push(PhaseLut::build(&table));
        self.tables.push(table);
        self.table_index.insert(key, self.tables.len() - 1);
        self.tables.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_states_close(a: &StateVector, b: &StateVector, tol: f64) {
        assert_eq!(a.num_qubits(), b.num_qubits());
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((x - y).norm() < tol, "amplitudes differ: {x} vs {y}");
        }
    }

    #[test]
    fn fully_bound_circuit_matches_apply_circuit() {
        let mut c = Circuit::new(4);
        c.h_layer();
        c.rzz(0, 1, 0.7).rzz(1, 2, -0.3).rzz(2, 3, 1.1);
        c.rx(0, 0.4).ry(1, 0.9).rz(2, -0.8);
        c.cx(0, 2).cz(1, 3);
        c.push(Gate::SWAP, &[0, 3], Parameter::None);
        c.push(Gate::S, &[1], Parameter::None);
        c.push(Gate::T, &[2], Parameter::None);
        let reference = StateVector::from_circuit(&c).unwrap();
        let program = CompiledProgram::compile(&c).unwrap();
        let compiled = program.run(&[]).unwrap();
        assert_states_close(&reference, &compiled, 1e-10);
    }

    #[test]
    fn parameterized_circuit_matches_bound_simulation() {
        let mut c = Circuit::new(3);
        c.h_layer();
        c.push(Gate::RZZ, &[0, 1], Parameter::free("gamma", 2.0));
        c.push(Gate::RZZ, &[1, 2], Parameter::free("gamma", 3.0));
        c.push(Gate::RX, &[0], Parameter::free("beta", 2.0));
        c.push(Gate::RX, &[1], Parameter::free("beta", 2.0));
        c.push(Gate::RX, &[2], Parameter::free("beta", 2.0));
        let program = CompiledProgram::compile(&c).unwrap();
        assert_eq!(program.param_names(), ["gamma", "beta"]);

        let bound = c.bind(&[("gamma", 0.55), ("beta", -0.2)]).unwrap();
        let reference = StateVector::from_circuit(&bound).unwrap();
        let compiled = program.run(&[0.55, -0.2]).unwrap();
        assert_states_close(&reference, &compiled, 1e-10);
    }

    #[test]
    fn cost_layers_share_one_table() {
        // Two QAOA layers over the same three edges: the γ_0 and γ_1 cost
        // layers have identical structure, so one angle table serves both.
        let mut c = Circuit::new(3);
        c.h_layer();
        for k in 0..2 {
            let gamma = format!("gamma_{k}");
            c.push(Gate::RZZ, &[0, 1], Parameter::free(&gamma, 2.0));
            c.push(Gate::RZZ, &[1, 2], Parameter::free(&gamma, 2.0));
            c.push(Gate::RZZ, &[0, 2], Parameter::free(&gamma, 2.0));
            let beta = format!("beta_{k}");
            for q in 0..3 {
                c.push(Gate::RX, &[q], Parameter::free(&beta, 2.0));
            }
        }
        let program = CompiledProgram::compile(&c).unwrap();
        assert_eq!(program.num_tables(), 1);
        // |+⟩ init + 2 × (fused cost pass + 3 mixer rotations) = 9 ops from
        // 15 instructions.
        assert_eq!(program.num_ops(), 9);
        assert_eq!(program.source_instructions(), 15);
    }

    #[test]
    fn fixed_diagonal_gates_fuse_into_phase_pass() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        c.push(Gate::S, &[0], Parameter::None);
        c.push(Gate::Z, &[1], Parameter::None);
        c.push(Gate::CZ, &[0, 1], Parameter::None);
        c.rz(0, 0.4);
        let program = CompiledProgram::compile(&c).unwrap();
        // |+⟩ init + one fused phase pass.
        assert_eq!(program.num_ops(), 2);
        let reference = StateVector::from_circuit(&c).unwrap();
        let compiled = program.run(&[]).unwrap();
        assert_states_close(&reference, &compiled, 1e-10);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut c = Circuit::new(3);
        c.h_layer();
        c.push(Gate::RZZ, &[0, 1], Parameter::free("g", 2.0));
        c.push(Gate::RY, &[2], Parameter::free("b", 2.0));
        let program = CompiledProgram::compile(&c).unwrap();
        let mut scratch = StateVector::zero_state(3).unwrap();
        for &(g, b) in &[(0.3, 0.1), (-1.2, 0.8), (2.0, -0.5)] {
            program.execute_into(&[g, b], &mut scratch).unwrap();
            let fresh = program.run(&[g, b]).unwrap();
            assert_states_close(&scratch, &fresh, 1e-12);
            assert!((scratch.norm_squared() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn wrong_parameter_count_is_rejected() {
        let mut c = Circuit::new(2);
        c.push(Gate::RX, &[0], Parameter::free("a", 1.0));
        let program = CompiledProgram::compile(&c).unwrap();
        assert!(matches!(
            program.run(&[]),
            Err(SimulatorError::WrongParameterCount {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let c = Circuit::new(3);
        let program = CompiledProgram::compile(&c).unwrap();
        let mut wrong = StateVector::zero_state(2).unwrap();
        assert!(matches!(
            program.execute_into(&[], &mut wrong),
            Err(SimulatorError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn mixer_layers_fuse_into_one_pass_per_qubit() {
        // RX then RY on every qubit (the paper's winning mixer): each
        // qubit's two rotations share one kernel pass.
        let mut c = Circuit::new(3);
        c.h_layer();
        c.push(Gate::RZZ, &[0, 1], Parameter::free("gamma_0", 2.0));
        for q in 0..3 {
            c.push(Gate::RX, &[q], Parameter::free("beta_0", 2.0));
        }
        for q in 0..3 {
            c.push(Gate::RY, &[q], Parameter::free("beta_0", 2.0));
        }
        let program = CompiledProgram::compile(&c).unwrap();
        // |+⟩ init + fused cost pass + 3 fused chains.
        assert_eq!(program.num_ops(), 5);

        let bound = c.bind(&[("gamma_0", 0.7), ("beta_0", -0.4)]).unwrap();
        let reference = StateVector::from_circuit(&bound).unwrap();
        let compiled = program.run(&[0.7, -0.4]).unwrap();
        assert_states_close(&reference, &compiled, 1e-10);
    }

    #[test]
    fn interleaved_diagonal_gates_preserve_per_qubit_order() {
        // RX, RZ, RX on one qubit: the diagonal RZ must break the chain,
        // not commute past the rotations.
        let mut c = Circuit::new(2);
        c.rx(0, 0.5).rz(0, 0.9).rx(0, -0.3);
        c.push(Gate::H, &[1], Parameter::None);
        let program = CompiledProgram::compile(&c).unwrap();
        let reference = StateVector::from_circuit(&c).unwrap();
        let compiled = program.run(&[]).unwrap();
        assert_states_close(&reference, &compiled, 1e-10);
    }

    fn assert_states_bitwise_equal(a: &StateVector, b: &StateVector) {
        assert_eq!(a.num_qubits(), b.num_qubits());
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{x} vs {y}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{x} vs {y}");
        }
    }

    /// A QAOA-shaped template exercising every batched op kind: |+⟩ init,
    /// fused scaled cost pass, fixed phase pass, rotation chains, fixed and
    /// parameterized two-qubit gates.
    fn batch_test_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h_layer();
        c.push(Gate::S, &[0], Parameter::None);
        for q in 0..n - 1 {
            c.push(Gate::RZZ, &[q, q + 1], Parameter::free("gamma_0", 2.0));
        }
        for q in 0..n {
            c.push(Gate::RX, &[q], Parameter::free("beta_0", 2.0));
            c.push(Gate::RY, &[q], Parameter::free("beta_0", 2.0));
        }
        c.cx(0, n - 1);
        c.push(Gate::RXX, &[1, 2], Parameter::free("gamma_0", 0.5));
        c
    }

    #[test]
    fn batch_execution_is_bitwise_identical_to_sequential() {
        for n in [4usize, 15] {
            let program = CompiledProgram::compile(&batch_test_circuit(n)).unwrap();
            for batch in [1usize, 2, 5] {
                let points: Vec<Vec<f64>> = (0..batch)
                    .map(|b| vec![0.3 + 0.17 * b as f64, -0.9 + 0.4 * b as f64])
                    .collect();
                let batched = program.run_batch(&points).unwrap();
                for (p, got) in points.iter().zip(&batched) {
                    let want = program.run(p).unwrap();
                    assert_states_bitwise_equal(got, &want);
                }
            }
        }
    }

    #[test]
    fn batch_scratch_reuse_matches_fresh_runs_bitwise() {
        let program = CompiledProgram::compile(&batch_test_circuit(5)).unwrap();
        let mut state = crate::batch::BatchStateVector::zero_states(5, 3).unwrap();
        for round in 0..3 {
            let points: Vec<Vec<f64>> = (0..3)
                .map(|b| vec![0.1 * (round + 1) as f64 + 0.2 * b as f64, -0.4])
                .collect();
            let flat: Vec<f64> = points.iter().flatten().copied().collect();
            program.execute_batch_into(&flat, &mut state).unwrap();
            for (b, p) in points.iter().enumerate() {
                assert_states_bitwise_equal(&state.state(b), &program.run(p).unwrap());
            }
        }
    }

    #[test]
    fn batch_parameter_and_width_errors() {
        let program = CompiledProgram::compile(&batch_test_circuit(4)).unwrap();
        let mut state = crate::batch::BatchStateVector::zero_states(4, 2).unwrap();
        assert!(matches!(
            program.execute_batch_into(&[0.1; 3], &mut state),
            Err(SimulatorError::WrongParameterCount {
                expected: 4,
                got: 3
            })
        ));
        let mut narrow = crate::batch::BatchStateVector::zero_states(3, 2).unwrap();
        assert!(matches!(
            program.execute_batch_into(&[0.1; 4], &mut narrow),
            Err(SimulatorError::WidthMismatch { .. })
        ));
        assert!(matches!(
            program.run_batch(&[vec![0.1]]),
            Err(SimulatorError::WrongParameterCount { .. })
        ));
        assert!(program.run_batch::<Vec<f64>>(&[]).unwrap().is_empty());
    }

    #[test]
    fn phase_lut_reproduces_table_bit_patterns() {
        let lut = PhaseLut::build(&[0.5, -0.0, 0.5, 0.0, 1.25, -0.0, 0.5, 1.25]);
        // -0.0 and 0.0 have distinct bit patterns and must stay distinct.
        assert_eq!(lut.values.len(), 4);
        let table: [f64; 8] = [0.5, -0.0, 0.5, 0.0, 1.25, -0.0, 0.5, 1.25];
        for (z, &theta) in table.iter().enumerate() {
            assert_eq!(lut.values[lut.index[z] as usize].to_bits(), theta.to_bits());
        }
    }

    #[test]
    fn non_diagonal_rotations_track_parameters() {
        let mut c = Circuit::new(2);
        c.push(Gate::RXX, &[0, 1], Parameter::free("t", 1.0));
        c.push(Gate::RYY, &[1, 0], Parameter::free("t", 0.5));
        let program = CompiledProgram::compile(&c).unwrap();
        let bound = c.bind(&[("t", 1.3)]).unwrap();
        let reference = StateVector::from_circuit(&bound).unwrap();
        let compiled = program.run(&[1.3]).unwrap();
        assert_states_close(&reference, &compiled, 1e-10);
    }
}
