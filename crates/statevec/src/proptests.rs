//! Property-based tests for the dense simulator.

use crate::compile::CompiledProgram;
use crate::expectation::{maxcut_diagonal, maxcut_expectation, zz_expectation};
use crate::state::StateVector;
use proptest::prelude::*;
use qcircuit::{Circuit, Gate, Parameter};

/// A random bound circuit over `n` qubits (subset of the gate alphabet that
/// exercises every kernel: single-qubit rotations, Cliffords, two-qubit
/// diagonal and non-diagonal gates).
fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::T),
        Just(Gate::RX),
        Just(Gate::RY),
        Just(Gate::RZ),
        Just(Gate::P),
        Just(Gate::CX),
        Just(Gate::CZ),
        Just(Gate::SWAP),
        Just(Gate::RZZ),
    ];
    proptest::collection::vec((gate, 0..n, 0..n, -3.2f64..3.2), 0..max_len).prop_map(
        move |instrs| {
            let mut c = Circuit::new(n);
            for (g, q0, q1, theta) in instrs {
                let param = if g.is_parameterized() {
                    Parameter::bound(theta)
                } else {
                    Parameter::None
                };
                if g.arity() == 1 {
                    c.push(g, &[q0], param);
                } else if q0 != q1 {
                    c.push(g, &[q0, q1], param);
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn norm_is_preserved(c in arb_circuit(5, 25)) {
        let s = StateVector::from_circuit(&c).unwrap();
        prop_assert!((s.norm_squared() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one(c in arb_circuit(4, 20)) {
        let s = StateVector::from_circuit(&c).unwrap();
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn circuit_then_inverse_restores_zero_state(c in arb_circuit(4, 15)) {
        let mut s = StateVector::zero_state(4).unwrap();
        s.apply_circuit(&c).unwrap();
        s.apply_circuit(&c.inverse().unwrap()).unwrap();
        let zero = StateVector::zero_state(4).unwrap();
        prop_assert!((s.fidelity(&zero) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn diagonal_circuit_preserves_computational_probabilities(
        thetas in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        // Diagonal gates (RZ, P, CZ, RZZ) leave measurement probabilities of a
        // basis state unchanged.
        let mut c = Circuit::new(3);
        c.x(1);
        c.rz(0, thetas[0]).p(1, thetas[1]).rzz(0, 2, thetas[2]).rz(2, thetas[3]);
        c.cz(0, 1);
        let s = StateVector::from_circuit(&c).unwrap();
        let p = s.probabilities();
        prop_assert!((p[0b010] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn maxcut_expectation_is_bounded(c in arb_circuit(4, 20)) {
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)];
        let s = StateVector::from_circuit(&c).unwrap();
        let e = maxcut_expectation(&s, &edges);
        prop_assert!(e >= -1e-9);
        prop_assert!(e <= 4.0 + 1e-9);
    }

    #[test]
    fn zz_expectation_within_unit_interval(c in arb_circuit(3, 15)) {
        let s = StateVector::from_circuit(&c).unwrap();
        let zz = zz_expectation(&s, 0, 2);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&zz));
    }

    #[test]
    fn compiled_program_matches_apply_circuit(c in arb_circuit(5, 30)) {
        let reference = StateVector::from_circuit(&c).unwrap();
        let compiled = CompiledProgram::compile(&c).unwrap().run(&[]).unwrap();
        for (a, b) in reference.amplitudes().iter().zip(compiled.amplitudes()) {
            prop_assert!((a - b).norm() < 1e-10, "amplitude {a} vs {b}");
        }
    }

    #[test]
    fn compiled_qaoa_template_matches_bound_simulation(
        edges in proptest::collection::vec((0usize..5, 0usize..5), 1..8),
        depth in 1usize..3,
        gammas in proptest::collection::vec(-2.0f64..2.0, 2),
        betas in proptest::collection::vec(-2.0f64..2.0, 2),
    ) {
        // A QAOA-shaped template: H layer, then per layer an RZZ cost pass
        // over the edges (shared gamma_k) and an RX mixer pass (shared
        // beta_k) — the exact shape the fused diagonal kernel targets.
        let mut c = Circuit::new(5);
        c.h_layer();
        for k in 0..depth {
            let gamma = format!("gamma_{k}");
            for &(u, v) in &edges {
                if u != v {
                    c.push(Gate::RZZ, &[u, v], Parameter::free(&gamma, 2.0));
                }
            }
            let beta = format!("beta_{k}");
            for q in 0..5 {
                c.push(Gate::RX, &[q], Parameter::free(&beta, 2.0));
            }
        }
        let program = CompiledProgram::compile(&c).unwrap();
        let mut assignments: Vec<(String, f64)> = Vec::new();
        let mut values = Vec::new();
        for name in program.param_names() {
            let (kind, idx) = name.split_once('_').unwrap();
            let k: usize = idx.parse().unwrap();
            let v = if kind == "gamma" { gammas[k] } else { betas[k] };
            assignments.push((name.clone(), v));
            values.push(v);
        }
        let refs: Vec<(&str, f64)> =
            assignments.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let bound = c.bind(&refs).unwrap();
        let reference = StateVector::from_circuit(&bound).unwrap();
        let compiled = program.run(&values).unwrap();
        for (a, b) in reference.amplitudes().iter().zip(compiled.amplitudes()) {
            prop_assert!((a - b).norm() < 1e-10, "amplitude {a} vs {b}");
        }
    }

    #[test]
    fn batched_execution_matches_sequential_bitwise(
        edges in proptest::collection::vec((0usize..5, 0usize..5), 1..8),
        depth in 1usize..3,
        points in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, 4), 1..7),
    ) {
        // Same QAOA-shaped template as above; every batch element gets its
        // own angles and must come out bit-for-bit equal to its own scalar
        // run.
        let mut c = Circuit::new(5);
        c.h_layer();
        for k in 0..depth {
            let gamma = format!("gamma_{k}");
            for &(u, v) in &edges {
                if u != v {
                    c.push(Gate::RZZ, &[u, v], Parameter::free(&gamma, 2.0));
                }
            }
            let beta = format!("beta_{k}");
            for q in 0..5 {
                c.push(Gate::RX, &[q], Parameter::free(&beta, 2.0));
            }
        }
        let program = CompiledProgram::compile(&c).unwrap();
        let np = program.num_params();
        let points: Vec<Vec<f64>> =
            points.into_iter().map(|p| p[..np].to_vec()).collect();
        let batched = program.run_batch(&points).unwrap();
        for (p, got) in points.iter().zip(&batched) {
            let want = program.run(p).unwrap();
            for (a, b) in got.amplitudes().iter().zip(want.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn maxcut_diagonal_matches_per_state_values(
        edges in proptest::collection::vec((0usize..4, 0usize..4, 0.1f64..2.0), 1..6),
    ) {
        let edges: Vec<(usize, usize, f64)> =
            edges.into_iter().filter(|(u, v, _)| u != v).collect();
        let diag = maxcut_diagonal(4, &edges);
        for (z, d) in diag.iter().enumerate() {
            let direct = crate::expectation::maxcut_value_of_basis_state(&edges, z);
            prop_assert!((d - direct).abs() < 1e-12);
        }
    }
}
