//! Property-based tests for the dense simulator.

use crate::expectation::{maxcut_expectation, zz_expectation};
use crate::state::StateVector;
use proptest::prelude::*;
use qcircuit::{Circuit, Gate, Parameter};

/// A random bound circuit over `n` qubits (subset of the gate alphabet that
/// exercises every kernel: single-qubit rotations, Cliffords, two-qubit
/// diagonal and non-diagonal gates).
fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::T),
        Just(Gate::RX),
        Just(Gate::RY),
        Just(Gate::RZ),
        Just(Gate::P),
        Just(Gate::CX),
        Just(Gate::CZ),
        Just(Gate::SWAP),
        Just(Gate::RZZ),
    ];
    proptest::collection::vec((gate, 0..n, 0..n, -3.2f64..3.2), 0..max_len).prop_map(
        move |instrs| {
            let mut c = Circuit::new(n);
            for (g, q0, q1, theta) in instrs {
                let param = if g.is_parameterized() {
                    Parameter::bound(theta)
                } else {
                    Parameter::None
                };
                if g.arity() == 1 {
                    c.push(g, &[q0], param);
                } else if q0 != q1 {
                    c.push(g, &[q0, q1], param);
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn norm_is_preserved(c in arb_circuit(5, 25)) {
        let s = StateVector::from_circuit(&c).unwrap();
        prop_assert!((s.norm_squared() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one(c in arb_circuit(4, 20)) {
        let s = StateVector::from_circuit(&c).unwrap();
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn circuit_then_inverse_restores_zero_state(c in arb_circuit(4, 15)) {
        let mut s = StateVector::zero_state(4).unwrap();
        s.apply_circuit(&c).unwrap();
        s.apply_circuit(&c.inverse().unwrap()).unwrap();
        let zero = StateVector::zero_state(4).unwrap();
        prop_assert!((s.fidelity(&zero) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn diagonal_circuit_preserves_computational_probabilities(
        thetas in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        // Diagonal gates (RZ, P, CZ, RZZ) leave measurement probabilities of a
        // basis state unchanged.
        let mut c = Circuit::new(3);
        c.x(1);
        c.rz(0, thetas[0]).p(1, thetas[1]).rzz(0, 2, thetas[2]).rz(2, thetas[3]);
        c.cz(0, 1);
        let s = StateVector::from_circuit(&c).unwrap();
        let p = s.probabilities();
        prop_assert!((p[0b010] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn maxcut_expectation_is_bounded(c in arb_circuit(4, 20)) {
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)];
        let s = StateVector::from_circuit(&c).unwrap();
        let e = maxcut_expectation(&s, &edges);
        prop_assert!(e >= -1e-9);
        prop_assert!(e <= 4.0 + 1e-9);
    }

    #[test]
    fn zz_expectation_within_unit_interval(c in arb_circuit(3, 15)) {
        let s = StateVector::from_circuit(&c).unwrap();
        let zz = zz_expectation(&s, 0, 2);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&zz));
    }
}
