//! Expectation values of diagonal cost operators.
//!
//! The QAOA cost function (Eq. 1 of the paper) is diagonal in the
//! computational basis, so its expectation over a state is a weighted sum of
//! measurement probabilities. The helpers here evaluate it directly from the
//! state's probability distribution without materializing the full `2^n`
//! diagonal when given a problem or an edge list.
//!
//! The problem-generic entry points ([`problem_expectation`],
//! [`problem_diagonal`]) work for any [`Problem`] — an arbitrary diagonal
//! cost Hamiltonian — and evaluate Max-Cut problems bit-identically to the
//! historical edge-list helpers ([`maxcut_expectation`],
//! [`maxcut_diagonal`]), which are kept for the paper-faithful call sites.

use crate::state::StateVector;
use graphs::Problem;
use rayon::prelude::*;

/// The Max-Cut cost of a basis state `z` (bitmask) for the given edge list:
/// `C(z) = Σ w_uv · [z_u ≠ z_v]`.
pub fn maxcut_value_of_basis_state(edges: &[(usize, usize, f64)], z: usize) -> f64 {
    edges
        .iter()
        .map(|&(u, v, w)| {
            let bu = (z >> u) & 1;
            let bv = (z >> v) & 1;
            if bu != bv {
                w
            } else {
                0.0
            }
        })
        .sum()
}

/// `⟨ψ| C_MC |ψ⟩` for the Max-Cut Hamiltonian of the given edge list.
///
/// For registers at or above the Rayon threshold the sum over basis states is
/// parallelized; below it a sequential loop is faster.
pub fn maxcut_expectation(state: &StateVector, edges: &[(usize, usize, f64)]) -> f64 {
    let probs = state.probabilities();
    if state.num_qubits() >= crate::parallel_threshold_qubits() {
        probs
            .par_iter()
            .enumerate()
            .map(|(z, p)| p * maxcut_value_of_basis_state(edges, z))
            .sum()
    } else {
        probs
            .iter()
            .enumerate()
            .map(|(z, p)| p * maxcut_value_of_basis_state(edges, z))
            .sum()
    }
}

/// The full `2^n` diagonal of the Max-Cut Hamiltonian for an edge list:
/// `diag[z] = C(z)`.
///
/// Building this once per graph and reusing it across optimizer iterations
/// (via [`StateVector::expectation_diagonal`]) replaces the per-evaluation
/// `O(2^n · |E|)` cut recomputation of [`maxcut_expectation`] with an
/// `O(2^n)` dot product. The build itself is parallelized above the
/// [`crate::parallel_threshold_qubits`] crossover.
pub fn maxcut_diagonal(num_qubits: usize, edges: &[(usize, usize, f64)]) -> Vec<f64> {
    let dim = 1usize << num_qubits;
    let mut diag = vec![0.0f64; dim];
    let fill = |out: &mut [f64], base: usize| {
        for (off, d) in out.iter_mut().enumerate() {
            *d = maxcut_value_of_basis_state(edges, base + off);
        }
    };
    if num_qubits >= crate::parallel_threshold_qubits() {
        crate::state::par_chunks_with_base(&mut diag, fill);
    } else {
        fill(&mut diag, 0);
    }
    diag
}

/// `⟨ψ| C |ψ⟩` for an arbitrary diagonal cost [`Problem`].
///
/// The problem-generic twin of [`maxcut_expectation`]: the sum over basis
/// states is parallelized at or above the Rayon threshold. Max-Cut problems
/// evaluate bit-identically to the edge-list path.
pub fn problem_expectation(state: &StateVector, problem: &Problem) -> f64 {
    let probs = state.probabilities();
    if state.num_qubits() >= crate::parallel_threshold_qubits() {
        probs
            .par_iter()
            .enumerate()
            .map(|(z, p)| p * problem.value_mask(z as u64))
            .sum()
    } else {
        probs
            .iter()
            .enumerate()
            .map(|(z, p)| p * problem.value_mask(z as u64))
            .sum()
    }
}

/// The full `2^n` diagonal of an arbitrary diagonal cost [`Problem`]:
/// `diag[z] = C(z)`.
///
/// The problem-generic twin of [`maxcut_diagonal`]; this is what the
/// compiled QAOA objective caches per problem + graph and reuses across all
/// optimizer iterations via [`StateVector::expectation_diagonal`]. The build
/// is parallelized above the [`crate::parallel_threshold_qubits`] crossover.
pub fn problem_diagonal(problem: &Problem) -> Vec<f64> {
    let num_qubits = problem.num_spins();
    let dim = 1usize << num_qubits;
    let mut diag = vec![0.0f64; dim];
    let fill = |out: &mut [f64], base: usize| {
        for (off, d) in out.iter_mut().enumerate() {
            *d = problem.value_mask((base + off) as u64);
        }
    };
    if num_qubits >= crate::parallel_threshold_qubits() {
        crate::state::par_chunks_with_base(&mut diag, fill);
    } else {
        fill(&mut diag, 0);
    }
    diag
}

/// Expectation of a single `Z_u Z_v` correlator.
pub fn zz_expectation(state: &StateVector, u: usize, v: usize) -> f64 {
    let bu = 1usize << u;
    let bv = 1usize << v;
    state
        .amplitudes()
        .iter()
        .enumerate()
        .map(|(z, a)| {
            let sign = if ((z & bu != 0) as u8) ^ ((z & bv != 0) as u8) == 1 {
                -1.0
            } else {
                1.0
            };
            sign * a.norm_sqr()
        })
        .sum()
}

/// Expectation of a single `Z_u` operator.
pub fn z_expectation(state: &StateVector, u: usize) -> f64 {
    let bu = 1usize << u;
    state
        .amplitudes()
        .iter()
        .enumerate()
        .map(|(z, a)| {
            if z & bu != 0 {
                -a.norm_sqr()
            } else {
                a.norm_sqr()
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Circuit;

    #[test]
    fn maxcut_value_counts_cut_edges() {
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)];
        // z = 0b001: node 0 on one side, nodes 1,2 on the other -> edges (0,1),(0,2) cut.
        assert_eq!(maxcut_value_of_basis_state(&edges, 0b001), 2.0);
        // All same side: nothing cut.
        assert_eq!(maxcut_value_of_basis_state(&edges, 0b000), 0.0);
        assert_eq!(maxcut_value_of_basis_state(&edges, 0b111), 0.0);
    }

    #[test]
    fn expectation_on_plus_state_is_half_total_weight() {
        // Each edge is cut with probability 1/2 in the uniform superposition.
        let edges = vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)];
        let state = StateVector::plus_state(4).unwrap();
        let expected = 0.5 * (1.0 + 2.0 + 1.0);
        assert!((maxcut_expectation(&state, &edges) - expected).abs() < 1e-12);
    }

    #[test]
    fn expectation_on_basis_state_is_exact_cut() {
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0)];
        let mut c = Circuit::new(3);
        c.x(1); // |010>: node 1 separated from 0 and 2 -> both edges cut
        let state = StateVector::from_circuit(&c).unwrap();
        assert!((maxcut_expectation(&state, &edges) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zz_expectation_signs() {
        let s0 = StateVector::zero_state(2).unwrap();
        assert!((zz_expectation(&s0, 0, 1) - 1.0).abs() < 1e-12);
        let mut c = Circuit::new(2);
        c.x(0);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((zz_expectation(&s, 0, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_expectation_on_plus_is_zero() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!(z_expectation(&s, 0).abs() < 1e-12);
    }

    #[test]
    fn problem_expectation_matches_maxcut_path_bitwise() {
        let g = graphs::Graph::erdos_renyi(6, 0.5, 17);
        let problem = Problem::max_cut(&g);
        let edges: Vec<(usize, usize, f64)> =
            g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        let mut c = Circuit::new(6);
        c.h_layer();
        c.rzz(0, 1, 0.7).rx(2, 0.4).ry(3, 1.2).rzz(4, 5, -0.3);
        let state = StateVector::from_circuit(&c).unwrap();
        let legacy = maxcut_expectation(&state, &edges);
        let generic = problem_expectation(&state, &problem);
        assert_eq!(legacy.to_bits(), generic.to_bits());
    }

    #[test]
    fn problem_diagonal_matches_maxcut_diagonal_bitwise() {
        let g = graphs::Graph::erdos_renyi(7, 0.5, 23);
        let problem = Problem::max_cut(&g);
        let edges: Vec<(usize, usize, f64)> =
            g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        let legacy = maxcut_diagonal(7, &edges);
        let generic = problem_diagonal(&problem);
        assert_eq!(legacy.len(), generic.len());
        for (a, b) in legacy.iter().zip(&generic) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn problem_expectation_on_plus_state_is_the_diagonal_mean() {
        // The uniform superposition weights every basis state equally, so
        // ⟨C⟩ is the mean of the diagonal — for any problem.
        let g = graphs::Graph::erdos_renyi(6, 0.5, 3);
        for problem in [
            Problem::max_cut(&g),
            Problem::weighted_max_cut(&g, 5),
            Problem::max_independent_set(&g, 2.0),
            Problem::sherrington_kirkpatrick(&g, 5),
            Problem::random_partition(&g, 5),
        ] {
            let state = StateVector::plus_state(6).unwrap();
            let diag = problem_diagonal(&problem);
            let mean = diag.iter().sum::<f64>() / diag.len() as f64;
            let e = problem_expectation(&state, &problem);
            assert!(
                (e - mean).abs() < 1e-10,
                "{}: {e} vs mean {mean}",
                problem.name()
            );
        }
    }

    #[test]
    fn problem_expectation_on_basis_state_is_the_problem_value() {
        let g = graphs::Graph::cycle(4);
        let problem = Problem::max_independent_set(&g, 2.0);
        let mut c = Circuit::new(4);
        c.x(0).x(2); // mask 0b0101: the independent set {0, 2} of C4.
        let state = StateVector::from_circuit(&c).unwrap();
        let e = problem_expectation(&state, &problem);
        assert!((e - problem.value_mask(0b0101)).abs() < 1e-12);
        assert!((e - 2.0).abs() < 1e-12, "alpha(C4) = 2, got {e}");
    }

    #[test]
    fn maxcut_expectation_relates_to_zz() {
        // <C> = sum_e w_e (1 - <Z_u Z_v>) / 2
        let edges = vec![(0, 1, 1.0), (1, 2, 1.5)];
        let mut c = Circuit::new(3);
        c.h_layer();
        c.rzz(0, 1, 0.7).rx(0, 0.4).ry(2, 1.2);
        let s = StateVector::from_circuit(&c).unwrap();
        let via_zz: f64 = edges
            .iter()
            .map(|&(u, v, w)| 0.5 * w * (1.0 - zz_expectation(&s, u, v)))
            .sum();
        assert!((maxcut_expectation(&s, &edges) - via_zz).abs() < 1e-10);
    }
}
