//! The dense state vector and its gate-application kernels.

use crate::error::SimulatorError;
use crate::PARALLEL_THRESHOLD_QUBITS;
use num_complex::Complex64;
use qcircuit::{Circuit, GateMatrix};
use rayon::prelude::*;

/// Hard cap on dense-simulation width (2^30 amplitudes = 16 GiB of
/// `Complex64`; well above anything the paper's experiments need).
pub const MAX_DENSE_QUBITS: usize = 30;

/// A dense `2^n`-amplitude quantum state.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0⟩`.
    pub fn zero_state(num_qubits: usize) -> Result<Self, SimulatorError> {
        if num_qubits > MAX_DENSE_QUBITS {
            return Err(SimulatorError::TooManyQubits {
                num_qubits,
                max: MAX_DENSE_QUBITS,
            });
        }
        let mut amplitudes = vec![Complex64::new(0.0, 0.0); 1usize << num_qubits];
        amplitudes[0] = Complex64::new(1.0, 0.0);
        Ok(StateVector {
            num_qubits,
            amplitudes,
        })
    }

    /// The uniform superposition `|+⟩^{⊗n}` (the QAOA initial state).
    pub fn plus_state(num_qubits: usize) -> Result<Self, SimulatorError> {
        if num_qubits > MAX_DENSE_QUBITS {
            return Err(SimulatorError::TooManyQubits {
                num_qubits,
                max: MAX_DENSE_QUBITS,
            });
        }
        let dim = 1usize << num_qubits;
        let amp = Complex64::new(1.0 / (dim as f64).sqrt(), 0.0);
        Ok(StateVector {
            num_qubits,
            amplitudes: vec![amp; dim],
        })
    }

    /// Build a state from raw amplitudes (length must be a power of two).
    pub fn from_amplitudes(amplitudes: Vec<Complex64>) -> Self {
        assert!(
            amplitudes.len().is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let num_qubits = amplitudes.len().trailing_zeros() as usize;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// Simulate `circuit` starting from `|0...0⟩`.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimulatorError> {
        let mut state = StateVector::zero_state(circuit.num_qubits())?;
        state.apply_circuit(circuit)?;
        Ok(state)
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitude slice (index = basis state, qubit 0 least
    /// significant).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amplitudes
    }

    /// `⟨ψ|ψ⟩` — should remain 1 under unitary evolution.
    pub fn norm_squared(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.num_qubits, other.num_qubits, "state width mismatch");
        self.amplitudes
            .iter()
            .zip(&other.amplitudes)
            .map(|(a, b)| a.conj() * b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Apply every instruction of a (fully bound) circuit in order.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimulatorError> {
        for inst in circuit.instructions() {
            let matrix = inst.matrix(&|name| {
                // No external assignments: free parameters are an error.
                let _ = name;
                None
            });
            match matrix {
                Some(m) => self.apply_matrix(&m, &inst.qubits),
                None => {
                    let name = inst.parameter.name().unwrap_or("<unknown>").to_string();
                    return Err(SimulatorError::UnboundParameter { name });
                }
            }
        }
        Ok(())
    }

    /// Apply a gate matrix to the given qubit operands.
    pub fn apply_matrix(&mut self, matrix: &GateMatrix, qubits: &[usize]) {
        match matrix {
            GateMatrix::One(m) => self.apply_single_qubit(m, qubits[0]),
            GateMatrix::Two(m) => self.apply_two_qubit(m, qubits[0], qubits[1]),
        }
    }

    /// Apply a 2×2 matrix to qubit `target`.
    pub fn apply_single_qubit(&mut self, m: &[Complex64; 4], target: usize) {
        debug_assert!(target < self.num_qubits);
        let stride = 1usize << target;
        let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);

        let work = |chunk: &mut [Complex64], base: usize| {
            // chunk covers indices [base, base + chunk.len())
            for offset in 0..chunk.len() {
                let idx = base + offset;
                if idx & stride == 0 {
                    // paired index idx | stride must live in the same chunk
                    let a = chunk[offset];
                    let b = chunk[offset + stride];
                    chunk[offset] = m00 * a + m01 * b;
                    chunk[offset + stride] = m10 * a + m11 * b;
                }
            }
        };

        if self.num_qubits >= PARALLEL_THRESHOLD_QUBITS {
            // Chunks of size 2*stride keep index pairs within one chunk,
            // so parallel mutation is safe.
            let chunk_size = (2 * stride).max(1);
            self.amplitudes
                .par_chunks_mut(chunk_size)
                .enumerate()
                .for_each(|(i, chunk)| work(chunk, i * chunk_size));
        } else {
            let chunk_size = (2 * stride).max(1);
            for (i, chunk) in self.amplitudes.chunks_mut(chunk_size).enumerate() {
                work(chunk, i * chunk_size);
            }
        }
    }

    /// Apply a 4×4 matrix to the ordered pair `(q1, q0)`; the matrix basis is
    /// `|q1 q0⟩` with `q1` the most-significant bit (matching
    /// [`qcircuit::GateMatrix`]'s convention where the first operand is the
    /// control / first tensor factor).
    pub fn apply_two_qubit(&mut self, m: &[Complex64; 16], q1: usize, q0: usize) {
        debug_assert!(q1 != q0);
        debug_assert!(q1 < self.num_qubits && q0 < self.num_qubits);
        let bit1 = 1usize << q1;
        let bit0 = 1usize << q0;
        let dim = self.amplitudes.len();

        let apply_at = |amps: &mut Vec<Complex64>, idx: usize| {
            // idx has both operand bits clear.
            let i00 = idx;
            let i01 = idx | bit0;
            let i10 = idx | bit1;
            let i11 = idx | bit1 | bit0;
            let a00 = amps[i00];
            let a01 = amps[i01];
            let a10 = amps[i10];
            let a11 = amps[i11];
            // Matrix basis order: |00>, |01>, |10>, |11> with q1 as MSB.
            amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
            amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
            amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
            amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
        };

        if self.num_qubits >= PARALLEL_THRESHOLD_QUBITS {
            // Parallel version: collect the base indices first, then process
            // disjoint groups. Basis indices with both bits clear are disjoint
            // across groups, so we chunk the full range and let each task
            // handle its own quarter of the work via unsafe-free copy.
            let indices: Vec<usize> = (0..dim)
                .into_par_iter()
                .filter(|idx| idx & bit1 == 0 && idx & bit0 == 0)
                .collect();
            // The groups touch disjoint amplitude quadruples, but Rayon can't
            // prove that, so fall back to sequential application over the
            // precomputed index list (the filter above was the parallel part).
            for idx in indices {
                apply_at(&mut self.amplitudes, idx);
            }
        } else {
            for idx in 0..dim {
                if idx & bit1 == 0 && idx & bit0 == 0 {
                    apply_at(&mut self.amplitudes, idx);
                }
            }
        }
    }

    /// Expectation value `⟨ψ| D |ψ⟩` of a diagonal observable given as its
    /// diagonal entries (length `2^n`).
    pub fn expectation_diagonal(&self, diagonal: &[f64]) -> Result<f64, SimulatorError> {
        if diagonal.len() != self.amplitudes.len() {
            return Err(SimulatorError::DimensionMismatch {
                observable: diagonal.len(),
                state: self.amplitudes.len(),
            });
        }
        Ok(self
            .amplitudes
            .iter()
            .zip(diagonal)
            .map(|(a, d)| a.norm_sqr() * d)
            .sum())
    }

    /// Probability of measuring qubit `q` in state `|1⟩`.
    pub fn probability_of_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Gate, Parameter};
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(3).unwrap();
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.norm_squared() - 1.0).abs() < 1e-12);
        assert!((s.amplitudes()[0].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plus_state_is_uniform() {
        let s = StateVector::plus_state(4).unwrap();
        for p in s.probabilities() {
            assert!((p - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn too_many_qubits_is_rejected() {
        assert!(matches!(
            StateVector::zero_state(31),
            Err(SimulatorError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn hadamard_creates_superposition() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.amplitudes()[0].re - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((s.amplitudes()[1].re - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn x_flips_the_qubit() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_via_h_cx() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = StateVector::from_circuit(&c).unwrap();
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01] < 1e-12 && p[0b10] < 1e-12);
    }

    #[test]
    fn cx_control_qubit_convention() {
        // Control = qubit 1 (first operand), target = qubit 0.
        let mut c = Circuit::new(2);
        c.x(1); // set control
        c.cx(1, 0);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.probabilities()[0b11] - 1.0).abs() < 1e-12);

        // Control not set: nothing happens.
        let mut c2 = Circuit::new(2);
        c2.cx(1, 0);
        let s2 = StateVector::from_circuit(&c2).unwrap();
        assert!((s2.probabilities()[0b00] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rx_pi_acts_like_x() {
        let mut c = Circuit::new(1);
        c.rx(0, PI);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rz_only_changes_phase() {
        let mut c = Circuit::new(1);
        c.h(0).rz(0, 1.234);
        let s = StateVector::from_circuit(&c).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rzz_introduces_correlated_phase() {
        // On |++>, RZZ followed by the inverse rotation must return to |++>.
        let mut c = Circuit::new(2);
        c.h(0).h(1).rzz(0, 1, 0.8).rzz(0, 1, -0.8);
        let s = StateVector::from_circuit(&c).unwrap();
        let plus = StateVector::plus_state(2).unwrap();
        assert!((s.fidelity(&plus) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn norm_is_preserved_by_random_circuit() {
        let mut c = Circuit::new(4);
        c.h_layer();
        c.rx(0, 0.3).ry(1, 1.1).rz(2, -0.4);
        c.cx(0, 1).cz(2, 3).rzz(1, 2, 0.9);
        c.push(Gate::SWAP, &[0, 3], Parameter::None);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.norm_squared() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unbound_parameter_is_an_error() {
        let mut c = Circuit::new(1);
        c.push(Gate::RX, &[0], Parameter::free("beta", 1.0));
        assert!(matches!(
            StateVector::from_circuit(&c),
            Err(SimulatorError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn expectation_of_diagonal_observable() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = StateVector::from_circuit(&c).unwrap();
        // Observable Z has diagonal (+1, -1): expectation on |+> is 0.
        let z = s.expectation_diagonal(&[1.0, -1.0]).unwrap();
        assert!(z.abs() < 1e-12);
        // On |0> it is +1.
        let s0 = StateVector::zero_state(1).unwrap();
        assert!((s0.expectation_diagonal(&[1.0, -1.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_dimension_mismatch() {
        let s = StateVector::zero_state(2).unwrap();
        assert!(matches!(
            s.expectation_diagonal(&[1.0, 2.0]),
            Err(SimulatorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn probability_of_one_tracks_x() {
        let mut c = Circuit::new(3);
        c.x(2);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!(s.probability_of_one(2) > 0.999);
        assert!(s.probability_of_one(0) < 1e-12);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.push(Gate::SWAP, &[0, 1], Parameter::None);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_of_orthogonal_states_is_zero() {
        let s0 = StateVector::zero_state(2).unwrap();
        let mut c = Circuit::new(2);
        c.x(0);
        let s1 = StateVector::from_circuit(&c).unwrap();
        assert!(s0.inner_product(&s1).norm() < 1e-12);
        assert!((s0.inner_product(&s0).re - 1.0).abs() < 1e-12);
    }
}
