//! The dense state vector and its gate-application kernels.
//!
//! The kernels are the hot loop of the whole architecture search (every
//! optimizer iteration of every candidate simulates one circuit), so they
//! avoid per-index bit tests and per-gate allocations:
//!
//! * the single-qubit kernel iterates amplitude *pairs* directly, walking
//!   blocks of `2·stride` and zipping the two halves — no bit test per index;
//! * the two-qubit kernel enumerates the `2^n / 4` base indices by
//!   bit-interleaving, so contiguous ranges of the base-index space map to
//!   disjoint amplitude quadruples and can be updated from multiple threads
//!   without collecting an index vector;
//! * diagonal operators are applied as a single multiply pass via
//!   [`StateVector::apply_phase_table`] (used by the fused cost-layer kernel
//!   of [`crate::CompiledProgram`]).

use crate::error::SimulatorError;
use crate::parallel_threshold_qubits;
use num_complex::Complex64;
use qcircuit::{Circuit, GateMatrix};
use rayon::prelude::*;
use std::ops::Range;

/// Raw amplitude pointer that can cross `std::thread::scope` boundaries.
///
/// Used only by the two-qubit kernels (scalar here, batched in
/// [`crate::batch`]), which partition the base-index space into disjoint
/// per-thread ranges; every base index expands to a unique amplitude
/// quadruple, so no two threads ever touch the same amplitude.
#[derive(Clone, Copy)]
pub(crate) struct AmpPtr(pub(crate) *mut Complex64);

impl AmpPtr {
    /// Accessor used inside worker closures; going through a method makes
    /// the closure capture the whole `Sync` wrapper rather than the raw
    /// pointer field (edition-2021 disjoint capture).
    pub(crate) fn get(self) -> *mut Complex64 {
        self.0
    }
}

// SAFETY: the pointer is only dereferenced at indices derived from disjoint
// base-index ranges (see `apply_two_qubit`); distinct ranges address disjoint
// amplitude quadruples, so concurrent access never aliases.
unsafe impl Send for AmpPtr {}
unsafe impl Sync for AmpPtr {}

/// Split `0..total` into one contiguous range per worker thread and run `f`
/// on each range in parallel (honouring [`rayon::ThreadPool::install`]
/// overrides). Runs inline when one thread suffices.
pub(crate) fn par_index_ranges(total: usize, f: impl Fn(Range<usize>) + Sync) {
    let threads = rayon::current_num_threads().clamp(1, total.max(1));
    if threads <= 1 {
        f(0..total);
        return;
    }
    let chunk = total.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(total);
            if start >= end {
                break;
            }
            scope.spawn(move || f(start..end));
        }
    });
}

/// Chunk size for `par_chunks_mut` kernels: a multiple of `block` close to
/// an even split across the worker threads, so each thread gets one chunk.
pub(crate) fn parallel_chunk_size(dim: usize, block: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    let per_thread = (dim / threads).max(block);
    (per_thread / block) * block
}

/// Run `f(chunk, base_index)` over one contiguous chunk of `data` per worker
/// thread. Shared by the table-building passes (`maxcut_diagonal`, compiled
/// angle tables) so the thread-count/chunking logic lives in one place.
pub(crate) fn par_chunks_with_base<T: Send>(data: &mut [T], f: impl Fn(&mut [T], usize) + Sync) {
    let threads = rayon::current_num_threads().clamp(1, data.len().max(1));
    if threads <= 1 {
        f(data, 0);
        return;
    }
    let chunk = data.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        for (i, part) in data.chunks_mut(chunk).enumerate() {
            scope.spawn(move || f(part, i * chunk));
        }
    });
}

/// Sum `f(range)` over one contiguous subrange of `0..total` per worker
/// thread (the reduction twin of [`par_chunks_with_base`]).
pub(crate) fn par_sum_ranges(total: usize, f: impl Fn(Range<usize>) -> f64 + Sync) -> f64 {
    let threads = rayon::current_num_threads().clamp(1, total.max(1));
    if threads <= 1 {
        return f(0..total);
    }
    let chunk = total.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| (t * chunk, ((t + 1) * chunk).min(total)))
            .take_while(|(start, end)| start < end)
            .map(|(start, end)| scope.spawn(move || f(start..end)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduction worker panicked"))
            .sum()
    })
}

/// Hard cap on dense-simulation width (2^30 amplitudes = 16 GiB of
/// `Complex64`; well above anything the paper's experiments need).
pub const MAX_DENSE_QUBITS: usize = 30;

/// A dense `2^n`-amplitude quantum state.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0⟩`.
    pub fn zero_state(num_qubits: usize) -> Result<Self, SimulatorError> {
        if num_qubits > MAX_DENSE_QUBITS {
            return Err(SimulatorError::TooManyQubits {
                num_qubits,
                max: MAX_DENSE_QUBITS,
            });
        }
        let mut amplitudes = vec![Complex64::new(0.0, 0.0); 1usize << num_qubits];
        amplitudes[0] = Complex64::new(1.0, 0.0);
        Ok(StateVector {
            num_qubits,
            amplitudes,
        })
    }

    /// The uniform superposition `|+⟩^{⊗n}` (the QAOA initial state).
    pub fn plus_state(num_qubits: usize) -> Result<Self, SimulatorError> {
        if num_qubits > MAX_DENSE_QUBITS {
            return Err(SimulatorError::TooManyQubits {
                num_qubits,
                max: MAX_DENSE_QUBITS,
            });
        }
        let dim = 1usize << num_qubits;
        let amp = Complex64::new(1.0 / (dim as f64).sqrt(), 0.0);
        Ok(StateVector {
            num_qubits,
            amplitudes: vec![amp; dim],
        })
    }

    /// Build a state from raw amplitudes (length must be a power of two).
    pub fn from_amplitudes(amplitudes: Vec<Complex64>) -> Result<Self, SimulatorError> {
        if !amplitudes.len().is_power_of_two() {
            return Err(SimulatorError::InvalidAmplitudeCount {
                count: amplitudes.len(),
            });
        }
        let num_qubits = amplitudes.len().trailing_zeros() as usize;
        Ok(StateVector {
            num_qubits,
            amplitudes,
        })
    }

    /// Reset to `|0...0⟩` in place, without reallocating.
    pub fn reset_zero(&mut self) {
        self.amplitudes.fill(Complex64::new(0.0, 0.0));
        self.amplitudes[0] = Complex64::new(1.0, 0.0);
    }

    /// Reset to the uniform superposition `|+⟩^{⊗n}` in place, without
    /// reallocating — one fill instead of an `H` kernel pass per qubit.
    pub fn reset_plus(&mut self) {
        let amp = Complex64::new(1.0 / (self.amplitudes.len() as f64).sqrt(), 0.0);
        self.amplitudes.fill(amp);
    }

    /// Simulate `circuit` starting from `|0...0⟩`.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, SimulatorError> {
        let mut state = StateVector::zero_state(circuit.num_qubits())?;
        state.apply_circuit(circuit)?;
        Ok(state)
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitude slice (index = basis state, qubit 0 least
    /// significant).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amplitudes
    }

    /// `⟨ψ|ψ⟩` — should remain 1 under unitary evolution.
    pub fn norm_squared(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.num_qubits, other.num_qubits, "state width mismatch");
        self.amplitudes
            .iter()
            .zip(&other.amplitudes)
            .map(|(a, b)| a.conj() * b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Apply every instruction of a (fully bound) circuit in order.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimulatorError> {
        for inst in circuit.instructions() {
            let matrix = inst.matrix(&|name| {
                // No external assignments: free parameters are an error.
                let _ = name;
                None
            });
            match matrix {
                Some(m) => self.apply_matrix(&m, &inst.qubits),
                None => {
                    let name = inst.parameter.name().unwrap_or("<unknown>").to_string();
                    return Err(SimulatorError::UnboundParameter { name });
                }
            }
        }
        Ok(())
    }

    /// Apply a gate matrix to the given qubit operands.
    pub fn apply_matrix(&mut self, matrix: &GateMatrix, qubits: &[usize]) {
        match matrix {
            GateMatrix::One(m) => self.apply_single_qubit(m, qubits[0]),
            GateMatrix::Two(m) => self.apply_two_qubit(m, qubits[0], qubits[1]),
        }
    }

    /// Apply a 2×2 matrix to qubit `target`.
    ///
    /// Stride-free kernel: each block of `2·stride` amplitudes is split into
    /// its lower and upper halves and the pairs are updated by zipping the two
    /// halves — no per-index bit test. Chunks handed to worker threads are
    /// multiples of the block size, so pairs never straddle a chunk boundary.
    pub fn apply_single_qubit(&mut self, m: &[Complex64; 4], target: usize) {
        // A hard check, not a debug_assert: an out-of-range target would make
        // `block` exceed the slice and silently skip the gate.
        assert!(
            target < self.num_qubits,
            "qubit {target} out of range for a {}-qubit state",
            self.num_qubits
        );
        let stride = 1usize << target;
        let block = 2 * stride;
        let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);

        let work = |chunk: &mut [Complex64]| {
            for pairs in chunk.chunks_exact_mut(block) {
                let (lo, hi) = pairs.split_at_mut(stride);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    let x = *a;
                    let y = *b;
                    *a = m00 * x + m01 * y;
                    *b = m10 * x + m11 * y;
                }
            }
        };

        if self.num_qubits >= parallel_threshold_qubits() {
            let chunk_size = parallel_chunk_size(self.amplitudes.len(), block);
            self.amplitudes.par_chunks_mut(chunk_size).for_each(work);
        } else {
            work(&mut self.amplitudes);
        }
    }

    /// Apply a 4×4 matrix to the ordered pair `(q1, q0)`; the matrix basis is
    /// `|q1 q0⟩` with `q1` the most-significant bit (matching
    /// [`qcircuit::GateMatrix`]'s convention where the first operand is the
    /// control / first tensor factor).
    /// Bit-interleaved kernel: the `2^n / 4` base indices (both operand bits
    /// clear) are enumerated directly by expanding a dense counter `k` —
    /// inserting zero bits at the two operand positions — instead of testing
    /// every index. Contiguous ranges of `k` map to disjoint amplitude
    /// quadruples, so the range is split across worker threads with no index
    /// vector and no sequential fallback.
    pub fn apply_two_qubit(&mut self, m: &[Complex64; 16], q1: usize, q0: usize) {
        // Hard checks, not debug_asserts: the kernel below writes through raw
        // pointers, so invalid operands must panic rather than corrupt memory.
        assert!(q1 != q0, "two-qubit gate needs distinct operands, got {q1}");
        assert!(
            q1 < self.num_qubits && q0 < self.num_qubits,
            "qubits ({q1}, {q0}) out of range for a {}-qubit state",
            self.num_qubits
        );
        let bit1 = 1usize << q1;
        let bit0 = 1usize << q0;
        let (lo, hi) = (q1.min(q0), q1.max(q0));
        // k's bits [0, lo) stay put, bits [lo, hi-1) shift up one, the rest
        // shift up two — leaving zeros at positions `lo` and `hi`.
        let lo_mask = (1usize << lo) - 1;
        let mid_mask = ((1usize << (hi - 1)) - 1) & !lo_mask;
        let hi_mask = !(lo_mask | mid_mask);
        let quads = self.amplitudes.len() / 4;
        let m = *m;

        let ptr = AmpPtr(self.amplitudes.as_mut_ptr());
        let work = move |range: Range<usize>| {
            let amps = ptr.get();
            for k in range {
                let base = (k & lo_mask) | ((k & mid_mask) << 1) | ((k & hi_mask) << 2);
                let i00 = base;
                let i01 = base | bit0;
                let i10 = base | bit1;
                let i11 = base | bit1 | bit0;
                // SAFETY: `base` has both operand bits clear and the expansion
                // k -> base is injective, so the quadruples of distinct k are
                // disjoint; the per-thread ranges of k are disjoint too, hence
                // no aliasing. All four indices are < 2^n by construction.
                unsafe {
                    let a00 = *amps.add(i00);
                    let a01 = *amps.add(i01);
                    let a10 = *amps.add(i10);
                    let a11 = *amps.add(i11);
                    // Matrix basis order: |00>, |01>, |10>, |11> with q1 as MSB.
                    *amps.add(i00) = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
                    *amps.add(i01) = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
                    *amps.add(i10) = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
                    *amps.add(i11) = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
                }
            }
        };

        if self.num_qubits >= parallel_threshold_qubits() {
            par_index_ranges(quads, work);
        } else {
            work(0..quads);
        }
    }

    /// Multiply every amplitude by `e^{i·scale·angles[z]}` — the fused
    /// diagonal-phase kernel. A whole QAOA cost layer (one `RZZ` per edge)
    /// collapses into a single call with `scale = γ` and a precomputed,
    /// parameter-independent angle table (see [`crate::CompiledProgram`]).
    pub fn apply_phase_table(&mut self, angles: &[f64], scale: f64) -> Result<(), SimulatorError> {
        if angles.len() != self.amplitudes.len() {
            return Err(SimulatorError::DimensionMismatch {
                observable: angles.len(),
                state: self.amplitudes.len(),
            });
        }
        let work = |amps: &mut [Complex64], angles: &[f64]| {
            for (a, &theta) in amps.iter_mut().zip(angles) {
                *a *= Complex64::from_polar(1.0, scale * theta);
            }
        };
        if self.num_qubits >= parallel_threshold_qubits() {
            let chunk_size = parallel_chunk_size(self.amplitudes.len(), 1).max(1);
            self.amplitudes
                .par_chunks_mut(chunk_size)
                .enumerate()
                .for_each(|(i, chunk)| {
                    let start = i * chunk_size;
                    work(chunk, &angles[start..start + chunk.len()]);
                });
        } else {
            work(&mut self.amplitudes, angles);
        }
        Ok(())
    }

    /// Expectation value `⟨ψ| D |ψ⟩` of a diagonal observable given as its
    /// diagonal entries (length `2^n`).
    pub fn expectation_diagonal(&self, diagonal: &[f64]) -> Result<f64, SimulatorError> {
        if diagonal.len() != self.amplitudes.len() {
            return Err(SimulatorError::DimensionMismatch {
                observable: diagonal.len(),
                state: self.amplitudes.len(),
            });
        }
        let partial = |range: Range<usize>| -> f64 {
            self.amplitudes[range.clone()]
                .iter()
                .zip(&diagonal[range])
                .map(|(a, d)| a.norm_sqr() * d)
                .sum::<f64>()
        };
        if self.num_qubits >= parallel_threshold_qubits() {
            Ok(par_sum_ranges(self.amplitudes.len(), partial))
        } else {
            Ok(partial(0..self.amplitudes.len()))
        }
    }

    /// Probability of measuring qubit `q` in state `|1⟩`.
    pub fn probability_of_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Gate, Parameter};
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(3).unwrap();
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.norm_squared() - 1.0).abs() < 1e-12);
        assert!((s.amplitudes()[0].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plus_state_is_uniform() {
        let s = StateVector::plus_state(4).unwrap();
        for p in s.probabilities() {
            assert!((p - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn too_many_qubits_is_rejected() {
        assert!(matches!(
            StateVector::zero_state(31),
            Err(SimulatorError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn hadamard_creates_superposition() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.amplitudes()[0].re - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((s.amplitudes()[1].re - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn x_flips_the_qubit() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_via_h_cx() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = StateVector::from_circuit(&c).unwrap();
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01] < 1e-12 && p[0b10] < 1e-12);
    }

    #[test]
    fn cx_control_qubit_convention() {
        // Control = qubit 1 (first operand), target = qubit 0.
        let mut c = Circuit::new(2);
        c.x(1); // set control
        c.cx(1, 0);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.probabilities()[0b11] - 1.0).abs() < 1e-12);

        // Control not set: nothing happens.
        let mut c2 = Circuit::new(2);
        c2.cx(1, 0);
        let s2 = StateVector::from_circuit(&c2).unwrap();
        assert!((s2.probabilities()[0b00] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rx_pi_acts_like_x() {
        let mut c = Circuit::new(1);
        c.rx(0, PI);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rz_only_changes_phase() {
        let mut c = Circuit::new(1);
        c.h(0).rz(0, 1.234);
        let s = StateVector::from_circuit(&c).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rzz_introduces_correlated_phase() {
        // On |++>, RZZ followed by the inverse rotation must return to |++>.
        let mut c = Circuit::new(2);
        c.h(0).h(1).rzz(0, 1, 0.8).rzz(0, 1, -0.8);
        let s = StateVector::from_circuit(&c).unwrap();
        let plus = StateVector::plus_state(2).unwrap();
        assert!((s.fidelity(&plus) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn norm_is_preserved_by_random_circuit() {
        let mut c = Circuit::new(4);
        c.h_layer();
        c.rx(0, 0.3).ry(1, 1.1).rz(2, -0.4);
        c.cx(0, 1).cz(2, 3).rzz(1, 2, 0.9);
        c.push(Gate::SWAP, &[0, 3], Parameter::None);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.norm_squared() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unbound_parameter_is_an_error() {
        let mut c = Circuit::new(1);
        c.push(Gate::RX, &[0], Parameter::free("beta", 1.0));
        assert!(matches!(
            StateVector::from_circuit(&c),
            Err(SimulatorError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn expectation_of_diagonal_observable() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = StateVector::from_circuit(&c).unwrap();
        // Observable Z has diagonal (+1, -1): expectation on |+> is 0.
        let z = s.expectation_diagonal(&[1.0, -1.0]).unwrap();
        assert!(z.abs() < 1e-12);
        // On |0> it is +1.
        let s0 = StateVector::zero_state(1).unwrap();
        assert!((s0.expectation_diagonal(&[1.0, -1.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_dimension_mismatch() {
        let s = StateVector::zero_state(2).unwrap();
        assert!(matches!(
            s.expectation_diagonal(&[1.0, 2.0]),
            Err(SimulatorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn probability_of_one_tracks_x() {
        let mut c = Circuit::new(3);
        c.x(2);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!(s.probability_of_one(2) > 0.999);
        assert!(s.probability_of_one(0) < 1e-12);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.push(Gate::SWAP, &[0, 1], Parameter::None);
        let s = StateVector::from_circuit(&c).unwrap();
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_kernels_agree_with_naive_application() {
        // Large enough to cross the default parallel threshold (14 qubits),
        // so the multi-threaded single-qubit, two-qubit and phase-table
        // paths all run; the reference is a naive bit-test implementation.
        let n = 15;
        let mut c = Circuit::new(n);
        c.h_layer();
        c.rzz(0, 7, 0.9).rzz(3, 14, -0.4).rx(5, 1.3);
        let mut state = StateVector::from_circuit(&c).unwrap();
        let mut naive = state.amplitudes().to_vec();

        // Single-qubit RY on qubit 11.
        let (m1, t1) = (GateMatrix::of(Gate::RY, 0.77), 11usize);
        // Two-qubit RXX on (14, 2) — includes the top qubit, the worst case
        // for chunk-based parallel schemes.
        let (m2, q1, q0) = (GateMatrix::of(Gate::RXX, -1.1), 14usize, 2usize);
        state.apply_matrix(&m1, &[t1]);
        state.apply_matrix(&m2, &[q1, q0]);

        if let GateMatrix::One(m) = &m1 {
            let stride = 1usize << t1;
            for idx in 0..naive.len() {
                if idx & stride == 0 {
                    let a = naive[idx];
                    let b = naive[idx | stride];
                    naive[idx] = m[0] * a + m[1] * b;
                    naive[idx | stride] = m[2] * a + m[3] * b;
                }
            }
        }
        if let GateMatrix::Two(m) = &m2 {
            let (bit1, bit0) = (1usize << q1, 1usize << q0);
            for idx in 0..naive.len() {
                if idx & bit1 == 0 && idx & bit0 == 0 {
                    let (i00, i01, i10, i11) = (idx, idx | bit0, idx | bit1, idx | bit1 | bit0);
                    let (a00, a01, a10, a11) = (naive[i00], naive[i01], naive[i10], naive[i11]);
                    naive[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
                    naive[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
                    naive[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
                    naive[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
                }
            }
        }
        for (a, b) in state.amplitudes().iter().zip(&naive) {
            assert!((a - b).norm() < 1e-12);
        }

        // Phase table: a parameter-scaled diagonal pass must equal per-index
        // multiplication.
        let angles: Vec<f64> = (0..naive.len()).map(|z| (z % 7) as f64 * 0.3).collect();
        state.apply_phase_table(&angles, 0.5).unwrap();
        for (idx, b) in naive.iter_mut().enumerate() {
            *b *= Complex64::from_polar(1.0, 0.5 * angles[idx]);
        }
        for (a, b) in state.amplitudes().iter().zip(&naive) {
            assert!((a - b).norm() < 1e-12);
        }
    }

    #[test]
    fn parallel_kernels_agree_across_multiple_worker_threads() {
        // Force a 4-thread pool (this box may have a single CPU, where the
        // scoped-thread path would otherwise collapse to one inline range)
        // and check the threaded kernels against a single-threaded run.
        let n = 15;
        let mut c = Circuit::new(n);
        c.h_layer();
        c.rzz(2, 9, 0.6).rx(0, 0.8).ry(n - 1, -0.5);
        let reference = StateVector::from_circuit(&c).unwrap();

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let threaded = pool.install(|| {
            let mut s = StateVector::from_circuit(&c).unwrap();
            let m2 = GateMatrix::of(Gate::RXX, 1.9);
            s.apply_matrix(&m2, &[n - 1, 3]);
            s
        });
        let mut expected = reference.clone();
        expected.apply_matrix(&GateMatrix::of(Gate::RXX, 1.9), &[n - 1, 3]);
        for (a, b) in threaded.amplitudes().iter().zip(expected.amplitudes()) {
            assert!((a - b).norm() < 1e-12);
        }
        assert!((threaded.norm_squared() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_amplitudes_rejects_non_power_of_two() {
        let amps = vec![Complex64::new(1.0, 0.0); 3];
        assert!(matches!(
            StateVector::from_amplitudes(amps),
            Err(SimulatorError::InvalidAmplitudeCount { count: 3 })
        ));
        let ok =
            StateVector::from_amplitudes(vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 0.0)])
                .unwrap();
        assert_eq!(ok.num_qubits(), 1);
    }

    #[test]
    fn reset_zero_restores_the_zero_state() {
        let mut c = Circuit::new(3);
        c.h_layer();
        let mut s = StateVector::from_circuit(&c).unwrap();
        s.reset_zero();
        assert_eq!(s, StateVector::zero_state(3).unwrap());
    }

    #[test]
    fn inner_product_of_orthogonal_states_is_zero() {
        let s0 = StateVector::zero_state(2).unwrap();
        let mut c = Circuit::new(2);
        c.x(0);
        let s1 = StateVector::from_circuit(&c).unwrap();
        assert!(s0.inner_product(&s1).norm() < 1e-12);
        assert!((s0.inner_product(&s0).re - 1.0).abs() < 1e-12);
    }
}
