//! # statevec — dense state-vector simulator
//!
//! A straightforward, exact quantum-circuit simulator that stores all `2^n`
//! complex amplitudes. It plays the role of Qiskit's statevector simulator in
//! the original QArchSearch stack and doubles as the ground-truth oracle that
//! the tensor-network backend (`tensornet`) is validated against.
//!
//! * Qubit `0` is the least-significant bit of the basis-state index.
//! * Single-qubit and two-qubit gate kernels are cache-friendly, bit-test-free
//!   loops; for registers at or above [`parallel_threshold_qubits`] the
//!   amplitude updates are split across threads (this is the *inner* level of
//!   the paper's two-level parallelization scheme — the outer level
//!   parallelizes over candidate circuits).
//! * [`CompiledProgram`] lowers a circuit once into specialized kernels with
//!   parameter slots — fused diagonal cost layers, per-qubit gate chains, a
//!   recognized `|+⟩^{⊗n}` preparation — for allocation-free re-evaluation
//!   inside variational training loops.
//! * Expectation values of diagonal cost operators (the Max-Cut Hamiltonian)
//!   are computed directly from the probability distribution, or from a
//!   cached diagonal via [`expectation::maxcut_diagonal`].
//!
//! ```
//! use qcircuit::Circuit;
//! use statevec::StateVector;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let state = StateVector::from_circuit(&c).unwrap();
//! let probs = state.probabilities();
//! assert!((probs[0b00] - 0.5).abs() < 1e-12);
//! assert!((probs[0b11] - 0.5).abs() < 1e-12);
//! ```

pub mod compile;
pub mod error;
pub mod expectation;
pub mod sampling;
pub mod state;

pub use compile::CompiledProgram;
pub use error::SimulatorError;
pub use state::StateVector;

/// Default number of qubits above which gate kernels switch to
/// thread-parallel iteration. Small registers are faster single-threaded
/// because the per-task overhead dominates; 14 qubits (16384 amplitudes,
/// 256 KiB) is where the kernels start winning from extra cores on typical
/// desktop and server CPUs. Override per machine with the
/// `QAS_PARALLEL_THRESHOLD` environment variable (see
/// [`parallel_threshold_qubits`]).
pub const PARALLEL_THRESHOLD_QUBITS: usize = 14;

/// The active parallelization crossover, in qubits.
///
/// Reads the `QAS_PARALLEL_THRESHOLD` environment variable once (on first
/// call, via [`std::sync::OnceLock`]) so the crossover can be tuned per
/// machine without recompiling; unset, empty or unparsable values fall back
/// to [`PARALLEL_THRESHOLD_QUBITS`]. Setting a large value (e.g. `99`)
/// effectively disables kernel-level parallelism, which is useful for the
/// single-core baselines of the paper's scaling experiments.
pub fn parallel_threshold_qubits() -> usize {
    static THRESHOLD: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("QAS_PARALLEL_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(PARALLEL_THRESHOLD_QUBITS)
    })
}

#[cfg(test)]
mod proptests;
