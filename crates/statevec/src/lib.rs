//! # statevec — dense state-vector simulator
//!
//! A straightforward, exact quantum-circuit simulator that stores all `2^n`
//! complex amplitudes. It plays the role of Qiskit's statevector simulator in
//! the original QArchSearch stack and doubles as the ground-truth oracle that
//! the tensor-network backend (`tensornet`) is validated against.
//!
//! * Qubit `0` is the least-significant bit of the basis-state index.
//! * Single-qubit and two-qubit gate kernels are cache-friendly strided loops;
//!   for larger registers the amplitude updates are parallelized with Rayon
//!   (this is the *inner* level of the paper's two-level parallelization
//!   scheme — the outer level parallelizes over candidate circuits).
//! * Expectation values of diagonal cost operators (the Max-Cut Hamiltonian)
//!   are computed directly from the probability distribution.
//!
//! ```
//! use qcircuit::Circuit;
//! use statevec::StateVector;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let state = StateVector::from_circuit(&c).unwrap();
//! let probs = state.probabilities();
//! assert!((probs[0b00] - 0.5).abs() < 1e-12);
//! assert!((probs[0b11] - 0.5).abs() < 1e-12);
//! ```

pub mod error;
pub mod expectation;
pub mod sampling;
pub mod state;

pub use error::SimulatorError;
pub use state::StateVector;

/// Number of qubits above which gate kernels switch to Rayon-parallel
/// iteration. Small registers are faster single-threaded because the
/// per-task overhead dominates.
pub const PARALLEL_THRESHOLD_QUBITS: usize = 14;

#[cfg(test)]
mod proptests;
