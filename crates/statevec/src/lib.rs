//! # statevec — dense state-vector simulator
//!
//! A straightforward, exact quantum-circuit simulator that stores all `2^n`
//! complex amplitudes. It plays the role of Qiskit's statevector simulator in
//! the original QArchSearch stack and doubles as the ground-truth oracle that
//! the tensor-network backend (`tensornet`) is validated against.
//!
//! * Qubit `0` is the least-significant bit of the basis-state index.
//! * Single-qubit and two-qubit gate kernels are cache-friendly, bit-test-free
//!   loops; for registers at or above [`parallel_threshold_qubits`] the
//!   amplitude updates are split across threads (this is the *inner* level of
//!   the paper's two-level parallelization scheme — the outer level
//!   parallelizes over candidate circuits).
//! * [`CompiledProgram`] lowers a circuit once into specialized kernels with
//!   parameter slots — fused diagonal cost layers, per-qubit gate chains, a
//!   recognized `|+⟩^{⊗n}` preparation — for allocation-free re-evaluation
//!   inside variational training loops.
//! * Expectation values of diagonal cost operators (the Max-Cut Hamiltonian)
//!   are computed directly from the probability distribution, or from a
//!   cached diagonal via [`expectation::maxcut_diagonal`].
//!
//! ```
//! use qcircuit::Circuit;
//! use statevec::StateVector;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let state = StateVector::from_circuit(&c).unwrap();
//! let probs = state.probabilities();
//! assert!((probs[0b00] - 0.5).abs() < 1e-12);
//! assert!((probs[0b11] - 0.5).abs() < 1e-12);
//! ```

pub mod batch;
pub mod compile;
pub mod error;
pub mod expectation;
pub mod sampling;
pub mod state;

pub use batch::BatchStateVector;
pub use compile::CompiledProgram;
pub use error::SimulatorError;
pub use state::StateVector;

/// Default number of qubits above which gate kernels switch to
/// thread-parallel iteration. Small registers are faster single-threaded
/// because the per-task overhead dominates; 14 qubits (16384 amplitudes,
/// 256 KiB) is where the kernels start winning from extra cores on typical
/// desktop and server CPUs. Override per machine with the
/// `QAS_PARALLEL_THRESHOLD` environment variable (see
/// [`parallel_threshold_qubits`]).
pub const PARALLEL_THRESHOLD_QUBITS: usize = 14;

/// The active parallelization crossover, in qubits.
///
/// Reads the `QAS_PARALLEL_THRESHOLD` environment variable once (on first
/// call, via [`std::sync::OnceLock`]) so the crossover can be tuned per
/// machine without recompiling; unset, empty or unparsable values fall back
/// to [`PARALLEL_THRESHOLD_QUBITS`]. Setting a large value (e.g. `99`)
/// effectively disables kernel-level parallelism, which is useful for the
/// single-core baselines of the paper's scaling experiments.
pub fn parallel_threshold_qubits() -> usize {
    static THRESHOLD: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("QAS_PARALLEL_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(PARALLEL_THRESHOLD_QUBITS)
    })
}

/// Preferred number of batch elements to simulate per sweep for an `n`-qubit
/// register, capped at `batch`.
///
/// The structure-of-arrays buffer of [`BatchStateVector`] holds
/// `2^n · tile` amplitudes; keeping that under a few MiB preserves the
/// cache residency the scalar kernels enjoy across a program's ~dozens of
/// passes, while still amortizing each angle-table lookup over several
/// states. The ~4 MiB budget gives tile 4 at n = 16 and larger tiles for
/// smaller registers; the floor of 2 keeps the lookup amortization even when
/// one state already fills the budget. Tiling never affects results — batch
/// elements are arithmetically independent — so this is purely a performance
/// knob, overridable per machine with the `QAS_BATCH_TILE` environment
/// variable.
pub fn preferred_batch_tile(num_qubits: usize, batch: usize) -> usize {
    static TILE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    let forced = *TILE.get_or_init(|| {
        std::env::var("QAS_BATCH_TILE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
    });
    if batch <= 1 {
        return batch.max(1);
    }
    if let Some(t) = forced {
        return t.min(batch);
    }
    let state_bytes = (1usize << num_qubits) * std::mem::size_of::<num_complex::Complex64>();
    let budget = 4usize << 20;
    (budget / state_bytes.max(1)).clamp(2, 32).min(batch)
}

#[cfg(test)]
mod proptests;
