//! Error types for the state-vector simulator.

use thiserror::Error;

/// Errors produced while simulating a circuit on the dense backend.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum SimulatorError {
    /// The circuit contains unbound parameters.
    #[error("cannot simulate circuit with unbound parameter '{name}'")]
    UnboundParameter {
        /// Name of the unbound parameter.
        name: String,
    },

    /// The register is too large to allocate.
    #[error("{num_qubits} qubits exceed the dense-simulation limit of {max} qubits")]
    TooManyQubits {
        /// Requested register width.
        num_qubits: usize,
        /// Supported maximum.
        max: usize,
    },

    /// An observable was supplied with the wrong dimension.
    #[error("observable has {observable} entries but the state has {state} amplitudes")]
    DimensionMismatch {
        /// Observable length.
        observable: usize,
        /// State length.
        state: usize,
    },
}
