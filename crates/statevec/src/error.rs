//! Error types for the state-vector simulator.

use thiserror::Error;

/// Errors produced while simulating a circuit on the dense backend.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum SimulatorError {
    /// The circuit contains unbound parameters.
    #[error("cannot simulate circuit with unbound parameter '{name}'")]
    UnboundParameter {
        /// Name of the unbound parameter.
        name: String,
    },

    /// The register is too large to allocate.
    #[error("{num_qubits} qubits exceed the dense-simulation limit of {max} qubits")]
    TooManyQubits {
        /// Requested register width.
        num_qubits: usize,
        /// Supported maximum.
        max: usize,
    },

    /// An observable was supplied with the wrong dimension.
    #[error("observable has {observable} entries but the state has {state} amplitudes")]
    DimensionMismatch {
        /// Observable length.
        observable: usize,
        /// State length.
        state: usize,
    },

    /// A raw amplitude vector was supplied whose length is not a power of two.
    #[error("amplitude count {count} is not a power of two")]
    InvalidAmplitudeCount {
        /// Supplied amplitude count.
        count: usize,
    },

    /// A compiled program was executed with the wrong number of parameter
    /// values.
    #[error("compiled program expects {expected} parameter values, got {got}")]
    WrongParameterCount {
        /// Slots declared by the program.
        expected: usize,
        /// Values supplied at execution.
        got: usize,
    },

    /// A compiled program was executed on a state of the wrong width.
    #[error("compiled program is for {program} qubits but the state has {state}")]
    WidthMismatch {
        /// Program width.
        program: usize,
        /// State width.
        state: usize,
    },
}
