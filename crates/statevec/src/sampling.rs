//! Measurement sampling from a state vector.
//!
//! QArchSearch's evaluator works with exact expectation values, but sampling
//! is needed for shot-based estimates (and for the sampling-frequency analyses
//! that the QTensor line of work explores). Sampling is seeded and
//! reproducible.

use crate::state::StateVector;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Draw `shots` basis-state samples from the measurement distribution of
/// `state`, returning a map from basis state to observed count.
pub fn sample_counts(state: &StateVector, shots: usize, seed: u64) -> HashMap<usize, usize> {
    let probs = state.probabilities();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut counts: HashMap<usize, usize> = HashMap::new();

    // Cumulative distribution for inverse-transform sampling.
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in &probs {
        acc += p;
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);

    for _ in 0..shots {
        let r: f64 = rng.gen::<f64>() * total;
        let idx = match cdf.binary_search_by(|x| x.partial_cmp(&r).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(probs.len() - 1),
        };
        *counts.entry(idx).or_insert(0) += 1;
    }
    counts
}

/// Estimate the expectation of a diagonal cost function from sampled counts.
pub fn estimate_expectation_from_counts(
    counts: &HashMap<usize, usize>,
    cost: &dyn Fn(usize) -> f64,
) -> f64 {
    let total: usize = counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .map(|(&z, &n)| cost(z) * n as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectation::maxcut_value_of_basis_state;
    use qcircuit::Circuit;

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let mut c = Circuit::new(3);
        c.x(1);
        let s = StateVector::from_circuit(&c).unwrap();
        let counts = sample_counts(&s, 100, 1);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&0b010], 100);
    }

    #[test]
    fn sampling_is_seeded_reproducible() {
        let s = StateVector::plus_state(3).unwrap();
        let a = sample_counts(&s, 500, 42);
        let b = sample_counts(&s, 500, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn bell_state_samples_only_correlated_outcomes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = StateVector::from_circuit(&c).unwrap();
        let counts = sample_counts(&s, 1000, 7);
        for &z in counts.keys() {
            assert!(z == 0b00 || z == 0b11, "unexpected outcome {z:02b}");
        }
        // Both outcomes should appear for 1000 shots.
        assert!(counts.len() == 2);
    }

    #[test]
    fn sampled_expectation_approaches_exact() {
        let edges = vec![(0usize, 1usize, 1.0f64), (1, 2, 1.0), (0, 2, 1.0)];
        let mut c = Circuit::new(3);
        c.h_layer();
        c.rzz(0, 1, 0.6).rzz(1, 2, 0.6).rzz(0, 2, 0.6);
        c.rx(0, 1.0).rx(1, 1.0).rx(2, 1.0);
        let s = StateVector::from_circuit(&c).unwrap();
        let exact = crate::expectation::maxcut_expectation(
            &s,
            &edges.iter().map(|&(u, v, w)| (u, v, w)).collect::<Vec<_>>(),
        );
        let counts = sample_counts(&s, 20_000, 3);
        let est =
            estimate_expectation_from_counts(&counts, &|z| maxcut_value_of_basis_state(&edges, z));
        assert!(
            (est - exact).abs() < 0.05,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn empty_counts_give_zero() {
        let counts = HashMap::new();
        assert_eq!(estimate_expectation_from_counts(&counts, &|_| 1.0), 0.0);
    }
}
