//! Predictors: the component that proposes candidate circuits.
//!
//! The released QArchSearch uses random search, "which has shown to be a
//! strong baseline in neural architecture search" (§2.1, citing Li &
//! Talwalkar). The paper lists learned search (RL / DNN controllers à la
//! Zoph & Le) as the planned extension; this module ships both:
//!
//! * [`RandomPredictor`] — uniform random gate sequences (the paper's
//!   released algorithm),
//! * [`ExhaustivePredictor`] — enumerate the full space (what the profiling
//!   experiments of §3.1 actually time),
//! * [`EpsilonGreedyPredictor`] — a per-slot bandit that exploits observed
//!   rewards,
//! * [`PolicyGradientPredictor`] — a softmax policy over gates per slot
//!   trained with REINFORCE, the lightweight stand-in for the "deep neural
//!   network based search" future-work direction.
//!
//! Predictors propose gate sequences of a requested length and receive the
//! evaluator's reward via [`Predictor::feedback`].

use crate::alphabet::GateAlphabet;
use qcircuit::Gate;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A strategy for proposing candidate mixer gate sequences.
pub trait Predictor: Send {
    /// Propose one gate sequence of exactly `k` gates.
    fn propose(&mut self, k: usize) -> Vec<Gate>;

    /// Receive the reward obtained by a previously proposed sequence.
    fn feedback(&mut self, gates: &[Gate], reward: f64);

    /// Score a candidate sequence under the predictor's current knowledge
    /// (higher = more promising). The search pipeline uses this as an
    /// optional **gate**: before the first successive-halving rung it ranks
    /// the proposed candidates by score and only admits the top fraction,
    /// so evaluation budget concentrates on sequences resembling past
    /// winners. Predictors without a learned model return 0 for every
    /// sequence (the gate then keeps proposal order).
    fn score(&self, _gates: &[Gate]) -> f64 {
        0.0
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

// --------------------------------------------------------------------------

/// Uniform random search over gate sequences (the paper's algorithm).
#[derive(Debug, Clone)]
pub struct RandomPredictor {
    alphabet: GateAlphabet,
    rng: ChaCha8Rng,
}

impl RandomPredictor {
    /// A random predictor over `alphabet` with a fixed seed.
    pub fn new(alphabet: GateAlphabet, seed: u64) -> RandomPredictor {
        RandomPredictor {
            alphabet,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Predictor for RandomPredictor {
    fn propose(&mut self, k: usize) -> Vec<Gate> {
        (0..k.max(1))
            .map(|_| {
                let i = self.rng.gen_range(0..self.alphabet.len());
                self.alphabet.gate_at(i).expect("index in range").gate()
            })
            .collect()
    }

    fn feedback(&mut self, _gates: &[Gate], _reward: f64) {
        // Random search ignores rewards.
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

// --------------------------------------------------------------------------

/// Exhaustive enumeration of every sequence of a given length, in
/// lexicographic order, cycling back to the start when exhausted.
#[derive(Debug, Clone)]
pub struct ExhaustivePredictor {
    alphabet: GateAlphabet,
    cursor: usize,
    current_k: usize,
}

impl ExhaustivePredictor {
    /// An exhaustive predictor over `alphabet`.
    pub fn new(alphabet: GateAlphabet) -> ExhaustivePredictor {
        ExhaustivePredictor {
            alphabet,
            cursor: 0,
            current_k: 0,
        }
    }

    /// Total number of sequences of length `k`.
    pub fn space_size(&self, k: usize) -> usize {
        self.alphabet.combination_count(k)
    }
}

impl Predictor for ExhaustivePredictor {
    fn propose(&mut self, k: usize) -> Vec<Gate> {
        let k = k.max(1);
        if k != self.current_k {
            self.current_k = k;
            self.cursor = 0;
        }
        let total = self.space_size(k);
        let mut idx = self.cursor % total;
        self.cursor = (self.cursor + 1) % total;
        // Decode idx in base |A_R|.
        let base = self.alphabet.len();
        let mut gates = vec![Gate::I; k];
        for slot in (0..k).rev() {
            let digit = idx % base;
            idx /= base;
            gates[slot] = self.alphabet.gate_at(digit).expect("digit in range").gate();
        }
        gates
    }

    fn feedback(&mut self, _gates: &[Gate], _reward: f64) {}

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

// --------------------------------------------------------------------------

/// An ε-greedy bandit with independent per-(slot, gate) value estimates.
#[derive(Debug, Clone)]
pub struct EpsilonGreedyPredictor {
    alphabet: GateAlphabet,
    epsilon: f64,
    /// values[slot][gate] = running mean reward; counts track sample sizes.
    values: Vec<Vec<f64>>,
    counts: Vec<Vec<usize>>,
    rng: ChaCha8Rng,
}

/// A serializable snapshot of an [`EpsilonGreedyPredictor`]'s learned
/// state (per-slot value estimates and sample counts).
///
/// Used by the search session layer to checkpoint the predictor-gate ranker
/// mid-search: restoring the state into a freshly seeded bandit reproduces
/// every subsequent [`Predictor::score`] bit for bit (scoring consumes no
/// randomness, so the RNG stream does not belong to the learned state).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BanditState {
    /// `values[slot][gate]` running mean rewards.
    pub values: Vec<Vec<f64>>,
    /// `counts[slot][gate]` sample counts.
    pub counts: Vec<Vec<usize>>,
}

impl EpsilonGreedyPredictor {
    /// A bandit predictor with exploration rate `epsilon` over `alphabet`.
    pub fn new(alphabet: GateAlphabet, epsilon: f64, seed: u64) -> EpsilonGreedyPredictor {
        EpsilonGreedyPredictor {
            alphabet,
            epsilon: epsilon.clamp(0.0, 1.0),
            values: Vec::new(),
            counts: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Snapshot the learned state (value estimates and counts).
    pub fn state(&self) -> BanditState {
        BanditState {
            values: self.values.clone(),
            counts: self.counts.clone(),
        }
    }

    /// Replace the learned state with a previously captured snapshot.
    pub fn restore_state(&mut self, state: BanditState) {
        self.values = state.values;
        self.counts = state.counts;
    }

    fn ensure_slots(&mut self, k: usize) {
        while self.values.len() < k {
            self.values.push(vec![0.0; self.alphabet.len()]);
            self.counts.push(vec![0; self.alphabet.len()]);
        }
    }

    /// The current greedy sequence of length `k` (highest value per slot).
    pub fn greedy_sequence(&self, k: usize) -> Vec<Gate> {
        (0..k)
            .map(|slot| {
                let best = self
                    .values
                    .get(slot)
                    .map(|vals| {
                        vals.iter()
                            .enumerate()
                            .max_by(|a, b| {
                                a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .map(|(i, _)| i)
                            .unwrap_or(0)
                    })
                    .unwrap_or(0);
                self.alphabet.gate_at(best).expect("index in range").gate()
            })
            .collect()
    }
}

impl Predictor for EpsilonGreedyPredictor {
    fn propose(&mut self, k: usize) -> Vec<Gate> {
        let k = k.max(1);
        self.ensure_slots(k);
        (0..k)
            .map(|slot| {
                let explore = self.rng.gen::<f64>() < self.epsilon;
                let idx = if explore {
                    self.rng.gen_range(0..self.alphabet.len())
                } else {
                    self.values[slot]
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                };
                self.alphabet.gate_at(idx).expect("index in range").gate()
            })
            .collect()
    }

    fn feedback(&mut self, gates: &[Gate], reward: f64) {
        self.ensure_slots(gates.len());
        for (slot, gate) in gates.iter().enumerate() {
            if let Some(gi) = self.alphabet.position(*gate) {
                let n = self.counts[slot][gi] + 1;
                self.counts[slot][gi] = n;
                let old = self.values[slot][gi];
                self.values[slot][gi] = old + (reward - old) / n as f64;
            }
        }
    }

    /// Mean learned value of the candidate's per-slot gate choices. A
    /// (slot, gate) pair the bandit has never observed scores the *mean of
    /// that slot's seen values* — rewards are Max-Cut energies (strictly
    /// positive), so a literal 0 would rank every unexplored sequence dead
    /// last instead of neutrally.
    fn score(&self, gates: &[Gate]) -> f64 {
        if gates.is_empty() {
            return 0.0;
        }
        let total: f64 = gates
            .iter()
            .enumerate()
            .map(|(slot, gate)| {
                let (Some(gi), Some(vals), Some(counts)) = (
                    self.alphabet.position(*gate),
                    self.values.get(slot),
                    self.counts.get(slot),
                ) else {
                    return 0.0;
                };
                if counts[gi] > 0 {
                    return vals[gi];
                }
                // Unseen pair: neutral prior = mean of the slot's seen values.
                let seen: Vec<f64> = vals
                    .iter()
                    .zip(counts)
                    .filter(|(_, &c)| c > 0)
                    .map(|(&v, _)| v)
                    .collect();
                if seen.is_empty() {
                    0.0
                } else {
                    seen.iter().sum::<f64>() / seen.len() as f64
                }
            })
            .sum();
        total / gates.len() as f64
    }

    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }
}

// --------------------------------------------------------------------------

/// A softmax policy over gates per slot, trained with REINFORCE and a running
/// baseline — the minimal "neural" controller in the spirit of Zoph & Le.
#[derive(Debug, Clone)]
pub struct PolicyGradientPredictor {
    alphabet: GateAlphabet,
    learning_rate: f64,
    /// logits[slot][gate].
    logits: Vec<Vec<f64>>,
    baseline: f64,
    baseline_count: usize,
    rng: ChaCha8Rng,
}

impl PolicyGradientPredictor {
    /// A policy-gradient predictor with the given learning rate and seed.
    pub fn new(alphabet: GateAlphabet, learning_rate: f64, seed: u64) -> PolicyGradientPredictor {
        PolicyGradientPredictor {
            alphabet,
            learning_rate,
            logits: Vec::new(),
            baseline: 0.0,
            baseline_count: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn ensure_slots(&mut self, k: usize) {
        while self.logits.len() < k {
            self.logits.push(vec![0.0; self.alphabet.len()]);
        }
    }

    fn softmax(logits: &[f64]) -> Vec<f64> {
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// The policy's probability distribution over gates for a slot.
    pub fn slot_distribution(&self, slot: usize) -> Vec<f64> {
        match self.logits.get(slot) {
            Some(l) => Self::softmax(l),
            None => vec![1.0 / self.alphabet.len() as f64; self.alphabet.len()],
        }
    }
}

impl Predictor for PolicyGradientPredictor {
    fn propose(&mut self, k: usize) -> Vec<Gate> {
        let k = k.max(1);
        self.ensure_slots(k);
        (0..k)
            .map(|slot| {
                let probs = Self::softmax(&self.logits[slot]);
                let r: f64 = self.rng.gen();
                let mut acc = 0.0;
                let mut chosen = probs.len() - 1;
                for (i, p) in probs.iter().enumerate() {
                    acc += p;
                    if r < acc {
                        chosen = i;
                        break;
                    }
                }
                self.alphabet
                    .gate_at(chosen)
                    .expect("index in range")
                    .gate()
            })
            .collect()
    }

    fn feedback(&mut self, gates: &[Gate], reward: f64) {
        self.ensure_slots(gates.len());
        // Running-mean baseline reduces the variance of the REINFORCE update.
        self.baseline_count += 1;
        self.baseline += (reward - self.baseline) / self.baseline_count as f64;
        let advantage = reward - self.baseline;

        for (slot, gate) in gates.iter().enumerate() {
            let Some(chosen) = self.alphabet.position(*gate) else {
                continue;
            };
            let probs = Self::softmax(&self.logits[slot]);
            for (i, p) in probs.iter().enumerate() {
                // ∂ log π(chosen) / ∂ logit_i = [i == chosen] − p_i.
                let grad = if i == chosen { 1.0 - p } else { -p };
                self.logits[slot][i] += self.learning_rate * advantage * grad;
            }
        }
    }

    /// Mean log-probability of the sequence under the current policy.
    fn score(&self, gates: &[Gate]) -> f64 {
        if gates.is_empty() {
            return 0.0;
        }
        let total: f64 = gates
            .iter()
            .enumerate()
            .map(|(slot, gate)| {
                let probs = self.slot_distribution(slot);
                self.alphabet
                    .position(*gate)
                    .map(|gi| probs[gi].max(1e-12).ln())
                    .unwrap_or(f64::MIN)
            })
            .sum();
        total / gates.len() as f64
    }

    fn name(&self) -> &'static str {
        "policy-gradient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet() -> GateAlphabet {
        GateAlphabet::paper_default()
    }

    #[test]
    fn random_predictor_respects_length_and_alphabet() {
        let mut p = RandomPredictor::new(alphabet(), 3);
        for k in 1..=4 {
            let seq = p.propose(k);
            assert_eq!(seq.len(), k);
            for g in seq {
                assert!(alphabet().position(g).is_some());
            }
        }
    }

    #[test]
    fn random_predictor_is_seeded() {
        let mut a = RandomPredictor::new(alphabet(), 9);
        let mut b = RandomPredictor::new(alphabet(), 9);
        assert_eq!(a.propose(3), b.propose(3));
        assert_eq!(a.propose(2), b.propose(2));
    }

    #[test]
    fn exhaustive_predictor_enumerates_whole_space() {
        let small = GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap();
        let mut p = ExhaustivePredictor::new(small.clone());
        let total = p.space_size(2);
        assert_eq!(total, 4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..total {
            let seq = p.propose(2);
            seen.insert(format!("{seq:?}"));
        }
        assert_eq!(seen.len(), 4);
        // Cycles back afterwards.
        let again = p.propose(2);
        assert!(seen.contains(&format!("{again:?}")));
    }

    #[test]
    fn exhaustive_predictor_resets_on_length_change() {
        let mut p = ExhaustivePredictor::new(alphabet());
        let first_k1 = p.propose(1);
        let _ = p.propose(1);
        let first_k2 = p.propose(2);
        assert_eq!(first_k2.len(), 2);
        // Switching back restarts the k=1 enumeration.
        let restart = p.propose(1);
        assert_eq!(first_k1, restart);
    }

    #[test]
    fn epsilon_greedy_learns_best_gate() {
        // Reward RX highly and everything else poorly: the greedy sequence
        // must converge to RX in every slot.
        let mut p = EpsilonGreedyPredictor::new(alphabet(), 0.3, 4);
        for _ in 0..200 {
            let seq = p.propose(2);
            let reward = seq.iter().filter(|&&g| g == Gate::RX).count() as f64 / seq.len() as f64;
            p.feedback(&seq, reward);
        }
        assert_eq!(p.greedy_sequence(2), vec![Gate::RX, Gate::RX]);
    }

    #[test]
    fn unseen_gates_score_the_slot_mean_not_zero() {
        let mut p = EpsilonGreedyPredictor::new(alphabet(), 0.0, 1);
        // Rewards are energy-scale (strictly positive).
        p.feedback(&[Gate::RX], 10.0);
        p.feedback(&[Gate::RY], 6.0);
        // RZ was never proposed: it must rank at the seen mean (8.0), i.e.
        // between RX and RY, not at 0 below everything.
        let rz = p.score(&[Gate::RZ]);
        assert!((rz - 8.0).abs() < 1e-12, "rz scored {rz}");
        assert!(p.score(&[Gate::RX]) > rz);
        assert!(p.score(&[Gate::RY]) < rz);
        // A completely untrained slot stays at 0 for everyone.
        assert_eq!(p.score(&[Gate::RX, Gate::RX]), 5.0); // slot 1 unseen -> 0
    }

    #[test]
    fn epsilon_zero_is_pure_exploitation() {
        let mut p = EpsilonGreedyPredictor::new(alphabet(), 0.0, 1);
        p.feedback(&[Gate::RY], 10.0);
        // With no exploration, every proposal picks the only rewarded gate.
        for _ in 0..5 {
            assert_eq!(p.propose(1), vec![Gate::RY]);
        }
    }

    #[test]
    fn policy_gradient_concentrates_on_rewarded_gate() {
        let mut p = PolicyGradientPredictor::new(alphabet(), 0.5, 7);
        for _ in 0..300 {
            let seq = p.propose(1);
            let reward = if seq[0] == Gate::RY { 1.0 } else { 0.0 };
            p.feedback(&seq, reward);
        }
        let dist = p.slot_distribution(0);
        let ry_idx = alphabet().position(Gate::RY).unwrap();
        let max_idx = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(max_idx, ry_idx, "distribution {dist:?}");
        assert!(dist[ry_idx] > 0.5);
    }

    #[test]
    fn policy_distribution_is_normalized() {
        let p = PolicyGradientPredictor::new(alphabet(), 0.1, 2);
        let d = p.slot_distribution(0);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn bandit_state_round_trip_preserves_scores() {
        let mut trained = EpsilonGreedyPredictor::new(alphabet(), 0.0, 5);
        trained.feedback(&[Gate::RX, Gate::RY], 4.5);
        trained.feedback(&[Gate::RY, Gate::RX], 2.25);

        // Through serde (the search checkpoint path) into a fresh bandit.
        let json = serde_json::to_string(&trained.state()).unwrap();
        let state: BanditState = serde_json::from_str(&json).unwrap();
        let mut restored = EpsilonGreedyPredictor::new(alphabet(), 0.0, 5);
        restored.restore_state(state);

        for seq in [
            vec![Gate::RX, Gate::RY],
            vec![Gate::RY, Gate::RX],
            vec![Gate::RZ],
        ] {
            assert_eq!(
                trained.score(&seq).to_bits(),
                restored.score(&seq).to_bits(),
                "{seq:?}"
            );
        }
        // Further feedback keeps the two in lockstep.
        trained.feedback(&[Gate::H], 1.0);
        restored.feedback(&[Gate::H], 1.0);
        assert_eq!(
            trained.score(&[Gate::H]).to_bits(),
            restored.score(&[Gate::H]).to_bits()
        );
    }

    #[test]
    fn predictor_names_are_distinct() {
        let names = [
            RandomPredictor::new(alphabet(), 0).name(),
            ExhaustivePredictor::new(alphabet()).name(),
            EpsilonGreedyPredictor::new(alphabet(), 0.1, 0).name(),
            PolicyGradientPredictor::new(alphabet(), 0.1, 0).name(),
        ];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
