//! The rotation-gate alphabet `A_R` and enumeration of gate combinations.
//!
//! The paper searches mixer layers built from combinations of `k = 1..K_max`
//! gates drawn from an alphabet with `|A_R| = 5`; together with depths
//! `p = 1..4` this yields the "2500 possible circuit combinations" of §3.1
//! (4 depths × 5⁴ ordered length-4 sequences = 2500). We enumerate **ordered
//! sequences with repetition**, which is the convention that reproduces that
//! count; the alphabet defaults to `{RX, RY, RZ, H, P}`, the set from which
//! all the mixers shown in the paper's figures are drawn.

use crate::error::SearchError;
use qcircuit::Gate;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A single-qubit gate eligible for a mixer layer.
///
/// This is a thin, validated wrapper over [`qcircuit::Gate`] restricted to
/// single-qubit gates, so alphabets can be (de)serialized and displayed with
/// the paper's lower-case mnemonics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RotationGate(Gate);

impl RotationGate {
    /// Wrap a gate; only single-qubit gates are accepted.
    pub fn new(gate: Gate) -> Result<RotationGate, SearchError> {
        if gate.arity() != 1 {
            return Err(SearchError::InvalidEncoding {
                message: format!("{gate} is not a single-qubit gate"),
            });
        }
        Ok(RotationGate(gate))
    }

    /// The underlying gate.
    pub fn gate(&self) -> Gate {
        self.0
    }

    /// Whether the gate carries a variational angle.
    pub fn is_parameterized(&self) -> bool {
        self.0.is_parameterized()
    }
}

impl fmt::Display for RotationGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.mnemonic())
    }
}

impl FromStr for RotationGate {
    type Err = SearchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let gate: Gate = s
            .parse()
            .map_err(|e: String| SearchError::InvalidEncoding { message: e })?;
        RotationGate::new(gate)
    }
}

/// The gate alphabet `A_R` from which mixer layers are assembled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateAlphabet {
    gates: Vec<RotationGate>,
}

impl GateAlphabet {
    /// An alphabet from an explicit gate list.
    pub fn new(gates: Vec<Gate>) -> Result<GateAlphabet, SearchError> {
        if gates.is_empty() {
            return Err(SearchError::EmptyAlphabet);
        }
        let gates = gates
            .into_iter()
            .map(RotationGate::new)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GateAlphabet { gates })
    }

    /// The paper's alphabet: `{RX, RY, RZ, H, P}` (|A_R| = 5).
    pub fn paper_default() -> GateAlphabet {
        GateAlphabet::new(vec![Gate::RX, Gate::RY, Gate::RZ, Gate::H, Gate::P])
            .expect("default alphabet is non-empty and single-qubit")
    }

    /// Parse an alphabet from lower-case mnemonics, e.g. `["rx", "h"]`.
    pub fn from_mnemonics(names: &[&str]) -> Result<GateAlphabet, SearchError> {
        if names.is_empty() {
            return Err(SearchError::EmptyAlphabet);
        }
        let gates = names
            .iter()
            .map(|n| n.parse::<RotationGate>())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GateAlphabet { gates })
    }

    /// Alphabet size |A_R|.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the alphabet is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in the alphabet.
    pub fn gates(&self) -> &[RotationGate] {
        &self.gates
    }

    /// Gate at position `i` (used to decode encodings).
    pub fn gate_at(&self, i: usize) -> Option<RotationGate> {
        self.gates.get(i).copied()
    }

    /// Position of a gate in the alphabet, if present.
    pub fn position(&self, gate: Gate) -> Option<usize> {
        self.gates.iter().position(|g| g.gate() == gate)
    }

    /// All ordered gate sequences of exactly length `k` (with repetition):
    /// `|A_R|^k` sequences, the paper's GET_COMBINATIONS(A_R, k).
    pub fn combinations(&self, k: usize) -> Vec<Vec<Gate>> {
        let mut out = Vec::with_capacity(self.len().pow(k as u32));
        let mut current = Vec::with_capacity(k);
        self.combinations_rec(k, &mut current, &mut out);
        out
    }

    fn combinations_rec(&self, k: usize, current: &mut Vec<Gate>, out: &mut Vec<Vec<Gate>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for g in &self.gates {
            current.push(g.gate());
            self.combinations_rec(k, current, out);
            current.pop();
        }
    }

    /// All sequences of length `1..=k_max`, concatenated in increasing
    /// length order.
    pub fn all_combinations_up_to(&self, k_max: usize) -> Vec<Vec<Gate>> {
        let mut out = Vec::new();
        for k in 1..=k_max {
            out.extend(self.combinations(k));
        }
        out
    }

    /// Number of length-`k` sequences without materializing them.
    pub fn combination_count(&self, k: usize) -> usize {
        self.len().pow(k as u32)
    }

    /// Total number of candidate circuit evaluations for a full search over
    /// depths `1..=p_max` with per-depth sequences of length exactly `k`
    /// (the paper's accounting: 4 depths × 5⁴ = 2500).
    pub fn search_space_size(&self, p_max: usize, k: usize) -> usize {
        p_max * self.combination_count(k)
    }
}

impl fmt::Display for GateAlphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.gates.iter().map(|g| g.to_string()).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_alphabet_has_five_gates() {
        let a = GateAlphabet::paper_default();
        assert_eq!(a.len(), 5);
        assert_eq!(a.to_string(), "{rx, ry, rz, h, p}");
    }

    #[test]
    fn paper_search_space_is_2500() {
        // 4 depths × 5^4 ordered sequences = 2500, matching §3.1.
        let a = GateAlphabet::paper_default();
        assert_eq!(a.search_space_size(4, 4), 2500);
    }

    #[test]
    fn combination_counts() {
        let a = GateAlphabet::paper_default();
        assert_eq!(a.combination_count(1), 5);
        assert_eq!(a.combination_count(2), 25);
        assert_eq!(a.combinations(1).len(), 5);
        assert_eq!(a.combinations(2).len(), 25);
        assert_eq!(a.all_combinations_up_to(3).len(), 5 + 25 + 125);
    }

    #[test]
    fn combinations_are_ordered_sequences_with_repetition() {
        let a = GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap();
        let combos = a.combinations(2);
        assert_eq!(combos.len(), 4);
        assert!(combos.contains(&vec![Gate::RX, Gate::RX]));
        assert!(combos.contains(&vec![Gate::RX, Gate::RY]));
        assert!(combos.contains(&vec![Gate::RY, Gate::RX]));
        assert!(combos.contains(&vec![Gate::RY, Gate::RY]));
    }

    #[test]
    fn empty_alphabet_rejected() {
        assert!(matches!(
            GateAlphabet::new(vec![]),
            Err(SearchError::EmptyAlphabet)
        ));
        assert!(matches!(
            GateAlphabet::from_mnemonics(&[]),
            Err(SearchError::EmptyAlphabet)
        ));
    }

    #[test]
    fn two_qubit_gates_rejected() {
        assert!(GateAlphabet::new(vec![Gate::CX]).is_err());
        assert!(RotationGate::new(Gate::RZZ).is_err());
    }

    #[test]
    fn mnemonic_round_trip() {
        let a = GateAlphabet::from_mnemonics(&["rx", "h", "p"]).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.position(Gate::H), Some(1));
        assert_eq!(a.position(Gate::RY), None);
        assert_eq!(a.gate_at(2).unwrap().gate(), Gate::P);
        assert!(a.gate_at(7).is_none());
    }

    #[test]
    fn rotation_gate_parse_errors() {
        assert!("rzz".parse::<RotationGate>().is_err());
        assert!("bogus".parse::<RotationGate>().is_err());
        assert_eq!("ry".parse::<RotationGate>().unwrap().gate(), Gate::RY);
    }
}
