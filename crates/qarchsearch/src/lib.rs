//! # qarchsearch — scalable quantum architecture search for QAOA mixers
//!
//! This crate is the Rust reproduction of the paper's primary contribution:
//! an automated, parallel search over candidate **mixer circuits** for the
//! Max-Cut QAOA, mirroring the three-component architecture of Fig. 1:
//!
//! * [`predictor`] — proposes candidate circuit encodings. The released
//!   QArchSearch uses random search (a strong NAS baseline); this crate also
//!   ships an exhaustive enumerator, an ε-greedy bandit and a softmax
//!   policy-gradient predictor as the "deep-learning-based search" extension
//!   the paper lists as future work.
//! * [`qbuilder`] — turns an encoding into a concrete parameterized circuit
//!   (the paper's QBuilder emits Qiskit circuits; ours emits
//!   [`qcircuit::Circuit`] values via the [`qaoa`] crate).
//! * [`evaluator`] — trains the candidate ansatz on the Max-Cut objective
//!   (COBYLA, 200 steps by default) and reports the energy, which is fed back
//!   to the predictor as the reward.
//!
//! [`search`] wires the three together in either a serial loop (Algorithm 1)
//! or the two-level parallel scheme of Figs. 2–3: the outer level fans the
//!   candidate gate combinations out over a thread pool (the paper uses
//!   Python `multiprocessing` over the CPUs of a Polaris node); the inner
//!   level parallelizes each energy evaluation over graph edges inside the
//!   tensor-network backend.
//!
//! [`search::ParallelSearch`] goes beyond the paper with a **budget-aware
//! pipeline** (the `pipeline` module): successive-halving pruning over resumable
//! optimizer sessions, warm starts transferred from the previous depth, an
//! optional learned predictor gate, and a work-stealing executor
//! ([`worksteal`]) with per-worker scratch states. Results are
//! deterministic for a fixed seed regardless of the thread count, and
//! `SearchConfig::builder().no_prune()` restores the paper-faithful
//! full-budget behaviour.
//!
//! ```
//! use graphs::Graph;
//! use qarchsearch::search::{SearchConfig, SerialSearch};
//!
//! let graph = Graph::erdos_renyi(6, 0.5, 1);
//! let config = SearchConfig::builder()
//!     .max_depth(1)
//!     .max_gates_per_mixer(1)
//!     .optimizer_budget(30)
//!     .build();
//! let outcome = SerialSearch::new(config).run(&[graph]).unwrap();
//! assert!(outcome.best.energy > 0.0);
//! ```

pub mod alphabet;
pub mod constraints;
pub mod encoding;
pub mod error;
pub mod evaluator;
mod pipeline;
pub mod predictor;
pub mod qbuilder;
pub mod report;
pub mod search;
pub mod worksteal;

pub use alphabet::{GateAlphabet, RotationGate};
pub use constraints::{Constraint, ConstraintSet};
pub use error::SearchError;
pub use evaluator::Evaluator;
pub use predictor::{Predictor, RandomPredictor};
pub use qbuilder::QBuilder;
pub use search::{
    ParallelSearch, PipelineConfig, RungStat, SearchConfig, SearchOutcome, SerialSearch,
};

#[cfg(test)]
mod proptests;
