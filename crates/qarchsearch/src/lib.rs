//! # qarchsearch — scalable quantum architecture search for QAOA mixers
//!
//! This crate is the Rust reproduction of the paper's primary contribution:
//! an automated, parallel search over candidate **mixer circuits** for the
//! Max-Cut QAOA, mirroring the three-component architecture of Fig. 1:
//!
//! * [`predictor`] — proposes candidate circuit encodings. The released
//!   QArchSearch uses random search (a strong NAS baseline); this crate also
//!   ships an exhaustive enumerator, an ε-greedy bandit and a softmax
//!   policy-gradient predictor as the "deep-learning-based search" extension
//!   the paper lists as future work.
//! * [`qbuilder`] — turns an encoding into a concrete parameterized circuit
//!   (the paper's QBuilder emits Qiskit circuits; ours emits
//!   [`qcircuit::Circuit`] values via the [`qaoa`] crate).
//! * [`evaluator`] — trains the candidate ansatz on the Max-Cut objective
//!   (COBYLA, 200 steps by default) and reports the energy, which is fed back
//!   to the predictor as the reward.
//!
//! [`session::SearchDriver`] wires the three together behind a
//! **session-oriented API**: one driver covers both execution modes
//! ([`search::ExecutionMode::Serial`] — Algorithm 1 as written — and
//! [`search::ExecutionMode::Parallel`] — the two-level scheme of Figs. 2–3
//! extended into a **budget-aware pipeline**: successive-halving pruning
//! over resumable optimizer sessions, warm starts transferred from the
//! previous depth, an optional learned predictor gate, and a work-stealing
//! executor ([`worksteal`]) with per-worker scratch states). Started
//! sessions stream typed [`events::SearchEvent`]s, cancel cooperatively,
//! and checkpoint/resume bit-identically; results are deterministic for a
//! fixed seed regardless of the thread count, and
//! `SearchConfig::builder().no_prune()` restores the paper-faithful
//! full-budget behaviour. [`server::JobServer`] multiplexes many concurrent
//! sessions over a bounded priority queue — the engine behind `qas serve`.
//!
//! ```
//! use graphs::Graph;
//! use qarchsearch::search::SearchConfig;
//! use qarchsearch::session::SearchDriver;
//!
//! let graph = Graph::erdos_renyi(6, 0.5, 1);
//! let config = SearchConfig::builder()
//!     .max_depth(1)
//!     .max_gates_per_mixer(1)
//!     .optimizer_budget(30)
//!     .build();
//! let outcome = SearchDriver::new(config).run(&[graph]).unwrap();
//! assert!(outcome.best.energy > 0.0);
//! ```

pub mod alphabet;
pub mod cache;
pub mod cluster;
pub mod constraints;
pub mod encoding;
pub mod error;
pub mod evaluator;
pub mod events;
pub mod fault;
mod pipeline;
pub mod predictor;
pub mod qbuilder;
pub mod report;
pub mod search;
pub mod server;
pub mod session;
pub mod store;
mod sync;
pub mod worksteal;

pub use alphabet::{GateAlphabet, RotationGate};
pub use cache::{spec_cache_key, CacheConfig, CacheStats, ResultCache, SpecKey};
pub use cluster::{
    AdmissionConfig, AdmissionControl, AdmissionStats, ClusterConfig, ClusterStats, Coordinator,
    ShardClient, ShardEndpoint, ShardSnapshot, Submission,
};
pub use constraints::{Constraint, ConstraintSet};
pub use error::SearchError;
pub use evaluator::{EnergyCache, Evaluator};
pub use events::SearchEvent;
pub use fault::{FaultAction, FaultContext, FaultInjector, FaultPlan, FaultSpec};
pub use predictor::{BanditState, Predictor, RandomPredictor};
pub use qbuilder::QBuilder;
pub use search::{ExecutionMode, PipelineConfig, RungStat, SearchConfig, SearchOutcome};
pub use server::{
    JobId, JobServer, JobServerConfig, JobSpec, JobState, JobStatus, RecoveryReport, ServerOptions,
    ServerStats,
};
pub use session::{
    SchedulerCheckpoint, SearchCheckpoint, SearchDriver, SearchHandle, SearchProgress, SearchStatus,
};
pub use store::{JobStore, JournalRecord, ReplayedJob, ReplayedState, StoreConfig};

#[cfg(test)]
mod proptests;
