//! Serialization and tabular reporting of search outcomes.
//!
//! The benchmark harness prints the same series the paper's figures plot;
//! this module holds the shared report structures and the plain-text table
//! renderer so the `fig*_` binaries stay small.

use crate::search::SearchOutcome;
use serde::{Deserialize, Serialize};

/// One row of a figure: a labelled series point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The x value (depth, core count, mixer label index, …).
    pub x: f64,
    /// The measured y value.
    pub y: f64,
    /// Series label ("serial", "parallel", "baseline", "qnas", …).
    pub series: String,
}

/// A complete figure reproduction: its points plus metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FigureReport {
    /// Figure identifier, e.g. "fig4".
    pub figure: String,
    /// Axis labels for context.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The data points.
    pub points: Vec<SeriesPoint>,
}

impl FigureReport {
    /// A new empty report.
    pub fn new(figure: &str, x_label: &str, y_label: &str) -> FigureReport {
        FigureReport {
            figure: figure.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            points: Vec::new(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, series: &str, x: f64, y: f64) {
        self.points.push(SeriesPoint {
            x,
            y,
            series: series.to_string(),
        });
    }

    /// All points belonging to one series, in insertion order.
    pub fn series(&self, name: &str) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter(|p| p.series == name)
            .map(|p| (p.x, p.y))
            .collect()
    }

    /// Distinct series names, in first-appearance order.
    pub fn series_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for p in &self.points {
            if !names.contains(&p.series) {
                names.push(p.series.clone());
            }
        }
        names
    }

    /// Render as an aligned plain-text table (one row per point).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} — {} vs {}\n",
            self.figure, self.y_label, self.x_label
        ));
        out.push_str(&format!(
            "{:<14} {:>12} {:>14}\n",
            "series", self.x_label, self.y_label
        ));
        for p in &self.points {
            out.push_str(&format!("{:<14} {:>12.4} {:>14.6}\n", p.series, p.x, p.y));
        }
        out
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure report serializes")
    }
}

/// Summary of a search run suitable for JSON export.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchReport {
    /// The cost problem family the search trained on.
    pub problem: String,
    /// Winning mixer label.
    pub best_mixer: String,
    /// Winning depth.
    pub best_depth: usize,
    /// Winning mean energy.
    pub best_energy: f64,
    /// Winning mean approximation ratio.
    pub best_approx_ratio: f64,
    /// Per-depth wall-clock seconds.
    pub per_depth_seconds: Vec<(usize, f64)>,
    /// Total seconds.
    pub total_seconds: f64,
    /// Candidates evaluated.
    pub candidates: usize,
    /// Candidates rejected by the predictor gate before evaluation.
    pub candidates_gated: usize,
    /// Candidates pruned before reaching the full budget.
    pub candidates_pruned: usize,
    /// Objective evaluations actually spent across all candidates/graphs.
    pub optimizer_evaluations: usize,
    /// What a full-budget evaluation of the same proposals would have spent.
    pub full_budget_evaluations: usize,
    /// `full_budget_evaluations / optimizer_evaluations` — the pipeline's
    /// budget saving (1.0 when nothing was pruned or gated).
    pub budget_savings_factor: f64,
    /// Threads used by the parallel scheduler (None = serial).
    pub threads: Option<usize>,
    /// Whether the serve path answered this report from its
    /// content-addressed result cache instead of executing the search.
    /// Provenance only: a cached report is bit-identical to the computed
    /// one under [`SearchReport::without_timings`], which resets this flag
    /// along with the clocks.
    #[serde(default)]
    pub served_from_cache: bool,
    /// Whether the cluster coordinator migrated this job across shards
    /// mid-run after a shard death. Provenance only, like
    /// [`SearchReport::served_from_cache`]: a migrated run is
    /// bit-identical to an undisturbed one under
    /// [`SearchReport::without_timings`], which resets this flag too.
    #[serde(default)]
    pub migrated: bool,
}

impl From<&SearchOutcome> for SearchReport {
    fn from(o: &SearchOutcome) -> Self {
        SearchReport {
            problem: o.problem.clone(),
            best_mixer: o.best.mixer_label.clone(),
            best_depth: o.best.depth,
            best_energy: o.best.energy,
            best_approx_ratio: o.best.approx_ratio,
            per_depth_seconds: o
                .depth_results
                .iter()
                .map(|d| (d.depth, d.elapsed_seconds))
                .collect(),
            total_seconds: o.total_elapsed_seconds,
            candidates: o.num_candidates_evaluated,
            candidates_gated: o.depth_results.iter().map(|d| d.gated_out).sum(),
            candidates_pruned: o
                .depth_results
                .iter()
                .flat_map(|d| &d.candidates)
                .filter(|c| c.pruned_at_rung.is_some())
                .count(),
            optimizer_evaluations: o.total_optimizer_evaluations,
            full_budget_evaluations: o.full_budget_evaluations,
            budget_savings_factor: o.budget_savings_factor(),
            threads: o.parallel_threads,
            served_from_cache: false,
            migrated: false,
        }
    }
}

impl SearchReport {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("search report serializes")
    }

    /// The same report with every wall-clock field zeroed. Search results
    /// are deterministic for a fixed seed, but elapsed seconds are not —
    /// recovery tests compare `without_timings().to_json()` bytes to pin
    /// the semantic outcome while ignoring the clock.
    pub fn without_timings(&self) -> SearchReport {
        let mut report = self.clone();
        for (_, seconds) in &mut report.per_depth_seconds {
            *seconds = 0.0;
        }
        report.total_seconds = 0.0;
        report.served_from_cache = false;
        report.migrated = false;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_report_collects_series() {
        let mut r = FigureReport::new("fig4", "p", "seconds");
        r.push("serial", 1.0, 10.0);
        r.push("parallel", 1.0, 4.0);
        r.push("serial", 2.0, 20.0);
        assert_eq!(r.series("serial"), vec![(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(r.series("parallel"), vec![(1.0, 4.0)]);
        assert_eq!(
            r.series_names(),
            vec!["serial".to_string(), "parallel".to_string()]
        );
    }

    #[test]
    fn table_contains_every_point() {
        let mut r = FigureReport::new("fig5", "cores", "seconds");
        r.push("parallel", 8.0, 90.0);
        r.push("parallel", 16.0, 50.0);
        let table = r.to_table();
        assert!(table.contains("fig5"));
        assert!(table.lines().count() >= 4);
        assert!(table.contains("16"));
    }

    #[test]
    fn json_round_trip() {
        let mut r = FigureReport::new("fig7", "mixer", "approx ratio");
        r.push("('rx', 'ry')", 3.0, 0.93);
        let json = r.to_json();
        let back: FigureReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_series_queries_are_empty() {
        let r = FigureReport::new("figX", "x", "y");
        assert!(r.series("anything").is_empty());
        assert!(r.series_names().is_empty());
    }
}
