//! Search-space constraints.
//!
//! The paper's conclusion highlights that QArchSearch "can also incorporate
//! arbitrary constraints in the search procedure and thus deliver custom
//! architectures". This module provides that mechanism: a set of
//! [`Constraint`]s that filter candidate mixer gate sequences before they are
//! built and trained, plus a combinator type ([`ConstraintSet`]) that the
//! search schedulers apply to every proposal.
//!
//! Constraints operate on the gate sequence (the per-qubit mixer pattern);
//! hardware-style resource limits are expressed through the resulting
//! per-qubit gate counts, which scale linearly with the register width.

use qcircuit::Gate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single admissibility rule for candidate mixer gate sequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Reject sequences with more than this many gates per qubit.
    MaxGates(usize),
    /// Reject sequences with more than this many *parameterized* gates per
    /// qubit (each parameterized gate costs one rotation per qubit on
    /// hardware).
    MaxParameterizedGates(usize),
    /// Require at least one non-diagonal gate, so the candidate can actually
    /// move amplitude between computational basis states (a purely diagonal
    /// "mixer" leaves the Max-Cut energy at the |+⟩^⊗n value).
    RequireMixing,
    /// Forbid specific gates (e.g. exclude `T`/`Tdg` to stay Clifford+rotation,
    /// or exclude `H` to keep the mixer purely rotational).
    ForbidGates(Vec<Gate>),
    /// Require the sequence to contain at least one gate from this list.
    RequireAnyOf(Vec<Gate>),
    /// Reject sequences where the same gate appears twice in a row (adjacent
    /// duplicates of self-inverse gates cancel; adjacent equal rotations
    /// merge — either way the duplicate wastes depth).
    NoAdjacentDuplicates,
}

impl Constraint {
    /// Whether `gates` satisfies this constraint.
    pub fn is_satisfied(&self, gates: &[Gate]) -> bool {
        match self {
            Constraint::MaxGates(limit) => gates.len() <= *limit,
            Constraint::MaxParameterizedGates(limit) => {
                gates.iter().filter(|g| g.is_parameterized()).count() <= *limit
            }
            Constraint::RequireMixing => gates.iter().any(|g| !g.is_diagonal()),
            Constraint::ForbidGates(forbidden) => !gates.iter().any(|g| forbidden.contains(g)),
            Constraint::RequireAnyOf(required) => gates.iter().any(|g| required.contains(g)),
            Constraint::NoAdjacentDuplicates => gates.windows(2).all(|w| w[0] != w[1]),
        }
    }

    /// A short description for reports.
    pub fn describe(&self) -> String {
        match self {
            Constraint::MaxGates(n) => format!("at most {n} gates per qubit"),
            Constraint::MaxParameterizedGates(n) => {
                format!("at most {n} parameterized gates per qubit")
            }
            Constraint::RequireMixing => "must contain a non-diagonal gate".to_string(),
            Constraint::ForbidGates(gs) => {
                let names: Vec<&str> = gs.iter().map(|g| g.mnemonic()).collect();
                format!("forbids {{{}}}", names.join(", "))
            }
            Constraint::RequireAnyOf(gs) => {
                let names: Vec<&str> = gs.iter().map(|g| g.mnemonic()).collect();
                format!("requires one of {{{}}}", names.join(", "))
            }
            Constraint::NoAdjacentDuplicates => "no adjacent duplicate gates".to_string(),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A conjunction of constraints applied to every candidate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// The empty (always-satisfied) constraint set.
    pub fn none() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// A set from explicit constraints.
    pub fn new(constraints: Vec<Constraint>) -> ConstraintSet {
        ConstraintSet { constraints }
    }

    /// A sensible default for hardware-conscious searches: candidates must
    /// mix, must not exceed `max_gates` gates per qubit, and must not waste
    /// depth on adjacent duplicates.
    pub fn hardware_aware(max_gates: usize) -> ConstraintSet {
        ConstraintSet {
            constraints: vec![
                Constraint::MaxGates(max_gates),
                Constraint::RequireMixing,
                Constraint::NoAdjacentDuplicates,
            ],
        }
    }

    /// Add a constraint (builder style).
    pub fn with(mut self, constraint: Constraint) -> ConstraintSet {
        self.constraints.push(constraint);
        self
    }

    /// The constraints in this set.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Whether `gates` satisfies every constraint.
    pub fn admits(&self, gates: &[Gate]) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(gates))
    }

    /// Filter a candidate list in place, returning how many were rejected.
    pub fn filter(&self, candidates: &mut Vec<Vec<Gate>>) -> usize {
        let before = candidates.len();
        candidates.retain(|c| self.admits(c));
        before - candidates.len()
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "(unconstrained)");
        }
        let parts: Vec<String> = self.constraints.iter().map(|c| c.describe()).collect();
        write!(f, "{}", parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_gates_limits_length() {
        let c = Constraint::MaxGates(2);
        assert!(c.is_satisfied(&[Gate::RX, Gate::RY]));
        assert!(!c.is_satisfied(&[Gate::RX, Gate::RY, Gate::H]));
    }

    #[test]
    fn max_parameterized_counts_only_rotations() {
        let c = Constraint::MaxParameterizedGates(1);
        assert!(c.is_satisfied(&[Gate::RX, Gate::H, Gate::H]));
        assert!(!c.is_satisfied(&[Gate::RX, Gate::RY]));
    }

    #[test]
    fn require_mixing_rejects_diagonal_only() {
        let c = Constraint::RequireMixing;
        assert!(!c.is_satisfied(&[Gate::RZ, Gate::P]));
        assert!(c.is_satisfied(&[Gate::RZ, Gate::RX]));
    }

    #[test]
    fn forbid_and_require_gates() {
        let forbid = Constraint::ForbidGates(vec![Gate::H]);
        assert!(forbid.is_satisfied(&[Gate::RX, Gate::RY]));
        assert!(!forbid.is_satisfied(&[Gate::RX, Gate::H]));

        let require = Constraint::RequireAnyOf(vec![Gate::RY, Gate::RZ]);
        assert!(require.is_satisfied(&[Gate::RX, Gate::RY]));
        assert!(!require.is_satisfied(&[Gate::RX, Gate::H]));
    }

    #[test]
    fn no_adjacent_duplicates() {
        let c = Constraint::NoAdjacentDuplicates;
        assert!(c.is_satisfied(&[Gate::RX, Gate::RY, Gate::RX]));
        assert!(!c.is_satisfied(&[Gate::RX, Gate::RX]));
        assert!(c.is_satisfied(&[Gate::RX]));
        assert!(c.is_satisfied(&[]));
    }

    #[test]
    fn constraint_set_is_a_conjunction() {
        let set = ConstraintSet::new(vec![Constraint::MaxGates(2), Constraint::RequireMixing]);
        assert!(set.admits(&[Gate::RX, Gate::RZ]));
        assert!(!set.admits(&[Gate::RZ, Gate::P])); // no mixing
        assert!(!set.admits(&[Gate::RX, Gate::RY, Gate::H])); // too long
        assert!(ConstraintSet::none().admits(&[Gate::RZ]));
    }

    #[test]
    fn hardware_aware_preset() {
        let set = ConstraintSet::hardware_aware(2);
        assert!(set.admits(&[Gate::RX, Gate::RY]));
        assert!(!set.admits(&[Gate::RX, Gate::RX])); // adjacent duplicate
        assert!(!set.admits(&[Gate::RZ])); // not mixing
        assert_eq!(set.constraints().len(), 3);
    }

    #[test]
    fn filter_reports_rejections() {
        let set = ConstraintSet::new(vec![Constraint::RequireMixing]);
        let mut candidates = vec![
            vec![Gate::RX],
            vec![Gate::RZ],
            vec![Gate::P, Gate::RZ],
            vec![Gate::H, Gate::P],
        ];
        let rejected = set.filter(&mut candidates);
        assert_eq!(rejected, 2);
        assert_eq!(candidates.len(), 2);
    }

    #[test]
    fn descriptions_mention_gate_names() {
        let c = Constraint::ForbidGates(vec![Gate::H, Gate::T]);
        assert!(c.describe().contains('h'));
        assert!(c.describe().contains('t'));
        let set = ConstraintSet::hardware_aware(3);
        let display = set.to_string();
        assert!(display.contains("non-diagonal"));
        assert_eq!(ConstraintSet::none().to_string(), "(unconstrained)");
    }

    #[test]
    fn serde_round_trip() {
        let set = ConstraintSet::hardware_aware(4).with(Constraint::ForbidGates(vec![Gate::T]));
        let json = serde_json::to_string(&set).unwrap();
        let back: ConstraintSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }
}
