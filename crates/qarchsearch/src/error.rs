//! Error types for the architecture search.

use serde::{Deserialize, Serialize};
use thiserror::Error;

/// Errors raised by the search package.
///
/// Serializable so terminal errors can be journaled by the durable job
/// store ([`crate::store`]) and survive a server restart.
#[derive(Debug, Error, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchError {
    /// The gate alphabet is empty.
    #[error("gate alphabet must contain at least one gate")]
    EmptyAlphabet,

    /// No graphs were supplied to the search.
    #[error("the search requires at least one training graph")]
    NoGraphs,

    /// The search configuration is inconsistent.
    #[error("invalid search configuration: {message}")]
    InvalidConfig {
        /// What is wrong.
        message: String,
    },

    /// A candidate evaluation failed.
    #[error("candidate evaluation failed: {message}")]
    Evaluation {
        /// Underlying error description.
        message: String,
    },

    /// An encoding could not be decoded into a gate sequence.
    #[error("invalid circuit encoding: {message}")]
    InvalidEncoding {
        /// What is wrong.
        message: String,
    },

    /// A session was cancelled before any depth completed (a cancellation
    /// after at least one completed depth drains into a partial
    /// [`crate::search::SearchOutcome`] instead).
    #[error("search cancelled before any depth completed")]
    Cancelled,

    /// The job server's bounded queue is full.
    #[error("job queue is full ({capacity} pending jobs); retry later or raise the capacity")]
    QueueFull {
        /// Configured queue capacity.
        capacity: usize,
    },

    /// A job id is unknown to the job server.
    #[error("unknown job {id}")]
    UnknownJob {
        /// The offending job id.
        id: u64,
    },

    /// The search engine (or a candidate evaluation inside it) panicked.
    /// The worker thread survives; the job is recorded as
    /// [`crate::server::JobState::Failed`] with this message.
    #[error("search panicked: {message}")]
    Panicked {
        /// The panic payload, best-effort stringified.
        message: String,
    },

    /// A job exceeded its [`crate::server::JobSpec::timeout_secs`] deadline
    /// and was cooperatively cancelled.
    #[error("job deadline exceeded after {timeout_secs} seconds")]
    DeadlineExceeded {
        /// The configured per-job timeout.
        timeout_secs: f64,
    },

    /// A transient fault (an injected I/O error, a flaky resource) that a
    /// job with retry budget left will automatically retry with
    /// exponential backoff.
    #[error("transient failure: {message}")]
    Transient {
        /// Underlying error description.
        message: String,
    },

    /// The durable job store could not read or write its journal.
    #[error("job store error: {message}")]
    Store {
        /// Underlying I/O or format error description.
        message: String,
    },

    /// A cluster-level failure: a shard could not be reached, a routed
    /// request failed, or no live shard remains to place a job on.
    #[error("cluster error: {message}")]
    Cluster {
        /// Underlying network or protocol error description.
        message: String,
    },

    /// The cluster coordinator's admission controller rejected a
    /// submission (rate limit, tenant quota, or bounded-wait
    /// backpressure). Unlike [`SearchError::QueueFull`] this carries a
    /// retry-after hint, so well-behaved clients back off instead of
    /// hammering the edge.
    #[error("admission denied ({reason}); retry after {retry_after_ms} ms")]
    AdmissionDenied {
        /// Which admission gate rejected the submission.
        reason: String,
        /// Suggested client back-off before resubmitting.
        retry_after_ms: u64,
    },
}

impl SearchError {
    /// Whether the error is transient — eligible for automatic retry under
    /// the job server's bounded exponential backoff.
    pub fn is_transient(&self) -> bool {
        matches!(self, SearchError::Transient { .. })
    }
}

impl From<qaoa::QaoaError> for SearchError {
    fn from(e: qaoa::QaoaError) -> Self {
        SearchError::Evaluation {
            message: e.to_string(),
        }
    }
}
