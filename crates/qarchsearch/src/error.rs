//! Error types for the architecture search.

use thiserror::Error;

/// Errors raised by the search package.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum SearchError {
    /// The gate alphabet is empty.
    #[error("gate alphabet must contain at least one gate")]
    EmptyAlphabet,

    /// No graphs were supplied to the search.
    #[error("the search requires at least one training graph")]
    NoGraphs,

    /// The search configuration is inconsistent.
    #[error("invalid search configuration: {message}")]
    InvalidConfig {
        /// What is wrong.
        message: String,
    },

    /// A candidate evaluation failed.
    #[error("candidate evaluation failed: {message}")]
    Evaluation {
        /// Underlying error description.
        message: String,
    },

    /// An encoding could not be decoded into a gate sequence.
    #[error("invalid circuit encoding: {message}")]
    InvalidEncoding {
        /// What is wrong.
        message: String,
    },

    /// A session was cancelled before any depth completed (a cancellation
    /// after at least one completed depth drains into a partial
    /// [`crate::search::SearchOutcome`] instead).
    #[error("search cancelled before any depth completed")]
    Cancelled,

    /// The job server's bounded queue is full.
    #[error("job queue is full ({capacity} pending jobs); retry later or raise the capacity")]
    QueueFull {
        /// Configured queue capacity.
        capacity: usize,
    },

    /// A job id is unknown to the job server.
    #[error("unknown job {id}")]
    UnknownJob {
        /// The offending job id.
        id: u64,
    },
}

impl From<qaoa::QaoaError> for SearchError {
    fn from(e: qaoa::QaoaError) -> Self {
        SearchError::Evaluation {
            message: e.to_string(),
        }
    }
}
