//! QBuilder: turn circuit encodings into concrete QAOA ansätze.
//!
//! The paper's QBuilder "accepts the encoded tensor representation from the
//! predictor module and generates the appropriate quantum circuit in an
//! available quantum computing software" (Qiskit in the original). Here it
//! decodes a [`CircuitEncoding`] (or a raw gate sequence) into a
//! [`qaoa::mixer::Mixer`] and assembles the full depth-`p` QAOA ansatz for a
//! given graph.

use crate::alphabet::GateAlphabet;
use crate::encoding::CircuitEncoding;
use crate::error::SearchError;
use graphs::Graph;
use qaoa::ansatz::QaoaAnsatz;
use qaoa::mixer::Mixer;
use qcircuit::Gate;

/// Builds QAOA ansätze from mixer descriptions.
#[derive(Debug, Clone)]
pub struct QBuilder {
    alphabet: GateAlphabet,
}

impl QBuilder {
    /// A builder over the given alphabet.
    pub fn new(alphabet: GateAlphabet) -> QBuilder {
        QBuilder { alphabet }
    }

    /// A builder over the paper's default alphabet.
    pub fn paper_default() -> QBuilder {
        QBuilder {
            alphabet: GateAlphabet::paper_default(),
        }
    }

    /// The alphabet used for decoding encodings.
    pub fn alphabet(&self) -> &GateAlphabet {
        &self.alphabet
    }

    /// BUILD_MIXER_CKT of Algorithm 1: a [`Mixer`] from a raw gate sequence.
    pub fn build_mixer(&self, gates: &[Gate]) -> Result<Mixer, SearchError> {
        Mixer::new(gates.to_vec()).map_err(|e| SearchError::Evaluation {
            message: e.to_string(),
        })
    }

    /// Decode an encoding and build its mixer.
    pub fn build_mixer_from_encoding(
        &self,
        encoding: &CircuitEncoding,
    ) -> Result<Mixer, SearchError> {
        let gates = encoding.decode(&self.alphabet)?;
        self.build_mixer(&gates)
    }

    /// BUILD_QAOA_CKT of Algorithm 1: the depth-`p` ansatz for `graph` with
    /// the given mixer.
    pub fn build_qaoa(&self, graph: &Graph, mixer: Mixer, depth: usize) -> QaoaAnsatz {
        QaoaAnsatz::new(graph, depth, mixer)
    }

    /// Convenience: encoding → full ansatz in one call.
    pub fn build_qaoa_from_encoding(
        &self,
        graph: &Graph,
        encoding: &CircuitEncoding,
        depth: usize,
    ) -> Result<QaoaAnsatz, SearchError> {
        let mixer = self.build_mixer_from_encoding(encoding)?;
        Ok(self.build_qaoa(graph, mixer, depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_mixer_from_gate_sequence() {
        let b = QBuilder::paper_default();
        let mixer = b.build_mixer(&[Gate::RX, Gate::RY]).unwrap();
        assert_eq!(mixer, Mixer::qnas());
    }

    #[test]
    fn build_mixer_rejects_empty_sequence() {
        let b = QBuilder::paper_default();
        assert!(b.build_mixer(&[]).is_err());
    }

    #[test]
    fn encoding_to_ansatz_has_expected_shape() {
        let b = QBuilder::paper_default();
        let graph = Graph::cycle(5);
        let enc = CircuitEncoding::encode(b.alphabet(), &[Gate::RX, Gate::RY]).unwrap();
        let ansatz = b.build_qaoa_from_encoding(&graph, &enc, 2).unwrap();
        assert_eq!(ansatz.depth(), 2);
        assert_eq!(ansatz.num_qubits(), 5);
        // H layer (5) + per layer: 5 RZZ + 10 mixer gates = 15 -> total 35.
        assert_eq!(ansatz.template().len(), 5 + 2 * 15);
    }

    #[test]
    fn mixer_gates_follow_encoding_order() {
        let b = QBuilder::paper_default();
        let enc = CircuitEncoding::encode(b.alphabet(), &[Gate::H, Gate::P, Gate::RX]).unwrap();
        let mixer = b.build_mixer_from_encoding(&enc).unwrap();
        assert_eq!(mixer.gates(), &[Gate::H, Gate::P, Gate::RX]);
    }
}
