//! Poison-recovering lock helpers.
//!
//! The serve tier isolates panics with `catch_unwind`, which means a mutex
//! *can* be poisoned by a panicking job — and every piece of state guarded
//! by those mutexes (the job registry, the session's shared state, progress
//! buffers) is only ever mutated through whole-value writes, so a poisoned
//! guard's contents are still consistent. These helpers centralize the
//! recover-and-continue policy that was previously repeated inline at every
//! lock site: one panic must never wedge the whole server.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Lock `mutex`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wait on `cv`, recovering the reacquired guard from poisoning.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Timed wait on `cv`, recovering the reacquired guard from poisoning.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let mutex = Arc::new(Mutex::new(7usize));
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*lock_recover(&mutex), 7);
    }

    #[test]
    fn wait_timeout_recover_times_out_cleanly() {
        let mutex = Mutex::new(());
        let cv = Condvar::new();
        let guard = lock_recover(&mutex);
        let (_guard, result) = wait_timeout_recover(&cv, guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
