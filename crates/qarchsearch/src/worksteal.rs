//! A work-stealing task executor for candidate evaluations.
//!
//! The original parallel scheduler fanned each depth's candidates out with a
//! fork-join `par_iter`, which splits the task list into one contiguous
//! chunk per thread up front. Candidate training times vary wildly under
//! successive halving (a candidate pruned at the first rung costs a tenth of
//! a full-budget survivor), so static chunking routinely leaves most cores
//! idle behind one unlucky worker. This executor replaces it:
//!
//! * tasks are dealt round-robin into **per-worker deques**;
//! * each worker drains its own deque from the front and, when empty,
//!   **steals from the back** of the other deques;
//! * every worker owns a [`WorkerScratch`] of reusable `2^n` state buffers
//!   (keyed by register width), so no simulation allocates in steady state;
//! * workers pin the **inner** parallelism level to one thread for the
//!   duration of each task: the outer level owns the cores (the paper's
//!   two-level scheme), and — just as importantly — results become
//!   bit-identical regardless of the outer thread count, because chunked
//!   parallel reductions never see a thread-count-dependent split.
//!
//! Determinism: each task's result depends only on the task itself (seeded
//! optimizers, pinned inner parallelism), and results are returned in task
//! order no matter which worker executed them or in what interleaving.

use crate::sync::lock_recover;
use qaoa::BatchScratch;
use statevec::StateVector;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Per-worker reusable simulation buffers, keyed by register width.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    states: HashMap<usize, StateVector>,
    batches: HashMap<usize, BatchScratch>,
}

impl WorkerScratch {
    /// A scratch pool with no buffers allocated yet.
    pub fn new() -> WorkerScratch {
        WorkerScratch::default()
    }

    /// The reusable `2^n` scratch state for `num_qubits`, allocated on first
    /// use. Returns `None` if the width is too large for a dense state (the
    /// caller then falls back to a non-scratch path).
    pub fn state(&mut self, num_qubits: usize) -> Option<&mut StateVector> {
        match self.states.entry(num_qubits) {
            std::collections::hash_map::Entry::Occupied(slot) => Some(slot.into_mut()),
            std::collections::hash_map::Entry::Vacant(slot) => StateVector::zero_state(num_qubits)
                .ok()
                .map(|s| slot.insert(s)),
        }
    }

    /// The reusable batched-evaluation scratch for `num_qubits`. The buffers
    /// inside are built lazily by the batch path itself, so handing one out
    /// costs nothing until a batched sweep actually runs.
    pub fn batch(&mut self, num_qubits: usize) -> &mut BatchScratch {
        self.batches.entry(num_qubits).or_default()
    }

    /// Number of distinct buffer widths currently held.
    pub fn num_buffers(&self) -> usize {
        self.states.len().max(self.batches.len())
    }
}

/// Run every task and return the results in task order.
///
/// `threads` is the worker count (clamped to the task count; `1` executes
/// inline). `f` receives the worker's scratch pool and the task. Worker
/// panics propagate.
pub fn run_tasks<T, R, F>(tasks: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut WorkerScratch, T) -> R + Sync,
{
    let n = tasks.len();
    let threads = threads.clamp(1, n.max(1));

    // Pinning the inner parallelism level to one thread keeps the chunked
    // simulation kernels' arithmetic identical across outer thread counts.
    let inner_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");

    if threads <= 1 {
        let mut scratch = WorkerScratch::new();
        return tasks
            .into_iter()
            .map(|t| inner_pool.install(|| f(&mut scratch, t)))
            .collect();
    }

    // Deal tasks round-robin into per-worker deques, remembering each task's
    // original position so results can be reassembled in order.
    let mut queues: Vec<VecDeque<(usize, T)>> = (0..threads).map(|_| VecDeque::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        queues[i % threads].push_back((i, task));
    }
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> = queues.into_iter().map(Mutex::new).collect();
    let queues = &queues;
    let f = &f;
    let inner_pool = &inner_pool;

    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::new();
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Own queue first (front), then steal (back) walking
                        // the other workers in ring order.
                        let next = {
                            let mut own = lock_recover(&queues[w]);
                            own.pop_front()
                        }
                        .or_else(|| {
                            (1..threads).find_map(|d| {
                                let victim = (w + d) % threads;
                                let mut q = lock_recover(&queues[victim]);
                                q.pop_back()
                            })
                        });
                        match next {
                            Some((i, task)) => {
                                let r = inner_pool.install(|| f(&mut scratch, task));
                                done.push((i, r));
                            }
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("work-stealing worker panicked"))
            .collect()
    });

    // Reassemble in task order.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets.iter_mut() {
        for (i, r) in bucket.drain(..) {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = run_tasks(tasks.clone(), threads, |_, t| t * 3);
            assert_eq!(out, (0..100).map(|t| t * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_tasks((0..250).collect::<Vec<_>>(), 4, |_, t: i32| {
            counter.fetch_add(1, Ordering::SeqCst);
            t
        });
        assert_eq!(counter.load(Ordering::SeqCst), 250);
        assert_eq!(out.len(), 250);
    }

    #[test]
    fn uneven_task_costs_are_balanced_by_stealing() {
        // One pathological task (index 0) next to many cheap ones: with
        // stealing, wall-clock is bounded by the slow task, not by a static
        // chunk containing it plus half the cheap work.
        let tasks: Vec<u64> = (0..64).map(|i| if i == 0 { 20 } else { 1 }).collect();
        let out = run_tasks(tasks, 4, |_, millis| {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            millis
        });
        assert_eq!(out.iter().sum::<u64>(), 20 + 63);
    }

    #[test]
    fn scratch_buffers_are_reused_within_a_worker() {
        // Single worker: the second task of the same width must find the
        // buffer already allocated.
        let sizes = vec![4usize, 4, 5, 4, 5];
        let out = run_tasks(sizes, 1, |scratch, n| {
            scratch.state(n).expect("allocatable");
            scratch.num_buffers()
        });
        assert_eq!(out, vec![1, 1, 2, 2, 2]);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = run_tasks(vec![1, 2], 16, |_, t| t + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_task_list_returns_empty() {
        let out: Vec<i32> = run_tasks(Vec::<i32>::new(), 4, |_, t| t);
        assert!(out.is_empty());
    }
}
