//! The multi-tenant job server: many concurrent search sessions over one
//! bounded, priority-ordered queue — crash-safe when given a state dir.
//!
//! [`JobServer`] is the programmatic face of `qas serve`: callers submit
//! [`JobSpec`]s (a [`SearchConfig`] plus training graphs and a priority),
//! a fixed pool of worker threads drains the queue highest-priority-first,
//! and every job runs as a [`SearchDriver`] session whose
//! [`SearchEvent`] stream is recorded for later retrieval
//! ([`JobServer::events_since`]). Queued jobs cancel instantly; running
//! jobs cancel cooperatively through the session's [`Canceller`], draining
//! to a valid partial outcome exactly like a directly-held handle.
//!
//! Inside each job the work-stealing executor still parallelizes candidate
//! evaluation (`SearchConfig::threads`), so the server multiplexes at two
//! levels: jobs across workers, candidates across each job's evaluation
//! threads. The queue is **bounded** ([`JobServerConfig::queue_capacity`]):
//! submissions beyond it fail fast with [`SearchError::QueueFull`] instead
//! of accumulating unbounded memory — the behaviour a front door serving
//! heavy traffic needs.
//!
//! ## Fault tolerance
//!
//! Launched via [`JobServer::launch`] with a [`StoreConfig`], the server
//! write-ahead journals every submission, state transition, periodic
//! [`SearchCheckpoint`], and terminal result to a crc-checked JSON-lines
//! journal ([`crate::store`]). On restart it replays the journal,
//! re-enqueues incomplete jobs, and resumes each from its last checkpoint
//! — bit-identical to an uninterrupted run. Independently of the store:
//!
//! * **Panic isolation** — workers wrap job execution in `catch_unwind`;
//!   a panicking candidate evaluation becomes
//!   [`JobState::Failed`]` { panic: Some(message) }` plus a terminal
//!   [`SearchEvent::Failed`], and the worker (and every lock, via the
//!   poison-recovering helpers in the crate-private `sync` module)
//!   survives.
//! * **Deadlines** — [`JobSpec::timeout_secs`] arms a per-job deadline;
//!   on expiry the job is cooperatively cancelled and recorded as
//!   [`JobState::TimedOut`].
//! * **Retries** — transient failures ([`SearchError::is_transient`])
//!   consume [`JobSpec::max_retries`] attempts under deterministic
//!   exponential backoff, resuming from the last checkpoint.
//!
//! ## Caching and coalescing
//!
//! Search results are pure functions of the submitted spec (config +
//! graphs + seed — see [`crate::cache`]), so the server never computes
//! the same search twice. Three tiers, all enabled by
//! [`ServerOptions::cache`] (on by default, `None` to disable):
//!
//! 1. **Result cache** — [`submit`](JobServer::submit) consults a
//!    content-addressed [`ResultCache`] first; a hit completes the job
//!    instantly with the stored outcome, a synthetic
//!    [`SearchEvent::CacheHit`] + `Finished` event pair, and
//!    [`JobStatus::cache_hit`] set. With [`CacheConfig::dir`] the cache
//!    survives restarts through the same crc-framed journal as the job
//!    store.
//! 2. **Request coalescing** — a submission identical to one already
//!    queued or running attaches as a *follower* of that execution: it
//!    gets its own [`JobId`], event cursor, result, and cancel (which
//!    only detaches it), but no engine runs for it. When the leader
//!    settles, the terminal state and result fan out to every follower.
//!    Cancelling a leader promotes its first follower; the engine keeps
//!    running.
//! 3. **Evaluator sharing** — jobs share one server-scoped bounded
//!    [`EnergyCache`], so identical `(problem, backend, graph)` triples
//!    across *different* jobs reuse one trained-energy evaluator.
//!
//! [`JobServer::stats`] reports queue depth, per-state job counts, and
//! the hit/miss/coalesced counters of both caches.

use crate::cache::{spec_cache_key, CacheConfig, CacheStats, ResultCache, SpecKey};
use crate::error::SearchError;
use crate::evaluator::{EnergyCache, EnergyCacheStats};
use crate::events::SearchEvent;
use crate::fault::{self, site, FaultContext, FaultInjector};
use crate::search::{SearchConfig, SearchOutcome};
use crate::session::{Canceller, SearchCheckpoint, SearchDriver, SearchProgress, SearchStatus};
use crate::store::{JobStore, JournalRecord, ReplayedState, StoreConfig};
use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};
use graphs::Graph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifier of a submitted job (monotonically increasing per server,
/// preserved across restarts by the durable store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A search job: configuration, training graphs, and scheduling metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Optional caller-supplied label (shown in status listings).
    pub name: Option<String>,
    /// Higher runs first; ties serve in submission order.
    pub priority: i32,
    /// Per-job deadline in seconds: on expiry the session is cooperatively
    /// cancelled and the job recorded as [`JobState::TimedOut`]. `None`
    /// runs unbounded.
    pub timeout_secs: Option<f64>,
    /// Automatic retries granted for **transient** failures
    /// ([`SearchError::is_transient`]); each retry resumes from the last
    /// checkpoint. `0` (the default) fails on first transient error.
    pub max_retries: u32,
    /// Base backoff before retry attempt `n`, growing as
    /// `retry_backoff_ms * 2^(n-1)` — deterministic, not jittered, so
    /// chaos tests replay exactly.
    pub retry_backoff_ms: u64,
    /// The search configuration (execution mode included).
    pub config: SearchConfig,
    /// The training graphs.
    pub graphs: Vec<Graph>,
}

impl JobSpec {
    /// A job with default priority 0, no name, no deadline, no retries.
    pub fn new(config: SearchConfig, graphs: Vec<Graph>) -> JobSpec {
        JobSpec {
            name: None,
            priority: 0,
            timeout_secs: None,
            max_retries: 0,
            retry_backoff_ms: 100,
            config,
            graphs,
        }
    }

    /// Set the priority.
    pub fn priority(mut self, priority: i32) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Set the label.
    pub fn name(mut self, name: impl Into<String>) -> JobSpec {
        self.name = Some(name.into());
        self
    }

    /// Set the per-job deadline.
    pub fn timeout_secs(mut self, secs: f64) -> JobSpec {
        self.timeout_secs = Some(secs);
        self
    }

    /// Set the transient-failure retry budget.
    pub fn max_retries(mut self, retries: u32) -> JobSpec {
        self.max_retries = retries;
        self
    }

    /// Set the base retry backoff in milliseconds.
    pub fn retry_backoff_ms(mut self, millis: u64) -> JobSpec {
        self.retry_backoff_ms = millis;
        self
    }
}

/// Queue/lifecycle state of a job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// A worker is driving its search session.
    Running,
    /// A transient failure consumed retry attempt `attempt`; the job is
    /// back in the queue behind a deterministic exponential backoff and
    /// will resume from its last checkpoint.
    Retrying {
        /// 1-based retry attempt underway.
        attempt: u32,
    },
    /// Finished every depth; the outcome is ready.
    Completed,
    /// Cancelled (instantly if queued; cooperatively if running — a partial
    /// outcome may still be available).
    Cancelled,
    /// The per-job deadline ([`JobSpec::timeout_secs`]) expired; the
    /// session was cooperatively cancelled.
    TimedOut,
    /// The session failed. `panic` carries the panic message when the
    /// failure was a caught panic rather than a typed error.
    Failed {
        /// The panic payload, if the job died panicking.
        panic: Option<String>,
    },
}

impl JobState {
    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed
                | JobState::Cancelled
                | JobState::TimedOut
                | JobState::Failed { .. }
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobState::Queued => write!(f, "queued"),
            JobState::Running => write!(f, "running"),
            JobState::Retrying { attempt } => write!(f, "retrying (attempt {attempt})"),
            JobState::Completed => write!(f, "completed"),
            JobState::Cancelled => write!(f, "cancelled"),
            JobState::TimedOut => write!(f, "timed-out"),
            JobState::Failed { .. } => write!(f, "failed"),
        }
    }
}

/// A point-in-time public view of one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// Caller-supplied label, if any.
    pub name: Option<String>,
    /// Scheduling priority.
    pub priority: i32,
    /// Queue/lifecycle state.
    pub state: JobState,
    /// Retry attempts consumed so far.
    pub retries: u32,
    /// Events recorded so far (the `since` cursor for
    /// [`JobServer::events_since`]).
    pub events_recorded: usize,
    /// Search progress, once the session has started.
    pub progress: Option<SearchProgress>,
    /// Whether the result was served from the content-addressed result
    /// cache (no engine ran for this job).
    pub cache_hit: bool,
    /// Whether this job was coalesced onto another identical in-flight
    /// execution instead of running its own engine.
    pub coalesced: bool,
}

/// Server tuning knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobServerConfig {
    /// Concurrent worker threads (each drives one job at a time).
    pub workers: usize,
    /// Maximum jobs waiting in the queue (running jobs do not count).
    pub queue_capacity: usize,
    /// Maximum **terminal** job records retained (event logs + outcomes).
    /// When a job reaches a terminal state beyond this bound, the oldest
    /// terminal records are evicted — a long-lived server stays bounded on
    /// both ends (queued work by `queue_capacity`, history by this).
    /// Clients can also drop records eagerly with [`JobServer::forget`].
    pub max_retained_jobs: usize,
}

impl Default for JobServerConfig {
    fn default() -> Self {
        JobServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_retained_jobs: 256,
        }
    }
}

/// Extra launch-time wiring: the durable store, the fault-injection
/// harness, and the result/evaluator caching tier.
#[derive(Debug)]
pub struct ServerOptions {
    /// Journal jobs under this state dir and recover them on launch.
    pub store: Option<StoreConfig>,
    /// Armed fault plan, threaded into every job (chaos tests; inert in
    /// release builds — see [`crate::fault`]).
    pub faults: Option<Arc<FaultInjector>>,
    /// Result cache + request coalescing + shared evaluator cache.
    /// `Some(CacheConfig::default())` (in-memory, bounded) by default;
    /// `None` disables all three tiers — the `--no-cache` path, pinned
    /// bit-identical to the pre-cache server.
    pub cache: Option<CacheConfig>,
    /// Operator-assigned identity reported in [`ServerStats::shard_id`]
    /// (`--shard-id`; `None` for a standalone server). Purely
    /// informational — a cluster coordinator uses it to tell shard
    /// restarts apart from slow shards.
    pub shard_id: Option<String>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            store: None,
            faults: None,
            cache: Some(CacheConfig::default()),
            shard_id: None,
        }
    }
}

/// A point-in-time summary of the whole server: queue depth, job counts
/// by state, and (when caching is enabled) both cache tiers' counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Seconds since this server was launched. A cluster coordinator
    /// watches this across heartbeats: a decrease means the shard
    /// restarted (losing non-durable state), not merely stalled.
    pub uptime_secs: f64,
    /// The serving crate's version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Operator-assigned shard identity ([`ServerOptions::shard_id`]).
    pub shard_id: Option<String>,
    /// Entries waiting in the bounded queue (running jobs not counted).
    pub queue_depth: usize,
    /// Jobs currently [`JobState::Queued`].
    pub jobs_queued: usize,
    /// Jobs currently [`JobState::Running`].
    pub jobs_running: usize,
    /// Jobs currently [`JobState::Retrying`].
    pub jobs_retrying: usize,
    /// Retained jobs that finished [`JobState::Completed`].
    pub jobs_completed: usize,
    /// Retained jobs that finished [`JobState::Cancelled`].
    pub jobs_cancelled: usize,
    /// Retained jobs that finished [`JobState::TimedOut`].
    pub jobs_timed_out: usize,
    /// Retained jobs that finished [`JobState::Failed`].
    pub jobs_failed: usize,
    /// Result-cache counters (`None` when caching is disabled). The
    /// `coalesced` counter counts follower attachments (tier 2).
    pub cache: Option<CacheStats>,
    /// Shared evaluator-cache counters (`None` when caching is disabled).
    pub energy_cache: Option<EnergyCacheStats>,
}

/// What [`JobServer::launch`] recovered from a durable store's journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Valid journal records replayed.
    pub journal_records: usize,
    /// Trailing records dropped as torn/corrupt.
    pub dropped_records: usize,
    /// Incomplete jobs re-enqueued with a checkpoint to resume from.
    pub resumed_jobs: usize,
    /// Incomplete jobs re-enqueued from scratch (no checkpoint yet).
    pub requeued_jobs: usize,
    /// Terminal jobs whose results were restored.
    pub terminal_jobs: usize,
    /// Whether the previous server stopped cleanly.
    pub clean_shutdown: bool,
}

struct JobRecord {
    name: Option<String>,
    priority: i32,
    state: JobState,
    spec: Option<JobSpec>,
    events: Vec<SearchEvent>,
    canceller: Option<Canceller>,
    progress: Option<SearchProgress>,
    result: Option<Result<SearchOutcome, SearchError>>,
    retries: u32,
    /// Last checkpoint taken at a depth boundary (what retries and — via
    /// the journal — restarts resume from).
    checkpoint: Option<SearchCheckpoint>,
    /// Set by an explicit [`JobServer::cancel`] on a running job, so
    /// shutdown-suspension never resurrects a job the user killed.
    user_cancelled: bool,
    /// Follower job ids coalesced onto this execution (leaders only).
    followers: Vec<u64>,
    /// The execution this job is coalesced onto (followers only);
    /// cleared when the follower detaches or the execution settles.
    leader: Option<u64>,
    /// The content-address of this execution's spec, kept so its result
    /// can be inserted into the cache at settle time (leaders only).
    cache_key: Option<SpecKey>,
    /// Served instantly from the result cache — no engine ran.
    cache_hit: bool,
    /// Attached to another in-flight execution instead of running.
    coalesced: bool,
}

impl JobRecord {
    /// A fresh queued record for `spec` (no events, no result yet).
    fn queued(spec: JobSpec) -> JobRecord {
        JobRecord {
            name: spec.name.clone(),
            priority: spec.priority,
            state: JobState::Queued,
            spec: Some(spec),
            events: Vec::new(),
            canceller: None,
            progress: None,
            result: None,
            retries: 0,
            checkpoint: None,
            user_cancelled: false,
            followers: Vec::new(),
            leader: None,
            cache_key: None,
            cache_hit: false,
            coalesced: false,
        }
    }
}

/// One queue entry; `ready_at` defers retry attempts (backoff).
struct PendingEntry {
    id: u64,
    ready_at: Option<Instant>,
}

struct Registry {
    jobs: HashMap<u64, JobRecord>,
    /// Entries waiting to run (ordering resolved at pop time).
    pending: Vec<PendingEntry>,
    next_id: u64,
    shutdown: bool,
    /// Cache-key hash → job id of the one in-flight execution for that
    /// spec; identical submissions attach here as followers.
    inflight: HashMap<u64, u64>,
    /// Old execution id → promoted follower id. When a leader is
    /// cancelled mid-run its engine keeps going, but the worker thread
    /// still holds the old id — every worker-side registry access
    /// resolves through this map ([`resolve_exec`]).
    exec_alias: HashMap<u64, u64>,
}

/// Follow promotion aliases to the job record currently owning the
/// execution that started under `id`.
fn resolve_exec(registry: &Registry, id: u64) -> u64 {
    let mut current = id;
    while let Some(&next) = registry.exec_alias.get(&current) {
        current = next;
    }
    current
}

/// Follower ids of `exec`, cloned out so the registry can be re-borrowed.
fn followers_of(registry: &Registry, exec: u64) -> Vec<u64> {
    registry
        .jobs
        .get(&exec)
        .map(|record| record.followers.clone())
        .unwrap_or_default()
}

/// Record `event` (and optionally fresh progress) on the execution owner
/// *and* every coalesced follower — each subscriber owns its copy of the
/// stream, so cursors and `forget` stay independent.
fn push_shared_event(
    registry: &mut Registry,
    exec: u64,
    event: &SearchEvent,
    progress: Option<SearchProgress>,
) {
    for follower in followers_of(registry, exec) {
        if let Some(record) = registry.jobs.get_mut(&follower) {
            record.events.push(event.clone());
            if let Some(progress) = &progress {
                record.progress = Some(progress.clone());
            }
        }
    }
    if let Some(record) = registry.jobs.get_mut(&exec) {
        record.events.push(event.clone());
        if let Some(progress) = progress {
            record.progress = Some(progress);
        }
    }
}

/// Hand the execution owned by `old` to its first follower: the promoted
/// record inherits the canceller, checkpoint, retry count, and cache key;
/// remaining followers re-point to it; any pending queue entry is
/// re-addressed; and an `exec_alias` entry redirects the worker thread
/// (which may still be driving under `old`'s id). Returns the new owner,
/// or `None` when `old` has no followers.
fn promote_follower(registry: &mut Registry, old: u64) -> Option<u64> {
    let (followers, canceller, checkpoint, cache_key, retries, state) = {
        let record = registry.jobs.get_mut(&old)?;
        if record.followers.is_empty() {
            return None;
        }
        (
            std::mem::take(&mut record.followers),
            record.canceller.take(),
            record.checkpoint.take(),
            record.cache_key.take(),
            record.retries,
            record.state.clone(),
        )
    };
    let new = followers[0];
    let rest = &followers[1..];
    if let Some(promoted) = registry.jobs.get_mut(&new) {
        promoted.leader = None;
        promoted.followers = rest.to_vec();
        promoted.canceller = canceller;
        promoted.checkpoint = checkpoint;
        promoted.cache_key = cache_key.clone();
        promoted.retries = retries;
        promoted.state = state;
    }
    for follower in rest {
        if let Some(record) = registry.jobs.get_mut(follower) {
            record.leader = Some(new);
        }
    }
    if let Some(key) = &cache_key {
        if let Some(owner) = registry.inflight.get_mut(&key.hash) {
            if *owner == old {
                *owner = new;
            }
        }
    }
    for target in registry.exec_alias.values_mut() {
        if *target == old {
            *target = new;
        }
    }
    registry.exec_alias.insert(old, new);
    for entry in &mut registry.pending {
        if entry.id == old {
            entry.id = new;
        }
    }
    Some(new)
}

struct ServerInner {
    config: JobServerConfig,
    registry: Mutex<Registry>,
    /// Signalled when work arrives or shutdown begins.
    work_cv: Condvar,
    /// Signalled whenever a job reaches a terminal state.
    done_cv: Condvar,
    /// The durable journal, when launched with a state dir. Lock order:
    /// `registry` before `store`, everywhere.
    store: Option<Mutex<JobStore>>,
    /// Journal a checkpoint every N completed depths.
    checkpoint_every: usize,
    /// Armed fault plan shared by every job context.
    faults: Option<Arc<FaultInjector>>,
    /// Content-addressed result cache. Never locked while holding
    /// `registry` (lookups happen before, inserts after).
    cache: Option<Mutex<ResultCache>>,
    /// Server-scoped evaluator cache shared across jobs.
    energy_cache: Option<EnergyCache>,
    /// Launch instant, reported as [`ServerStats::uptime_secs`].
    started: Instant,
    /// Operator-assigned identity ([`ServerOptions::shard_id`]).
    shard_id: Option<String>,
}

/// A running job server; dropping it (or calling [`JobServer::shutdown`])
/// cancels outstanding work and joins the workers.
pub struct JobServer {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

impl JobServer {
    /// Start an in-memory server with the given worker pool and queue
    /// bound (no durability; see [`JobServer::launch`]).
    pub fn start(config: JobServerConfig) -> JobServer {
        Self::launch(config, ServerOptions::default())
            .expect("launching without a store cannot fail")
    }

    /// Start a server with explicit options. With a [`StoreConfig`] the
    /// journal under its state dir is replayed first: terminal jobs get
    /// their results back, incomplete jobs are re-enqueued (resuming from
    /// their last checkpoint), and every later transition is journaled
    /// write-ahead. See [`JobServer::recovery`] for what was recovered.
    pub fn launch(
        config: JobServerConfig,
        options: ServerOptions,
    ) -> Result<JobServer, SearchError> {
        let config = JobServerConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_retained_jobs: config.max_retained_jobs.max(1),
        };
        let faults = options.faults;
        if let (Some(store_config), Some(cache_config)) = (&options.store, &options.cache) {
            if cache_config.dir.as_deref() == Some(store_config.dir.as_path()) {
                return Err(SearchError::InvalidConfig {
                    message: "cache dir must differ from the job-store state dir \
                              (both own a journal.log)"
                        .to_string(),
                });
            }
        }
        // The cache journal runs without fault injection: chaos plans
        // target the job store's append site, and a cache that degrades
        // mid-test would mask the behaviour under test.
        let (cache, energy_cache) = match &options.cache {
            Some(cache_config) => {
                let (cache, _recovered) = ResultCache::open(cache_config)?;
                (
                    Some(Mutex::new(cache)),
                    Some(EnergyCache::bounded(cache_config.evaluator_capacity)),
                )
            }
            None => (None, None),
        };
        let mut registry = Registry {
            jobs: HashMap::new(),
            pending: Vec::new(),
            next_id: 1,
            shutdown: false,
            inflight: HashMap::new(),
            exec_alias: HashMap::new(),
        };
        let mut checkpoint_every = 1;
        let mut recovery = None;
        let store = match options.store {
            Some(store_config) => {
                checkpoint_every = store_config.checkpoint_every.max(1);
                let store_faults = faults
                    .as_ref()
                    .map(|injector| FaultContext::new(Arc::clone(injector), None));
                let (store, replayed) =
                    JobStore::open_with_faults(&store_config.dir, store_faults)?;
                recovery = Some(rebuild_registry(
                    &mut registry,
                    &replayed,
                    &config,
                    cache.is_some(),
                ));
                Some(Mutex::new(store))
            }
            None => None,
        };
        let inner = Arc::new(ServerInner {
            config,
            registry: Mutex::new(registry),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            store,
            checkpoint_every,
            faults,
            cache,
            energy_cache,
            started: Instant::now(),
            shard_id: options.shard_id,
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qas-job-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn job worker")
            })
            .collect();
        Ok(JobServer {
            inner,
            workers,
            recovery,
        })
    }

    /// What launch recovered from the durable store's journal (`None` for
    /// in-memory servers).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Submit a job. Fails fast with [`SearchError::QueueFull`] when the
    /// bounded queue is at capacity, and validates the configuration before
    /// accepting (a job that could never start is rejected here, not
    /// buried in a failed record).
    ///
    /// With caching enabled the submission is content-addressed first: a
    /// result-cache hit completes instantly (no queue slot consumed), and
    /// a spec identical to an in-flight execution attaches as a follower
    /// of that execution instead of queueing its own.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SearchError> {
        if spec.graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        spec.config.validate_for(spec.config.mode)?;
        let key = match &self.inner.cache {
            Some(_) => Some(spec_cache_key(&spec)?),
            None => None,
        };
        // Tier 1: result cache. Looked up before the registry lock (the
        // cache mutex is never nested inside it); a concurrent insert
        // between this miss and the registry lock only costs a recompute.
        let cached = match (&self.inner.cache, &key) {
            (Some(cache), Some(key)) => lock_recover(cache).lookup(key),
            _ => None,
        };
        let mut registry = self.lock_registry();
        if registry.shutdown {
            return Err(SearchError::Evaluation {
                message: "job server is shutting down".to_string(),
            });
        }
        if let (Some(outcome), Some(key)) = (cached, &key) {
            let id = self.complete_from_cache(&mut registry, spec, key, outcome);
            drop(registry);
            self.inner.done_cv.notify_all();
            return Ok(JobId(id));
        }
        // Tier 2: request coalescing. An identical spec already queued or
        // running gets a follower record mirroring that execution instead
        // of a queue slot. Deadline/retry budgets must match — a follower
        // inherits the leader's schedule verbatim.
        if let Some(key) = &key {
            if let Some(&origin) = registry.inflight.get(&key.hash) {
                let exec = resolve_exec(&registry, origin);
                let attachable = registry.jobs.get(&exec).is_some_and(|leader| {
                    !leader.state.is_terminal()
                        && leader
                            .cache_key
                            .as_ref()
                            .is_some_and(|k| k.canonical == key.canonical)
                        && leader.spec.as_ref().is_some_and(|leader_spec| {
                            leader_spec.timeout_secs == spec.timeout_secs
                                && leader_spec.max_retries == spec.max_retries
                        })
                });
                if attachable {
                    let id = registry.next_id;
                    registry.next_id += 1;
                    journal(
                        &self.inner,
                        &JournalRecord::Submitted {
                            id,
                            spec: spec.clone(),
                        },
                    );
                    let leader = registry.jobs.get(&exec).expect("attachable leader exists");
                    // The follower keeps its own spec so it can take over
                    // the execution if the leader is cancelled (promotion).
                    let record = JobRecord {
                        state: leader.state.clone(),
                        events: leader.events.clone(),
                        progress: leader.progress.clone(),
                        retries: leader.retries,
                        leader: Some(exec),
                        coalesced: true,
                        ..JobRecord::queued(spec)
                    };
                    registry.jobs.insert(id, record);
                    registry
                        .jobs
                        .get_mut(&exec)
                        .expect("attachable leader exists")
                        .followers
                        .push(id);
                    drop(registry);
                    if let Some(cache) = &self.inner.cache {
                        lock_recover(cache).note_coalesced();
                    }
                    return Ok(JobId(id));
                }
            }
        }
        // Tier 3: a genuinely new execution.
        if registry.pending.len() >= self.inner.config.queue_capacity {
            return Err(SearchError::QueueFull {
                capacity: self.inner.config.queue_capacity,
            });
        }
        let id = registry.next_id;
        registry.next_id += 1;
        journal(
            &self.inner,
            &JournalRecord::Submitted {
                id,
                spec: spec.clone(),
            },
        );
        let mut record = JobRecord::queued(spec);
        record.cache_key = key.clone();
        registry.jobs.insert(id, record);
        if let Some(key) = &key {
            registry.inflight.insert(key.hash, id);
        }
        registry.pending.push(PendingEntry { id, ready_at: None });
        drop(registry);
        if let Some(cache) = &self.inner.cache {
            lock_recover(cache).note_miss();
        }
        self.inner.work_cv.notify_one();
        Ok(JobId(id))
    }

    /// Submit a job that resumes from an externally recovered checkpoint
    /// instead of starting fresh — the cluster coordinator's migration
    /// path (the checkpoint comes out of a dead shard's journal). With no
    /// checkpoint this is exactly [`JobServer::submit`].
    ///
    /// A checkpointed submission deliberately bypasses the result-cache
    /// and coalescing tiers: a migrated execution must actually run to
    /// terminal (its follower set lives on the coordinator, not here),
    /// and it must not become a coalescing leader whose mid-flight state
    /// contradicts a fresh identical submission. Both the spec and the
    /// checkpoint are journaled, so a shard that dies *after* adopting a
    /// migrated job can itself be migrated from the same resume point.
    pub fn submit_with_checkpoint(
        &self,
        spec: JobSpec,
        checkpoint: Option<SearchCheckpoint>,
    ) -> Result<JobId, SearchError> {
        let Some(checkpoint) = checkpoint else {
            return self.submit(spec);
        };
        if spec.graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        spec.config.validate_for(spec.config.mode)?;
        let mut registry = self.lock_registry();
        if registry.shutdown {
            return Err(SearchError::Evaluation {
                message: "job server is shutting down".to_string(),
            });
        }
        if registry.pending.len() >= self.inner.config.queue_capacity {
            return Err(SearchError::QueueFull {
                capacity: self.inner.config.queue_capacity,
            });
        }
        let id = registry.next_id;
        registry.next_id += 1;
        journal(
            &self.inner,
            &JournalRecord::Submitted {
                id,
                spec: spec.clone(),
            },
        );
        journal(
            &self.inner,
            &JournalRecord::Checkpoint {
                id,
                checkpoint: checkpoint.clone(),
            },
        );
        let mut record = JobRecord::queued(spec);
        record.checkpoint = Some(checkpoint);
        registry.jobs.insert(id, record);
        registry.pending.push(PendingEntry { id, ready_at: None });
        drop(registry);
        self.inner.work_cv.notify_one();
        Ok(JobId(id))
    }

    /// Complete a submission instantly from a result-cache hit: the job
    /// record is born terminal with a synthetic [`SearchEvent::CacheHit`]
    /// + `Finished` event pair and the cached outcome.
    fn complete_from_cache(
        &self,
        registry: &mut Registry,
        spec: JobSpec,
        key: &SpecKey,
        outcome: Arc<SearchOutcome>,
    ) -> u64 {
        let id = registry.next_id;
        registry.next_id += 1;
        journal(
            &self.inner,
            &JournalRecord::Submitted {
                id,
                spec: spec.clone(),
            },
        );
        let progress = SearchProgress {
            status: SearchStatus::Finished,
            depths_completed: outcome.depth_results.len(),
            max_depth: spec.config.max_depth,
            candidates_evaluated: outcome.num_candidates_evaluated,
            optimizer_evaluations: outcome.total_optimizer_evaluations,
            best_energy: Some(outcome.best.energy),
            elapsed_seconds: 0.0,
        };
        let mut record = JobRecord::queued(spec);
        record.state = JobState::Completed;
        record.spec = None;
        record.events = vec![
            SearchEvent::CacheHit { key: key.hex() },
            SearchEvent::Finished {
                best_mixer: outcome.best.mixer_label.clone(),
                best_depth: outcome.best.depth,
                best_energy: outcome.best.energy,
                candidates_evaluated: outcome.num_candidates_evaluated,
            },
        ];
        record.progress = Some(progress);
        record.result = Some(Ok((*outcome).clone()));
        record.cache_hit = true;
        registry.jobs.insert(id, record);
        journal(
            &self.inner,
            &JournalRecord::Finished {
                id,
                outcome: Some((*outcome).clone()),
                error: None,
            },
        );
        journal(
            &self.inner,
            &JournalRecord::State {
                id,
                state: JobState::Completed,
                retries: 0,
            },
        );
        let evicted = evict_over_retention(registry, self.inner.config.max_retained_jobs);
        journal_forgotten(&self.inner, &evicted);
        id
    }

    /// Cancel a job: queued (and backoff-waiting) jobs are cut instantly,
    /// running jobs cooperatively (their partial outcome, if any, stays
    /// retrievable). Returns `false` for unknown or already-terminal jobs.
    ///
    /// Coalesced jobs have detachment semantics: cancelling a *follower*
    /// only detaches it (the shared execution runs on), and cancelling a
    /// *leader* with followers promotes its first follower to own the
    /// execution — the engine is never stopped while a live subscriber
    /// still wants the result.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut registry = self.lock_registry();
        let Some(record) = registry.jobs.get_mut(&id.0) else {
            return false;
        };
        // Follower: detach from the shared execution; nothing else stops.
        if let Some(exec) = record.leader {
            if record.state.is_terminal() {
                return false;
            }
            let completed_depths = record
                .progress
                .as_ref()
                .map(|p| p.depths_completed)
                .unwrap_or(0);
            record.state = JobState::Cancelled;
            record.spec = None;
            record.leader = None;
            record.result = Some(Err(SearchError::Cancelled));
            record
                .events
                .push(SearchEvent::Cancelled { completed_depths });
            let retries = record.retries;
            journal(
                &self.inner,
                &JournalRecord::Finished {
                    id: id.0,
                    outcome: None,
                    error: Some(SearchError::Cancelled),
                },
            );
            journal(
                &self.inner,
                &JournalRecord::State {
                    id: id.0,
                    state: JobState::Cancelled,
                    retries,
                },
            );
            if let Some(leader) = registry.jobs.get_mut(&exec) {
                leader.followers.retain(|f| *f != id.0);
            }
            let evicted = evict_over_retention(&mut registry, self.inner.config.max_retained_jobs);
            journal_forgotten(&self.inner, &evicted);
            drop(registry);
            self.inner.done_cv.notify_all();
            return true;
        }
        match record.state {
            JobState::Queued | JobState::Retrying { .. } => {
                // A queued leader with followers hands the execution (its
                // pending entry included) to the first follower before
                // being cut.
                promote_follower(&mut registry, id.0);
                self.finish_cancelled(&mut registry, id.0, true);
                drop(registry);
                self.inner.done_cv.notify_all();
                true
            }
            JobState::Running => {
                if record.followers.is_empty() {
                    record.user_cancelled = true;
                    if let Some(canceller) = &record.canceller {
                        canceller.cancel();
                    }
                    // Unregister from the coalescing index immediately: a
                    // submission racing this cancel must start fresh, not
                    // attach to an execution that is winding down.
                    if let Some(key) = record.cache_key.take() {
                        if registry.inflight.get(&key.hash) == Some(&id.0) {
                            registry.inflight.remove(&key.hash);
                        }
                    }
                    true
                } else {
                    // Promote a follower to own the running execution; the
                    // engine keeps going, only this subscriber is cut. The
                    // worker thread finds the new owner through the
                    // `exec_alias` it resolves on every registry access.
                    promote_follower(&mut registry, id.0);
                    self.finish_cancelled(&mut registry, id.0, false);
                    drop(registry);
                    self.inner.done_cv.notify_all();
                    true
                }
            }
            _ => false,
        }
    }

    /// Mark `id` cancelled with a journaled terminal record; `drop_pending`
    /// also removes its queue entry (promotion re-points the entry at the
    /// new leader first, making removal here a no-op for handed-off work).
    fn finish_cancelled(&self, registry: &mut Registry, id: u64, drop_pending: bool) {
        if let Some(record) = registry.jobs.get_mut(&id) {
            let completed_depths = record
                .progress
                .as_ref()
                .map(|p| p.depths_completed)
                .unwrap_or(0);
            record.state = JobState::Cancelled;
            record.spec = None;
            record.result = Some(Err(SearchError::Cancelled));
            if record.events.last().is_none_or(|e| !e.is_terminal()) {
                record
                    .events
                    .push(SearchEvent::Cancelled { completed_depths });
            }
            if let Some(key) = record.cache_key.take() {
                if registry.inflight.get(&key.hash) == Some(&id) {
                    registry.inflight.remove(&key.hash);
                }
            }
            let retries = registry.jobs[&id].retries;
            journal(
                &self.inner,
                &JournalRecord::Finished {
                    id,
                    outcome: None,
                    error: Some(SearchError::Cancelled),
                },
            );
            journal(
                &self.inner,
                &JournalRecord::State {
                    id,
                    state: JobState::Cancelled,
                    retries,
                },
            );
        }
        if drop_pending {
            registry.pending.retain(|entry| entry.id != id);
        }
        let evicted = evict_over_retention(registry, self.inner.config.max_retained_jobs);
        journal_forgotten(&self.inner, &evicted);
    }

    /// Status of one job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, SearchError> {
        let registry = self.lock_registry();
        registry
            .jobs
            .get(&id.0)
            .map(|r| Self::status_of(id.0, r))
            .ok_or(SearchError::UnknownJob { id: id.0 })
    }

    /// Status of every job, in submission order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let registry = self.lock_registry();
        let mut ids: Vec<u64> = registry.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .map(|id| Self::status_of(*id, &registry.jobs[id]))
            .collect()
    }

    /// The job's recorded events from cursor `since` on, plus the next
    /// cursor value. Events are recorded in the session's deterministic
    /// emission order; retried jobs concatenate the streams of their
    /// attempts. (Jobs recovered terminal from a journal replay carry no
    /// event log — only their result.)
    pub fn events_since(
        &self,
        id: JobId,
        since: usize,
    ) -> Result<(Vec<SearchEvent>, usize), SearchError> {
        let registry = self.lock_registry();
        let record = registry
            .jobs
            .get(&id.0)
            .ok_or(SearchError::UnknownJob { id: id.0 })?;
        let start = since.min(record.events.len());
        Ok((record.events[start..].to_vec(), record.events.len()))
    }

    /// The job's outcome, if it has reached a terminal state (`None` while
    /// queued or running). Cancelled jobs report their partial outcome when
    /// at least one depth completed.
    pub fn result(
        &self,
        id: JobId,
    ) -> Result<Option<Result<SearchOutcome, SearchError>>, SearchError> {
        let registry = self.lock_registry();
        let record = registry
            .jobs
            .get(&id.0)
            .ok_or(SearchError::UnknownJob { id: id.0 })?;
        Ok(record.result.clone())
    }

    /// Block until the job reaches a terminal state and return its outcome.
    pub fn wait(&self, id: JobId) -> Result<Result<SearchOutcome, SearchError>, SearchError> {
        let mut registry = self.lock_registry();
        loop {
            let Some(record) = registry.jobs.get(&id.0) else {
                return Err(SearchError::UnknownJob { id: id.0 });
            };
            if let Some(result) = record.result.clone() {
                return Ok(result);
            }
            registry = wait_recover(&self.inner.done_cv, registry);
        }
    }

    /// Drop a **terminal** job's record (event log, outcome). Returns
    /// `false` for unknown jobs and refuses queued/running ones (cancel
    /// first). Lets protocol clients reclaim history eagerly instead of
    /// waiting for the `max_retained_jobs` eviction. Durable servers
    /// journal the drop, so forgotten jobs stay forgotten across restarts.
    pub fn forget(&self, id: JobId) -> bool {
        let mut registry = self.lock_registry();
        match registry.jobs.get(&id.0) {
            Some(record) if record.state.is_terminal() => {
                registry.jobs.remove(&id.0);
                journal(&self.inner, &JournalRecord::Forgotten { id: id.0 });
                true
            }
            _ => false,
        }
    }

    /// Stop accepting work, stop queued and running jobs, and join the
    /// workers. A durable server **suspends** instead of cancels: queued
    /// jobs stay journaled as queued, running jobs journal a final
    /// checkpoint, and a clean-shutdown marker is appended — the next
    /// launch resumes all of them instead of re-running from scratch.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.settle_stragglers();
        self.finalize_store();
    }

    /// After the workers have joined, no record can make further progress
    /// — force any survivor (e.g. a follower of a queued leader that never
    /// ran) terminal so waiting clients unblock. In-memory only: durable
    /// replay re-enqueues such jobs fresh on the next launch.
    fn settle_stragglers(&self) {
        let mut registry = self.lock_registry();
        for record in registry.jobs.values_mut() {
            if !record.state.is_terminal() {
                record.state = JobState::Cancelled;
                record.spec = None;
                record.leader = None;
                record.result.get_or_insert(Err(SearchError::Cancelled));
            }
        }
        drop(registry);
        self.inner.done_cv.notify_all();
    }

    fn begin_shutdown(&self) {
        let suspend = self.inner.store.is_some();
        let mut registry = self.lock_registry();
        registry.shutdown = true;
        let pending = std::mem::take(&mut registry.pending);
        for entry in pending {
            if let Some(record) = registry.jobs.get_mut(&entry.id) {
                // In-memory the job is cancelled either way (the server is
                // going away); a durable server leaves the journal alone so
                // replay re-enqueues the job on the next launch.
                record.state = JobState::Cancelled;
                record.spec = None;
                record.result = Some(Err(SearchError::Cancelled));
                if !suspend {
                    continue;
                }
            }
        }
        for record in registry.jobs.values_mut() {
            if let Some(canceller) = &record.canceller {
                canceller.cancel();
            }
        }
        drop(registry);
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
    }

    /// Append the clean-shutdown marker and compact the journal down to
    /// the minimal record set (workers must already be joined).
    fn finalize_store(&self) {
        let Some(store) = &self.inner.store else {
            return;
        };
        let mut store = lock_recover(store);
        if let Err(e) = store.append(&JournalRecord::CleanShutdown) {
            eprintln!("[qas-serve] could not journal clean shutdown: {e}");
        }
        match store.replay_current() {
            Ok(state) => {
                let clean = state.clean_shutdown;
                if let Err(e) = store.compact(&state, clean) {
                    eprintln!("[qas-serve] journal compaction failed: {e}");
                }
            }
            Err(e) => eprintln!("[qas-serve] journal replay for compaction failed: {e}"),
        }
    }

    fn status_of(id: u64, record: &JobRecord) -> JobStatus {
        JobStatus {
            id,
            name: record.name.clone(),
            priority: record.priority,
            state: record.state.clone(),
            retries: record.retries,
            events_recorded: record.events.len(),
            progress: record.progress.clone(),
            cache_hit: record.cache_hit,
            coalesced: record.coalesced,
        }
    }

    /// A point-in-time summary: queue depth, job counts by state, and the
    /// counters of both cache tiers (when caching is enabled).
    pub fn stats(&self) -> ServerStats {
        let mut stats = ServerStats {
            workers: self.inner.config.workers,
            uptime_secs: self.inner.started.elapsed().as_secs_f64(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            shard_id: self.inner.shard_id.clone(),
            queue_depth: 0,
            jobs_queued: 0,
            jobs_running: 0,
            jobs_retrying: 0,
            jobs_completed: 0,
            jobs_cancelled: 0,
            jobs_timed_out: 0,
            jobs_failed: 0,
            cache: None,
            energy_cache: None,
        };
        {
            let registry = self.lock_registry();
            stats.queue_depth = registry.pending.len();
            for record in registry.jobs.values() {
                match record.state {
                    JobState::Queued => stats.jobs_queued += 1,
                    JobState::Running => stats.jobs_running += 1,
                    JobState::Retrying { .. } => stats.jobs_retrying += 1,
                    JobState::Completed => stats.jobs_completed += 1,
                    JobState::Cancelled => stats.jobs_cancelled += 1,
                    JobState::TimedOut => stats.jobs_timed_out += 1,
                    JobState::Failed { .. } => stats.jobs_failed += 1,
                }
            }
        }
        stats.cache = self.inner.cache.as_ref().map(|c| lock_recover(c).stats());
        stats.energy_cache = self.inner.energy_cache.as_ref().map(|c| c.stats());
        stats
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        lock_recover(&self.inner.registry)
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.teardown();
    }
}

impl std::fmt::Debug for JobServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobServer")
            .field("config", &self.inner.config)
            .field("durable", &self.inner.store.is_some())
            .field("jobs", &self.jobs().len())
            .finish()
    }
}

/// Fold a replayed journal into a fresh registry; returns the recovery
/// summary. Incomplete jobs (anything without a journaled result) are
/// re-enqueued — with their last checkpoint when one was journaled.
fn rebuild_registry(
    registry: &mut Registry,
    replayed: &ReplayedState,
    config: &JobServerConfig,
    cache_enabled: bool,
) -> RecoveryReport {
    let mut report = RecoveryReport {
        journal_records: replayed.records,
        dropped_records: replayed.dropped_records,
        resumed_jobs: 0,
        requeued_jobs: 0,
        terminal_jobs: 0,
        clean_shutdown: replayed.clean_shutdown,
    };
    registry.next_id = replayed.next_id;
    for job in replayed.jobs.values() {
        let terminal = job.is_terminal();
        let state = if terminal {
            report.terminal_jobs += 1;
            job.state.clone()
        } else {
            if job.checkpoint.is_some() {
                report.resumed_jobs += 1;
            } else {
                report.requeued_jobs += 1;
            }
            registry.pending.push(PendingEntry {
                id: job.id,
                ready_at: None,
            });
            JobState::Queued
        };
        // Replayed incomplete jobs run independently (no coalescing across
        // a restart), but each keeps its cache key so the result it does
        // compute still lands in the result cache.
        let cache_key = (cache_enabled && !terminal)
            .then(|| spec_cache_key(&job.spec).ok())
            .flatten();
        registry.jobs.insert(
            job.id,
            JobRecord {
                name: job.spec.name.clone(),
                priority: job.spec.priority,
                state,
                spec: (!terminal).then(|| job.spec.clone()),
                events: Vec::new(),
                canceller: None,
                progress: None,
                result: job.result.clone(),
                retries: job.retries,
                checkpoint: job.checkpoint.clone(),
                user_cancelled: false,
                followers: Vec::new(),
                leader: None,
                cache_key,
                cache_hit: false,
                coalesced: false,
            },
        );
    }
    let _ = evict_over_retention(registry, config.max_retained_jobs);
    report
}

/// Append `record` to the journal, if the server is durable. Append
/// failures degrade to an in-memory server with a warning instead of
/// taking the serving path down.
fn journal(inner: &ServerInner, record: &JournalRecord) {
    if let Some(store) = &inner.store {
        let mut store = lock_recover(store);
        if let Err(e) = store.append(record) {
            eprintln!("[qas-serve] journal append failed (job state kept in memory only): {e}");
        }
    }
}

fn journal_forgotten(inner: &ServerInner, evicted: &[u64]) {
    for id in evicted {
        journal(inner, &JournalRecord::Forgotten { id: *id });
    }
}

/// Evict the oldest terminal job records beyond the retention cap (queued
/// and running jobs are never touched). Returns the evicted ids so durable
/// servers can journal the drops.
fn evict_over_retention(registry: &mut Registry, cap: usize) -> Vec<u64> {
    let mut terminal: Vec<u64> = registry
        .jobs
        .iter()
        .filter(|(_, record)| record.state.is_terminal())
        .map(|(id, _)| *id)
        .collect();
    if terminal.len() <= cap {
        return Vec::new();
    }
    terminal.sort_unstable();
    let evicted: Vec<u64> = terminal.drain(..terminal.len() - cap).collect();
    for id in &evicted {
        registry.jobs.remove(id);
    }
    evicted
}

fn worker_loop(inner: Arc<ServerInner>) {
    loop {
        // Pop the highest-priority *ready* pending job (ties: lowest id
        // first); entries in retry backoff only become ready at `ready_at`.
        let (id, spec, resume_from) = {
            let mut registry = lock_recover(&inner.registry);
            loop {
                if registry.shutdown {
                    return;
                }
                let now = Instant::now();
                let best = registry
                    .pending
                    .iter()
                    .filter(|entry| entry.ready_at.is_none_or(|at| at <= now))
                    .filter(|entry| registry.jobs.contains_key(&entry.id))
                    .map(|entry| entry.id)
                    .max_by_key(|id| {
                        let priority = registry.jobs[id].priority;
                        (priority, std::cmp::Reverse(*id))
                    });
                if let Some(id) = best {
                    registry.pending.retain(|entry| entry.id != id);
                    let record = registry.jobs.get_mut(&id).expect("pending job exists");
                    let spec = record.spec.clone().expect("pending job keeps its spec");
                    let resume_from = record.checkpoint.clone();
                    let retries = record.retries;
                    record.state = JobState::Running;
                    let followers = record.followers.clone();
                    for follower in followers {
                        if let Some(record) = registry.jobs.get_mut(&follower) {
                            record.state = JobState::Running;
                        }
                    }
                    journal(
                        &inner,
                        &JournalRecord::State {
                            id,
                            state: JobState::Running,
                            retries,
                        },
                    );
                    break (id, spec, resume_from);
                }
                // Nothing ready: sleep until new work arrives or the
                // earliest backoff deadline passes.
                let earliest = registry
                    .pending
                    .iter()
                    .filter_map(|entry| entry.ready_at)
                    .min();
                registry = match earliest {
                    Some(at) => {
                        let timeout = at
                            .saturating_duration_since(now)
                            .max(Duration::from_millis(1));
                        wait_timeout_recover(&inner.work_cv, registry, timeout).0
                    }
                    None => wait_recover(&inner.work_cv, registry),
                };
            }
        };

        // Panic isolation: a job blowing up (its own evaluation code, or an
        // injected chaos fault in the drain loop) must never kill the
        // worker. The engine's own panics are already converted to
        // `Err(Panicked)` by `SearchHandle::wait`; this guard catches
        // everything else.
        let ran =
            std::panic::catch_unwind(AssertUnwindSafe(|| run_job(&inner, id, spec, resume_from)));
        if let Err(payload) = ran {
            let message = fault::panic_message(payload.as_ref());
            fail_job_after_panic(&inner, id, message);
        }
        inner.done_cv.notify_all();
    }
}

/// Record a job whose worker-side execution panicked (the session handle
/// was dropped during the unwind, which cancels any surviving engine).
fn fail_job_after_panic(inner: &ServerInner, id: u64, message: String) {
    let mut registry = lock_recover(&inner.registry);
    let exec = resolve_exec(&registry, id);
    if registry.jobs.contains_key(&exec) {
        if let Some(canceller) = registry
            .jobs
            .get_mut(&exec)
            .and_then(|r| r.canceller.take())
        {
            canceller.cancel();
        }
        let state = JobState::Failed {
            panic: Some(message.clone()),
        };
        let event = SearchEvent::Failed {
            message: format!("search panicked: {message}"),
        };
        let error = SearchError::Panicked { message };
        // The panic verdict fans out to every coalesced follower, exactly
        // like a settled result.
        let mut targets = vec![exec];
        targets.extend(std::mem::take(
            &mut registry
                .jobs
                .get_mut(&exec)
                .expect("panicked record exists")
                .followers,
        ));
        for target in targets {
            let Some(record) = registry.jobs.get_mut(&target) else {
                continue;
            };
            record.events.push(event.clone());
            record.state = state.clone();
            record.spec = None;
            record.result = Some(Err(error.clone()));
            record.leader = None;
            let retries = record.retries;
            journal(
                inner,
                &JournalRecord::Finished {
                    id: target,
                    outcome: None,
                    error: Some(error.clone()),
                },
            );
            journal(
                inner,
                &JournalRecord::State {
                    id: target,
                    state: state.clone(),
                    retries,
                },
            );
        }
        if let Some(key) = registry
            .jobs
            .get_mut(&exec)
            .and_then(|r| r.cache_key.take())
        {
            if registry.inflight.get(&key.hash) == Some(&exec) {
                registry.inflight.remove(&key.hash);
            }
        }
        registry.exec_alias.retain(|_, target| *target != exec);
    }
    let evicted = evict_over_retention(&mut registry, inner.config.max_retained_jobs);
    journal_forgotten(inner, &evicted);
}

fn run_job(inner: &ServerInner, id: u64, spec: JobSpec, resume_from: Option<SearchCheckpoint>) {
    let faults_ctx = inner
        .faults
        .as_ref()
        .map(|injector| FaultContext::new(Arc::clone(injector), Some(id)));
    let (timed_out, status, result) = drive_job(inner, id, &spec, resume_from, faults_ctx);
    settle_job(inner, id, &spec, timed_out, status, result);
}

/// Start (or resume) the session, drain its event stream while enforcing
/// the deadline, and return `(timed_out, final status, result)`.
fn drive_job(
    inner: &ServerInner,
    id: u64,
    spec: &JobSpec,
    resume_from: Option<SearchCheckpoint>,
    faults_ctx: Option<FaultContext>,
) -> (
    bool,
    Option<SearchStatus>,
    Result<SearchOutcome, SearchError>,
) {
    if let Some(ctx) = &faults_ctx {
        if let Err(e) = ctx.trip(site::WORKER_JOB) {
            return (false, None, Err(e));
        }
    }
    let started = match resume_from {
        Some(checkpoint) => {
            SearchDriver::resume_session(checkpoint, faults_ctx.clone(), inner.energy_cache.clone())
        }
        None => {
            let mut driver = SearchDriver::new(spec.config.clone());
            if let Some(ctx) = faults_ctx.clone() {
                driver = driver.with_fault_context(ctx);
            }
            if let Some(cache) = inner.energy_cache.clone() {
                driver = driver.with_energy_cache(cache);
            }
            driver.start(&spec.graphs)
        }
    };
    let handle = match started {
        Ok(handle) => handle,
        Err(e) => return (false, None, Err(e)),
    };
    {
        let mut registry = lock_recover(&inner.registry);
        let owner = resolve_exec(&registry, id);
        if let Some(record) = registry.jobs.get_mut(&owner) {
            record.canceller = Some(handle.canceller());
        }
    }

    // Drain the event stream live so status/events requests see mid-run
    // telemetry; the channel closes when the engine reaches a terminal
    // event. `deadline` arms the per-job timeout: on expiry the session is
    // cancelled cooperatively and the remaining events drained normally.
    let mut deadline = spec
        .timeout_secs
        .map(|secs| Instant::now() + Duration::from_secs_f64(secs.max(0.0)));
    let mut timed_out = false;
    let mut injected: Option<SearchError> = None;
    let mut depths_completed = 0usize;
    loop {
        let event = match deadline {
            None => handle.next_event(),
            Some(at) => {
                let remaining = at.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    timed_out = true;
                    deadline = None;
                    handle.cancel();
                    continue;
                }
                match handle.events().recv_timeout(remaining) {
                    Ok(event) => Some(event),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => None,
                }
            }
        };
        let Some(event) = event else {
            break;
        };
        let owner = {
            let mut registry = lock_recover(&inner.registry);
            let owner = resolve_exec(&registry, id);
            push_shared_event(&mut registry, owner, &event, Some(handle.progress()));
            owner
        };
        match &event {
            SearchEvent::RungCompleted { depth, rung, .. } => {
                journal(
                    inner,
                    &JournalRecord::Progress {
                        id: owner,
                        depth: *depth,
                        rung: *rung,
                    },
                );
                if injected.is_none() {
                    if let Some(ctx) = &faults_ctx {
                        if let Err(e) = ctx.trip(site::WORKER_RUNG) {
                            // Injected worker-side transient: stop the
                            // session and let the retry logic take over.
                            injected = Some(e);
                            handle.cancel();
                        }
                    }
                }
            }
            SearchEvent::DepthCompleted { .. } => {
                // The engine publishes its shared state before emitting, so
                // this checkpoint always covers the announced depth.
                depths_completed += 1;
                let checkpoint = handle.checkpoint();
                {
                    let mut registry = lock_recover(&inner.registry);
                    let owner = resolve_exec(&registry, id);
                    if let Some(record) = registry.jobs.get_mut(&owner) {
                        record.checkpoint = Some(checkpoint.clone());
                    }
                }
                if depths_completed.is_multiple_of(inner.checkpoint_every) {
                    journal(
                        inner,
                        &JournalRecord::Checkpoint {
                            id: owner,
                            checkpoint,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    let mut result = handle.wait();
    let status = handle.progress().status;
    {
        let mut registry = lock_recover(&inner.registry);
        let owner = resolve_exec(&registry, id);
        let progress = handle.progress();
        let followers = followers_of(&registry, owner);
        for follower in followers {
            if let Some(record) = registry.jobs.get_mut(&follower) {
                record.progress = Some(progress.clone());
            }
        }
        if let Some(record) = registry.jobs.get_mut(&owner) {
            record.progress = Some(progress);
        }
    }
    if let Some(e) = injected {
        result = Err(e);
    }
    (timed_out, Some(status), result)
}

/// Classify a finished drive into the job's terminal (or retrying) state,
/// journal it, and update the registry.
fn settle_job(
    inner: &ServerInner,
    id: u64,
    spec: &JobSpec,
    timed_out: bool,
    status: Option<SearchStatus>,
    result: Result<SearchOutcome, SearchError>,
) {
    let mut registry = lock_recover(&inner.registry);
    let shutting_down = registry.shutdown;
    // The job that started this execution may have been cancelled and its
    // ownership promoted to a follower; everything below settles the
    // *current* owner and fans out to its followers.
    let exec = resolve_exec(&registry, id);
    match registry.jobs.get_mut(&exec) {
        Some(record) => record.canceller = None,
        None => return,
    }

    // Transient failures retry (resuming from the last checkpoint) while
    // budget remains — deterministic exponential backoff, no jitter.
    // Followers mirror the retrying state: they ride the next attempt.
    let mut retry_at: Option<Instant> = None;
    if let Err(e) = &result {
        let retries = registry.jobs[&exec].retries;
        if e.is_transient() && !timed_out && !shutting_down && retries < spec.max_retries {
            let attempt = retries + 1;
            let retry_event = SearchEvent::Failed {
                message: format!("{e} (retry {attempt}/{} scheduled)", spec.max_retries),
            };
            let mut targets = vec![exec];
            targets.extend(followers_of(&registry, exec));
            for target in targets {
                if let Some(record) = registry.jobs.get_mut(&target) {
                    record.state = JobState::Retrying { attempt };
                    record.retries = attempt;
                    record.events.push(retry_event.clone());
                }
            }
            journal(
                inner,
                &JournalRecord::State {
                    id: exec,
                    state: JobState::Retrying { attempt },
                    retries: attempt,
                },
            );
            let backoff = spec
                .retry_backoff_ms
                .saturating_mul(1u64 << (attempt.min(16) - 1));
            retry_at = Some(Instant::now() + Duration::from_millis(backoff));
        }
    }
    if let Some(ready_at) = retry_at {
        registry.pending.push(PendingEntry {
            id: exec,
            ready_at: Some(ready_at),
        });
        drop(registry);
        // notify_all: sleeping workers must recompute their wait deadline
        // against the new backoff entry.
        inner.work_cv.notify_all();
        return;
    }

    let (state, final_result) = if timed_out {
        (
            JobState::TimedOut,
            Err(SearchError::DeadlineExceeded {
                timeout_secs: spec.timeout_secs.unwrap_or(0.0),
            }),
        )
    } else {
        match (&result, status) {
            (Err(SearchError::Panicked { message }), _) => (
                JobState::Failed {
                    panic: Some(message.clone()),
                },
                result,
            ),
            (Err(SearchError::Cancelled), _) | (_, Some(SearchStatus::Cancelled)) => {
                // A durable server shutting down *suspends* the job: the
                // journal keeps it queued behind its final checkpoint, so
                // the next launch resumes instead of re-running. A job the
                // user explicitly cancelled stays cancelled. Followers are
                // cancelled in memory only — their journaled submissions
                // replay as independent fresh jobs on the next launch.
                if shutting_down && inner.store.is_some() && !registry.jobs[&exec].user_cancelled {
                    if let Some(checkpoint) = registry.jobs[&exec].checkpoint.clone() {
                        journal(
                            inner,
                            &JournalRecord::Checkpoint {
                                id: exec,
                                checkpoint,
                            },
                        );
                    }
                    journal(
                        inner,
                        &JournalRecord::State {
                            id: exec,
                            state: JobState::Queued,
                            retries: registry.jobs[&exec].retries,
                        },
                    );
                    let mut targets = vec![exec];
                    targets.extend(followers_of(&registry, exec));
                    for target in targets {
                        if let Some(record) = registry.jobs.get_mut(&target) {
                            record.state = JobState::Cancelled;
                            record.result = Some(Err(SearchError::Cancelled));
                            record.leader = None;
                        }
                    }
                    return;
                }
                (JobState::Cancelled, result)
            }
            (Ok(_), _) => (JobState::Completed, result),
            (Err(_), _) => (JobState::Failed { panic: None }, result),
        }
    };

    // Every terminal event log should end on a terminal event; the engine
    // guarantees it except when the verdict was decided server-side
    // (deadline expiry surfaces as the engine's `Cancelled`, a panic may
    // have cut the stream short).
    let mut pad_event = None;
    if matches!(state, JobState::Failed { .. }) {
        let record = registry
            .jobs
            .get_mut(&exec)
            .expect("settling record exists");
        if record.events.last().is_none_or(|e| !e.is_terminal()) {
            if let Err(e) = &final_result {
                let event = SearchEvent::Failed {
                    message: e.to_string(),
                };
                record.events.push(event.clone());
                pad_event = Some(event);
            }
        }
    }

    journal(
        inner,
        &JournalRecord::Finished {
            id: exec,
            outcome: final_result.as_ref().ok().cloned(),
            error: final_result.as_ref().err().cloned(),
        },
    );
    journal(
        inner,
        &JournalRecord::State {
            id: exec,
            state: state.clone(),
            retries: registry.jobs[&exec].retries,
        },
    );

    // Fan the verdict out: every follower becomes terminal with its own
    // clone of the result, journaled like any finished job.
    let followers = {
        let record = registry
            .jobs
            .get_mut(&exec)
            .expect("settling record exists");
        record.state = state.clone();
        record.spec = None;
        record.result = Some(final_result.clone());
        std::mem::take(&mut record.followers)
    };
    for follower in followers {
        let Some(record) = registry.jobs.get_mut(&follower) else {
            continue;
        };
        record.state = state.clone();
        record.spec = None;
        record.result = Some(final_result.clone());
        record.leader = None;
        if let Some(event) = &pad_event {
            record.events.push(event.clone());
        }
        let retries = record.retries;
        journal(
            inner,
            &JournalRecord::Finished {
                id: follower,
                outcome: final_result.as_ref().ok().cloned(),
                error: final_result.as_ref().err().cloned(),
            },
        );
        journal(
            inner,
            &JournalRecord::State {
                id: follower,
                state: state.clone(),
                retries,
            },
        );
    }

    // This execution is no longer in flight; later identical submissions
    // either hit the result cache or start fresh.
    let to_cache = registry
        .jobs
        .get_mut(&exec)
        .and_then(|record| record.cache_key.take());
    if let Some(key) = &to_cache {
        if registry.inflight.get(&key.hash) == Some(&exec) {
            registry.inflight.remove(&key.hash);
        }
    }
    registry.exec_alias.retain(|_, target| *target != exec);

    let cache_insert = match (&to_cache, &state, registry.jobs.get(&exec)) {
        (Some(key), JobState::Completed, Some(record)) => match &record.result {
            Some(Ok(outcome)) => Some((key.clone(), Arc::new(outcome.clone()))),
            _ => None,
        },
        _ => None,
    };
    let evicted = evict_over_retention(&mut registry, inner.config.max_retained_jobs);
    journal_forgotten(inner, &evicted);
    drop(registry);
    if let (Some((key, outcome)), Some(cache)) = (cache_insert, &inner.cache) {
        lock_recover(cache).insert(&key, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::GateAlphabet;
    use qaoa::Backend;

    fn tiny_spec(seed: u64) -> JobSpec {
        let config = SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx"]).unwrap())
            .max_depth(1)
            .max_gates_per_mixer(1)
            .optimizer_budget(15)
            .no_prune()
            .backend(Backend::StateVector)
            .threads(1)
            .seed(seed)
            .build();
        JobSpec::new(config, vec![Graph::cycle(4)])
    }

    #[test]
    fn submit_validates_before_queueing() {
        let server = JobServer::start(JobServerConfig::default());
        let mut bad = tiny_spec(1);
        bad.config.max_depth = 0;
        assert!(matches!(
            server.submit(bad),
            Err(SearchError::InvalidConfig { .. })
        ));
        let mut empty = tiny_spec(1);
        empty.graphs.clear();
        assert!(matches!(server.submit(empty), Err(SearchError::NoGraphs)));
        server.shutdown();
    }

    #[test]
    fn queue_capacity_is_enforced() {
        // Zero workers is clamped to one, so use a held lock... simplest:
        // a capacity-1 server with a single slow-ish job plus fast probes.
        let server = JobServer::start(JobServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..JobServerConfig::default()
        });
        // Fill the worker and the queue.
        let first = server.submit(tiny_spec(1)).unwrap();
        let mut queued_or_full = 0;
        for seed in 2..20 {
            match server.submit(tiny_spec(seed)) {
                Ok(_) => queued_or_full += 1,
                Err(e) => {
                    // The only acceptable rejection on this path is the
                    // bounded queue pushing back.
                    assert!(
                        matches!(e, SearchError::QueueFull { capacity: 1 }),
                        "submit must fail with QueueFull {{ capacity: 1 }}, got: {e}"
                    );
                    queued_or_full = 100;
                    break;
                }
            }
        }
        // Either the jobs were fast enough to drain (all accepted) or the
        // bound kicked in; on any realistic machine the latter.
        assert!(queued_or_full >= 1);
        server.wait(first).unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn unknown_job_queries_error() {
        let server = JobServer::start(JobServerConfig::default());
        assert!(matches!(
            server.status(JobId(99)),
            Err(SearchError::UnknownJob { id: 99 })
        ));
        assert!(matches!(
            server.events_since(JobId(99), 0),
            Err(SearchError::UnknownJob { .. })
        ));
        assert!(!server.cancel(JobId(99)));
        server.shutdown();
    }

    #[test]
    fn terminal_records_are_bounded_and_forgettable() {
        let server = JobServer::start(JobServerConfig {
            workers: 1,
            queue_capacity: 16,
            max_retained_jobs: 2,
        });
        let ids: Vec<JobId> = (0..5)
            .map(|i| server.submit(tiny_spec(i)).unwrap())
            .collect();
        for id in &ids {
            // A record may already have been evicted by later completions.
            if let Ok(result) = server.wait(*id) {
                let _ = result;
            }
        }
        // At most `max_retained_jobs` terminal records survive, the newest
        // ones first (the oldest were evicted).
        let remaining = server.jobs();
        assert!(remaining.len() <= 2, "retained {remaining:?}");
        if let Some(last) = remaining.last() {
            assert_eq!(last.id, ids.last().unwrap().0);
            // Explicit forget drops a terminal record immediately.
            assert!(server.forget(JobId(last.id)));
            assert!(matches!(
                server.status(JobId(last.id)),
                Err(SearchError::UnknownJob { .. })
            ));
            assert!(!server.forget(JobId(last.id)));
        }
        server.shutdown();
    }

    #[test]
    fn priorities_order_the_queue() {
        // One worker, jobs submitted while the worker is busy: the higher
        // priority job must run before the lower one.
        let server = JobServer::start(JobServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..JobServerConfig::default()
        });
        let blocker = server.submit(tiny_spec(1)).unwrap();
        let low = server.submit(tiny_spec(2).priority(-5)).unwrap();
        let high = server.submit(tiny_spec(3).priority(5)).unwrap();
        server.wait(blocker).unwrap().unwrap();
        server.wait(low).unwrap().unwrap();
        server.wait(high).unwrap().unwrap();
        // All completed; ordering is asserted structurally (high popped
        // before low) via the recorded event counts being complete.
        for id in [blocker, low, high] {
            let status = server.status(id).unwrap();
            assert_eq!(status.state, JobState::Completed, "job {id}");
            assert_eq!(status.retries, 0);
            assert!(status.events_recorded > 0);
        }
        server.shutdown();
    }

    #[test]
    fn job_state_taxonomy_is_terminal_consistent() {
        for state in [
            JobState::Completed,
            JobState::Cancelled,
            JobState::TimedOut,
            JobState::Failed { panic: None },
            JobState::Failed {
                panic: Some("boom".to_string()),
            },
        ] {
            assert!(state.is_terminal(), "{state}");
        }
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Retrying { attempt: 1 },
        ] {
            assert!(!state.is_terminal(), "{state}");
        }
    }

    #[test]
    fn immediate_timeout_reports_timed_out() {
        let server = JobServer::start(JobServerConfig {
            workers: 1,
            queue_capacity: 4,
            ..JobServerConfig::default()
        });
        let id = server.submit(tiny_spec(1).timeout_secs(0.0)).unwrap();
        let result = server.wait(id).unwrap();
        assert!(matches!(result, Err(SearchError::DeadlineExceeded { .. })));
        assert_eq!(server.status(id).unwrap().state, JobState::TimedOut);
        server.shutdown();
    }
}
