//! The multi-tenant job server: many concurrent search sessions over one
//! bounded, priority-ordered queue.
//!
//! [`JobServer`] is the programmatic face of `qas serve`: callers submit
//! [`JobSpec`]s (a [`SearchConfig`] plus training graphs and a priority),
//! a fixed pool of worker threads drains the queue highest-priority-first,
//! and every job runs as a [`SearchDriver`] session whose
//! [`SearchEvent`] stream is recorded for later retrieval
//! ([`JobServer::events_since`]). Queued jobs cancel instantly; running
//! jobs cancel cooperatively through the session's [`Canceller`], draining
//! to a valid partial outcome exactly like a directly-held handle.
//!
//! Inside each job the work-stealing executor still parallelizes candidate
//! evaluation (`SearchConfig::threads`), so the server multiplexes at two
//! levels: jobs across workers, candidates across each job's evaluation
//! threads. The queue is **bounded** ([`JobServerConfig::queue_capacity`]):
//! submissions beyond it fail fast with [`SearchError::QueueFull`] instead
//! of accumulating unbounded memory — the behaviour a front door serving
//! heavy traffic needs.

use crate::error::SearchError;
use crate::events::SearchEvent;
use crate::search::{SearchConfig, SearchOutcome};
use crate::session::{Canceller, SearchDriver, SearchProgress, SearchStatus};
use graphs::Graph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Identifier of a submitted job (monotonically increasing per server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A search job: configuration, training graphs, and scheduling metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Optional caller-supplied label (shown in status listings).
    pub name: Option<String>,
    /// Higher runs first; ties serve in submission order.
    pub priority: i32,
    /// The search configuration (execution mode included).
    pub config: SearchConfig,
    /// The training graphs.
    pub graphs: Vec<Graph>,
}

impl JobSpec {
    /// A job with default priority 0 and no name.
    pub fn new(config: SearchConfig, graphs: Vec<Graph>) -> JobSpec {
        JobSpec {
            name: None,
            priority: 0,
            config,
            graphs,
        }
    }

    /// Set the priority.
    pub fn priority(mut self, priority: i32) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Set the label.
    pub fn name(mut self, name: impl Into<String>) -> JobSpec {
        self.name = Some(name.into());
        self
    }
}

/// Queue/lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// A worker is driving its search session.
    Running,
    /// Finished every depth; the outcome is ready.
    Completed,
    /// Cancelled (instantly if queued; cooperatively if running — a partial
    /// outcome may still be available).
    Cancelled,
    /// The session failed.
    Failed,
}

impl JobState {
    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

/// A point-in-time public view of one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// Caller-supplied label, if any.
    pub name: Option<String>,
    /// Scheduling priority.
    pub priority: i32,
    /// Queue/lifecycle state.
    pub state: JobState,
    /// Events recorded so far (the `since` cursor for
    /// [`JobServer::events_since`]).
    pub events_recorded: usize,
    /// Search progress, once the session has started.
    pub progress: Option<SearchProgress>,
}

/// Server tuning knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobServerConfig {
    /// Concurrent worker threads (each drives one job at a time).
    pub workers: usize,
    /// Maximum jobs waiting in the queue (running jobs do not count).
    pub queue_capacity: usize,
    /// Maximum **terminal** job records retained (event logs + outcomes).
    /// When a job reaches a terminal state beyond this bound, the oldest
    /// terminal records are evicted — a long-lived server stays bounded on
    /// both ends (queued work by `queue_capacity`, history by this).
    /// Clients can also drop records eagerly with [`JobServer::forget`].
    pub max_retained_jobs: usize,
}

impl Default for JobServerConfig {
    fn default() -> Self {
        JobServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_retained_jobs: 256,
        }
    }
}

struct JobRecord {
    name: Option<String>,
    priority: i32,
    state: JobState,
    spec: Option<JobSpec>,
    events: Vec<SearchEvent>,
    canceller: Option<Canceller>,
    progress: Option<SearchProgress>,
    result: Option<Result<SearchOutcome, SearchError>>,
}

struct Registry {
    jobs: HashMap<u64, JobRecord>,
    /// Ids waiting to run (ordering resolved at pop time).
    pending: Vec<u64>,
    next_id: u64,
    shutdown: bool,
}

struct ServerInner {
    config: JobServerConfig,
    registry: Mutex<Registry>,
    /// Signalled when work arrives or shutdown begins.
    work_cv: Condvar,
    /// Signalled whenever a job reaches a terminal state.
    done_cv: Condvar,
}

/// A running job server; dropping it (or calling [`JobServer::shutdown`])
/// cancels outstanding work and joins the workers.
pub struct JobServer {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl JobServer {
    /// Start a server with the given worker pool and queue bound.
    pub fn start(config: JobServerConfig) -> JobServer {
        let inner = Arc::new(ServerInner {
            config: JobServerConfig {
                workers: config.workers.max(1),
                queue_capacity: config.queue_capacity.max(1),
                max_retained_jobs: config.max_retained_jobs.max(1),
            },
            registry: Mutex::new(Registry {
                jobs: HashMap::new(),
                pending: Vec::new(),
                next_id: 1,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qas-job-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn job worker")
            })
            .collect();
        JobServer { inner, workers }
    }

    /// Submit a job. Fails fast with [`SearchError::QueueFull`] when the
    /// bounded queue is at capacity, and validates the configuration before
    /// accepting (a job that could never start is rejected here, not
    /// buried in a failed record).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SearchError> {
        if spec.graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        spec.config.validate_for(spec.config.mode)?;
        let mut registry = self.lock_registry();
        if registry.shutdown {
            return Err(SearchError::Evaluation {
                message: "job server is shutting down".to_string(),
            });
        }
        if registry.pending.len() >= self.inner.config.queue_capacity {
            return Err(SearchError::QueueFull {
                capacity: self.inner.config.queue_capacity,
            });
        }
        let id = registry.next_id;
        registry.next_id += 1;
        registry.jobs.insert(
            id,
            JobRecord {
                name: spec.name.clone(),
                priority: spec.priority,
                state: JobState::Queued,
                spec: Some(spec),
                events: Vec::new(),
                canceller: None,
                progress: None,
                result: None,
            },
        );
        registry.pending.push(id);
        drop(registry);
        self.inner.work_cv.notify_one();
        Ok(JobId(id))
    }

    /// Cancel a job: queued jobs are cut instantly, running jobs
    /// cooperatively (their partial outcome, if any, stays retrievable).
    /// Returns `false` for unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut registry = self.lock_registry();
        let Some(record) = registry.jobs.get_mut(&id.0) else {
            return false;
        };
        match record.state {
            JobState::Queued => {
                record.state = JobState::Cancelled;
                record.spec = None;
                record.result = Some(Err(SearchError::Cancelled));
                registry.pending.retain(|&p| p != id.0);
                evict_over_retention(&mut registry, self.inner.config.max_retained_jobs);
                drop(registry);
                self.inner.done_cv.notify_all();
                true
            }
            JobState::Running => {
                if let Some(canceller) = &record.canceller {
                    canceller.cancel();
                }
                true
            }
            _ => false,
        }
    }

    /// Status of one job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, SearchError> {
        let registry = self.lock_registry();
        registry
            .jobs
            .get(&id.0)
            .map(|r| Self::status_of(id.0, r))
            .ok_or(SearchError::UnknownJob { id: id.0 })
    }

    /// Status of every job, in submission order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let registry = self.lock_registry();
        let mut ids: Vec<u64> = registry.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .map(|id| Self::status_of(*id, &registry.jobs[id]))
            .collect()
    }

    /// The job's recorded events from cursor `since` on, plus the next
    /// cursor value. Events are recorded in the session's deterministic
    /// emission order.
    pub fn events_since(
        &self,
        id: JobId,
        since: usize,
    ) -> Result<(Vec<SearchEvent>, usize), SearchError> {
        let registry = self.lock_registry();
        let record = registry
            .jobs
            .get(&id.0)
            .ok_or(SearchError::UnknownJob { id: id.0 })?;
        let start = since.min(record.events.len());
        Ok((record.events[start..].to_vec(), record.events.len()))
    }

    /// The job's outcome, if it has reached a terminal state (`None` while
    /// queued or running). Cancelled jobs report their partial outcome when
    /// at least one depth completed.
    pub fn result(
        &self,
        id: JobId,
    ) -> Result<Option<Result<SearchOutcome, SearchError>>, SearchError> {
        let registry = self.lock_registry();
        let record = registry
            .jobs
            .get(&id.0)
            .ok_or(SearchError::UnknownJob { id: id.0 })?;
        Ok(record.result.clone())
    }

    /// Block until the job reaches a terminal state and return its outcome.
    pub fn wait(&self, id: JobId) -> Result<Result<SearchOutcome, SearchError>, SearchError> {
        let mut registry = self.lock_registry();
        loop {
            let Some(record) = registry.jobs.get(&id.0) else {
                return Err(SearchError::UnknownJob { id: id.0 });
            };
            if let Some(result) = record.result.clone() {
                return Ok(result);
            }
            registry = self
                .inner
                .done_cv
                .wait(registry)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Drop a **terminal** job's record (event log, outcome). Returns
    /// `false` for unknown jobs and refuses queued/running ones (cancel
    /// first). Lets protocol clients reclaim history eagerly instead of
    /// waiting for the `max_retained_jobs` eviction.
    pub fn forget(&self, id: JobId) -> bool {
        let mut registry = self.lock_registry();
        match registry.jobs.get(&id.0) {
            Some(record) if record.state.is_terminal() => {
                registry.jobs.remove(&id.0);
                true
            }
            _ => false,
        }
    }

    /// Stop accepting work, cancel queued and running jobs, and join the
    /// workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut registry = self.lock_registry();
        registry.shutdown = true;
        let pending = std::mem::take(&mut registry.pending);
        for id in pending {
            if let Some(record) = registry.jobs.get_mut(&id) {
                record.state = JobState::Cancelled;
                record.spec = None;
                record.result = Some(Err(SearchError::Cancelled));
            }
        }
        for record in registry.jobs.values_mut() {
            if let Some(canceller) = &record.canceller {
                canceller.cancel();
            }
        }
        drop(registry);
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
    }

    fn status_of(id: u64, record: &JobRecord) -> JobStatus {
        JobStatus {
            id,
            name: record.name.clone(),
            priority: record.priority,
            state: record.state,
            events_recorded: record.events.len(),
            progress: record.progress.clone(),
        }
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.inner
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for JobServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobServer")
            .field("config", &self.inner.config)
            .field("jobs", &self.jobs().len())
            .finish()
    }
}

/// Evict the oldest terminal job records beyond the retention cap (queued
/// and running jobs are never touched).
fn evict_over_retention(registry: &mut Registry, cap: usize) {
    let mut terminal: Vec<u64> = registry
        .jobs
        .iter()
        .filter(|(_, record)| record.state.is_terminal())
        .map(|(id, _)| *id)
        .collect();
    if terminal.len() <= cap {
        return;
    }
    terminal.sort_unstable();
    for id in terminal.drain(..terminal.len() - cap) {
        registry.jobs.remove(&id);
    }
}

fn worker_loop(inner: Arc<ServerInner>) {
    loop {
        // Pop the highest-priority pending job (ties: lowest id first).
        let (id, spec) = {
            let mut registry = inner.registry.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if registry.shutdown {
                    return;
                }
                let best = registry.pending.iter().copied().max_by_key(|id| {
                    let priority = registry.jobs[id].priority;
                    (priority, std::cmp::Reverse(*id))
                });
                if let Some(id) = best {
                    registry.pending.retain(|&p| p != id);
                    let record = registry.jobs.get_mut(&id).expect("pending job exists");
                    let spec = record.spec.take().expect("queued job keeps its spec");
                    record.state = JobState::Running;
                    break (id, spec);
                }
                registry = inner
                    .work_cv
                    .wait(registry)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };

        run_job(&inner, id, spec);
        inner.done_cv.notify_all();
    }
}

fn run_job(inner: &ServerInner, id: u64, spec: JobSpec) {
    let driver = SearchDriver::new(spec.config);
    let handle = match driver.start(&spec.graphs) {
        Ok(handle) => handle,
        Err(e) => {
            let mut registry = inner.registry.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(record) = registry.jobs.get_mut(&id) {
                record.state = JobState::Failed;
                record.result = Some(Err(e));
            }
            return;
        }
    };
    {
        let mut registry = inner.registry.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(record) = registry.jobs.get_mut(&id) {
            record.canceller = Some(handle.canceller());
        }
    }

    // Drain the event stream live so status/events requests see mid-run
    // telemetry; the channel closes when the engine reaches a terminal
    // event.
    while let Some(event) = handle.next_event() {
        let mut registry = inner.registry.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(record) = registry.jobs.get_mut(&id) {
            record.events.push(event);
            record.progress = Some(handle.progress());
        }
    }

    let result = handle.wait();
    let status = handle.progress().status;
    let mut registry = inner.registry.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(record) = registry.jobs.get_mut(&id) {
        record.progress = Some(handle.progress());
        record.canceller = None;
        record.state = match status {
            SearchStatus::Finished => JobState::Completed,
            SearchStatus::Cancelled => JobState::Cancelled,
            SearchStatus::Failed => JobState::Failed,
            // The engine already returned, so Running can only mean the
            // result raced ahead of the status write; classify by result.
            SearchStatus::Running => {
                if result.is_ok() {
                    JobState::Completed
                } else {
                    JobState::Failed
                }
            }
        };
        record.result = Some(result);
    }
    evict_over_retention(&mut registry, inner.config.max_retained_jobs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::GateAlphabet;
    use qaoa::Backend;

    fn tiny_spec(seed: u64) -> JobSpec {
        let config = SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx"]).unwrap())
            .max_depth(1)
            .max_gates_per_mixer(1)
            .optimizer_budget(15)
            .no_prune()
            .backend(Backend::StateVector)
            .threads(1)
            .seed(seed)
            .build();
        JobSpec::new(config, vec![Graph::cycle(4)])
    }

    #[test]
    fn submit_validates_before_queueing() {
        let server = JobServer::start(JobServerConfig::default());
        let mut bad = tiny_spec(1);
        bad.config.max_depth = 0;
        assert!(matches!(
            server.submit(bad),
            Err(SearchError::InvalidConfig { .. })
        ));
        let mut empty = tiny_spec(1);
        empty.graphs.clear();
        assert!(matches!(server.submit(empty), Err(SearchError::NoGraphs)));
        server.shutdown();
    }

    #[test]
    fn queue_capacity_is_enforced() {
        // Zero workers is clamped to one, so use a held lock... simplest:
        // a capacity-1 server with a single slow-ish job plus fast probes.
        let server = JobServer::start(JobServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..JobServerConfig::default()
        });
        // Fill the worker and the queue.
        let first = server.submit(tiny_spec(1)).unwrap();
        let mut queued_or_full = 0;
        for seed in 2..20 {
            match server.submit(tiny_spec(seed)) {
                Ok(_) => queued_or_full += 1,
                Err(SearchError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    queued_or_full = 100;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // Either the jobs were fast enough to drain (all accepted) or the
        // bound kicked in; on any realistic machine the latter.
        assert!(queued_or_full >= 1);
        server.wait(first).unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn unknown_job_queries_error() {
        let server = JobServer::start(JobServerConfig::default());
        assert!(matches!(
            server.status(JobId(99)),
            Err(SearchError::UnknownJob { id: 99 })
        ));
        assert!(matches!(
            server.events_since(JobId(99), 0),
            Err(SearchError::UnknownJob { .. })
        ));
        assert!(!server.cancel(JobId(99)));
        server.shutdown();
    }

    #[test]
    fn terminal_records_are_bounded_and_forgettable() {
        let server = JobServer::start(JobServerConfig {
            workers: 1,
            queue_capacity: 16,
            max_retained_jobs: 2,
        });
        let ids: Vec<JobId> = (0..5)
            .map(|i| server.submit(tiny_spec(i)).unwrap())
            .collect();
        for id in &ids {
            // A record may already have been evicted by later completions.
            if let Ok(result) = server.wait(*id) {
                let _ = result;
            }
        }
        // At most `max_retained_jobs` terminal records survive, the newest
        // ones first (the oldest were evicted).
        let remaining = server.jobs();
        assert!(remaining.len() <= 2, "retained {remaining:?}");
        if let Some(last) = remaining.last() {
            assert_eq!(last.id, ids.last().unwrap().0);
            // Explicit forget drops a terminal record immediately.
            assert!(server.forget(JobId(last.id)));
            assert!(matches!(
                server.status(JobId(last.id)),
                Err(SearchError::UnknownJob { .. })
            ));
            assert!(!server.forget(JobId(last.id)));
        }
        server.shutdown();
    }

    #[test]
    fn priorities_order_the_queue() {
        // One worker, jobs submitted while the worker is busy: the higher
        // priority job must run before the lower one.
        let server = JobServer::start(JobServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..JobServerConfig::default()
        });
        let blocker = server.submit(tiny_spec(1)).unwrap();
        let low = server.submit(tiny_spec(2).priority(-5)).unwrap();
        let high = server.submit(tiny_spec(3).priority(5)).unwrap();
        server.wait(blocker).unwrap().unwrap();
        server.wait(low).unwrap().unwrap();
        server.wait(high).unwrap().unwrap();
        // All completed; ordering is asserted structurally (high popped
        // before low) via the recorded event counts being complete.
        for id in [blocker, low, high] {
            let status = server.status(id).unwrap();
            assert_eq!(status.state, JobState::Completed, "job {id}");
            assert!(status.events_recorded > 0);
        }
        server.shutdown();
    }
}
