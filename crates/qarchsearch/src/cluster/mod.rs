//! The distributed serve tier: a shard coordinator with checkpoint
//! migration and admission control — the `qas coordinator` engine.
//!
//! A cluster is N independent `qas serve --port` processes (**shards**)
//! fronted by one [`Coordinator`]. The coordinator speaks the same
//! JSON-lines protocol on both sides: clients submit to it exactly as
//! they would to a single shard, and it proxies
//! `submit/status/events/result/wait/cancel/forget/stats` down to the
//! shard that owns each job, mapping coordinator-scoped job ids to
//! shard-local ids. Three properties make the tier more than a proxy:
//!
//! * **Content-keyed routing** ([`shard`], via
//!   [`crate::cache::rendezvous_route`]): submissions are placed by
//!   rendezvous-hashing their [`crate::cache::spec_cache_key`], so
//!   identical searches always land on the same shard and cluster-wide
//!   dedupe/coalescing falls out of each shard's single-node result
//!   cache. When a shard dies only its keys move; the rest of the
//!   cluster's cache affinity is undisturbed.
//! * **Checkpoint migration** ([`coordinator`]): shards are
//!   health-checked by heartbeat. When one is declared dead, the
//!   coordinator replays its journal read-only
//!   ([`crate::store::replay`]), adopts any journaled terminal results,
//!   and re-submits incomplete jobs to a surviving shard from their last
//!   durable checkpoint (`{"cmd":"submit_spec"}` →
//!   [`crate::server::JobServer::submit_with_checkpoint`]). Because
//!   searches are deterministic and checkpoints resume bit-identically,
//!   a migrated job's report equals an undisturbed single-node run under
//!   [`crate::report::SearchReport::without_timings`] — pinned by the
//!   kill-a-shard chaos tests in `tests/cluster.rs`.
//! * **Admission control** ([`admission`]): a token-bucket rate limit,
//!   per-tenant in-flight quotas (keyed by the optional `tenant` field
//!   on submit), and bounded-wait backpressure that retries a full
//!   cluster queue for up to `max_wait_ms` before rejecting with a
//!   retry-after hint ([`crate::SearchError::AdmissionDenied`]) — the
//!   cluster edge never surfaces a bare fail-fast
//!   [`crate::SearchError::QueueFull`].
//!
//! The coordinator holds no durable state of its own: every job's
//! durable truth lives in its shard's journal, which is also why a shard
//! that restarts *before* being declared dead simply resumes its own
//! jobs under the same shard-local ids and the coordinator's mapping
//! stays valid.

pub mod admission;
pub mod coordinator;
pub mod shard;

pub use admission::{AdmissionConfig, AdmissionControl, AdmissionStats};
pub use coordinator::{ClusterConfig, ClusterStats, Coordinator, ShardSnapshot, Submission};
pub use shard::{ShardClient, ShardEndpoint};
