//! Admission control at the cluster edge: token-bucket rate limiting,
//! per-tenant in-flight quotas, and bounded-wait backpressure counters.
//!
//! Admission decisions happen **before** routing: a rejected submission
//! never consumes a shard queue slot, and every rejection carries a
//! retry-after hint ([`crate::SearchError::AdmissionDenied`]) so clients
//! back off instead of hammering the edge. The token bucket takes the
//! current instant as an explicit argument, which keeps the refill
//! arithmetic deterministic under test (no hidden clock reads).

use crate::error::SearchError;
use crate::sync::lock_recover;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Tuning of the cluster edge's admission gates.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Token-bucket refill rate in submissions per second across the
    /// whole cluster (`0.0` disables rate limiting).
    pub rate_per_sec: f64,
    /// Token-bucket capacity: the burst admitted from a full bucket.
    pub burst: u32,
    /// Maximum in-flight (non-terminal) jobs per tenant (`0` disables
    /// quotas). Submissions without a `tenant` field are exempt.
    pub tenant_quota: usize,
    /// How long a submission may wait at the edge while every live
    /// shard's queue is full before it is rejected with a retry-after
    /// hint. `0` = fail fast (but still with the hint, never a bare
    /// [`crate::SearchError::QueueFull`]).
    pub max_wait_ms: u64,
    /// Poll interval of the bounded wait (and the retry-after hint's
    /// unit of suggestion).
    pub retry_poll_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_per_sec: 0.0,
            burst: 8,
            tenant_quota: 0,
            max_wait_ms: 2_000,
            retry_poll_ms: 50,
        }
    }
}

/// Counters of every admission decision, aggregated into
/// [`crate::cluster::ClusterStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Submissions admitted past both gates.
    pub admitted: u64,
    /// Submissions rejected by the token bucket.
    pub rejected_rate_limit: u64,
    /// Submissions rejected by a tenant's in-flight quota.
    pub rejected_quota: u64,
    /// Admitted submissions that then timed out of the bounded wait
    /// because every live shard's queue stayed full.
    pub rejected_backpressure: u64,
}

/// A classic token bucket with an explicit clock: `rate_per_sec` tokens
/// accrue continuously up to `capacity`, one token per admission.
struct TokenBucket {
    rate_per_sec: f64,
    capacity: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(rate_per_sec: f64, burst: u32, now: Instant) -> TokenBucket {
        let capacity = f64::from(burst.max(1));
        TokenBucket {
            rate_per_sec,
            capacity,
            tokens: capacity,
            last_refill: now,
        }
    }

    /// Take one token at `now`, or return the suggested wait in
    /// milliseconds until one will have accrued.
    fn try_take(&mut self, now: Instant) -> Result<(), u64> {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - self.tokens;
        let wait_ms = if self.rate_per_sec > 0.0 {
            (deficit / self.rate_per_sec * 1_000.0).ceil() as u64
        } else {
            u64::MAX
        };
        Err(wait_ms.max(1))
    }
}

struct AdmissionState {
    bucket: Option<TokenBucket>,
    tenant_inflight: HashMap<String, usize>,
    stats: AdmissionStats,
}

/// The cluster edge's admission controller. Thread-safe; one per
/// [`crate::cluster::Coordinator`].
pub struct AdmissionControl {
    config: AdmissionConfig,
    state: Mutex<AdmissionState>,
}

impl AdmissionControl {
    /// Build a controller (an all-zero config admits everything).
    pub fn new(config: AdmissionConfig) -> AdmissionControl {
        let bucket = if config.rate_per_sec > 0.0 {
            Some(TokenBucket::new(
                config.rate_per_sec,
                config.burst,
                Instant::now(),
            ))
        } else {
            None
        };
        AdmissionControl {
            config,
            state: Mutex::new(AdmissionState {
                bucket,
                tenant_inflight: HashMap::new(),
                stats: AdmissionStats::default(),
            }),
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Admit or reject a submission from `tenant` at wall-clock now.
    /// On success the tenant's in-flight count is incremented; the
    /// caller must [`AdmissionControl::release`] it exactly once when
    /// the job reaches a terminal state (or fails to place).
    pub fn admit(&self, tenant: Option<&str>) -> Result<(), SearchError> {
        self.admit_at(tenant, Instant::now())
    }

    /// [`AdmissionControl::admit`] with an explicit clock (tests).
    pub fn admit_at(&self, tenant: Option<&str>, now: Instant) -> Result<(), SearchError> {
        let mut state = lock_recover(&self.state);
        // Quota is checked before the bucket so a quota rejection never
        // burns a rate token, and the count is only incremented once
        // both gates pass.
        if let Some(tenant) = tenant {
            if self.config.tenant_quota > 0 {
                let inflight = state.tenant_inflight.get(tenant).copied().unwrap_or(0);
                if inflight >= self.config.tenant_quota {
                    state.stats.rejected_quota += 1;
                    return Err(SearchError::AdmissionDenied {
                        reason: format!(
                            "tenant '{tenant}' is at its quota of {} in-flight jobs",
                            self.config.tenant_quota
                        ),
                        retry_after_ms: self.config.retry_poll_ms.max(1),
                    });
                }
            }
        }
        if let Some(bucket) = &mut state.bucket {
            if let Err(wait_ms) = bucket.try_take(now) {
                state.stats.rejected_rate_limit += 1;
                return Err(SearchError::AdmissionDenied {
                    reason: format!("rate limit of {}/s exceeded", self.config.rate_per_sec),
                    retry_after_ms: wait_ms,
                });
            }
        }
        if let Some(tenant) = tenant {
            if self.config.tenant_quota > 0 {
                *state.tenant_inflight.entry(tenant.to_string()).or_insert(0) += 1;
            }
        }
        state.stats.admitted += 1;
        Ok(())
    }

    /// Return one in-flight slot to `tenant` (its job reached a
    /// terminal state, or placement failed after admission).
    pub fn release(&self, tenant: Option<&str>) {
        let Some(tenant) = tenant else { return };
        if self.config.tenant_quota == 0 {
            return;
        }
        let mut state = lock_recover(&self.state);
        if let Some(count) = state.tenant_inflight.get_mut(tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                state.tenant_inflight.remove(tenant);
            }
        }
    }

    /// Record an admitted submission that timed out of the bounded wait
    /// (every live shard's queue stayed full).
    pub fn note_backpressure_rejection(&self) {
        lock_recover(&self.state).stats.rejected_backpressure += 1;
    }

    /// Decision counters so far.
    pub fn stats(&self) -> AdmissionStats {
        lock_recover(&self.state).stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_bucket_admits_burst_then_refills_deterministically() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(2.0, 3, t0);
        assert_eq!(bucket.try_take(t0), Ok(()));
        assert_eq!(bucket.try_take(t0), Ok(()));
        assert_eq!(bucket.try_take(t0), Ok(()));
        // Bucket drained: at 2 tokens/s the next token is 500 ms out.
        assert_eq!(bucket.try_take(t0), Err(500));
        // 499 ms later there is still no whole token.
        assert!(bucket.try_take(t0 + Duration::from_millis(499)).is_err());
        // But a full second past the drain, one token has accrued
        // (minus the fractional debt the 499 ms probe left behind).
        assert_eq!(bucket.try_take(t0 + Duration::from_secs(1)), Ok(()));
        // And the bucket never overflows its capacity.
        let mut bucket = TokenBucket::new(2.0, 3, t0);
        let later = t0 + Duration::from_secs(3600);
        for _ in 0..3 {
            assert_eq!(bucket.try_take(later), Ok(()));
        }
        assert!(bucket.try_take(later).is_err());
    }

    #[test]
    fn quota_counts_per_tenant_and_releases() {
        let control = AdmissionControl::new(AdmissionConfig {
            tenant_quota: 2,
            ..AdmissionConfig::default()
        });
        assert!(control.admit(Some("acme")).is_ok());
        assert!(control.admit(Some("acme")).is_ok());
        let denied = control.admit(Some("acme")).unwrap_err();
        match denied {
            SearchError::AdmissionDenied {
                reason,
                retry_after_ms,
            } => {
                assert!(reason.contains("quota"), "{reason}");
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected AdmissionDenied, got {other:?}"),
        }
        // Other tenants and anonymous submissions are unaffected.
        assert!(control.admit(Some("globex")).is_ok());
        assert!(control.admit(None).is_ok());
        // Releasing a slot re-opens the quota.
        control.release(Some("acme"));
        assert!(control.admit(Some("acme")).is_ok());
        let stats = control.stats();
        assert_eq!(stats.rejected_quota, 1);
        assert_eq!(stats.admitted, 5);
    }

    #[test]
    fn rate_limit_rejects_with_retry_hint() {
        let control = AdmissionControl::new(AdmissionConfig {
            rate_per_sec: 1.0,
            burst: 1,
            ..AdmissionConfig::default()
        });
        let t0 = Instant::now();
        assert!(control.admit_at(None, t0).is_ok());
        match control.admit_at(None, t0).unwrap_err() {
            SearchError::AdmissionDenied { retry_after_ms, .. } => {
                assert_eq!(retry_after_ms, 1_000);
            }
            other => panic!("expected AdmissionDenied, got {other:?}"),
        }
        assert!(control.admit_at(None, t0 + Duration::from_secs(1)).is_ok());
        assert_eq!(control.stats().rejected_rate_limit, 1);
    }

    #[test]
    fn zero_config_admits_everything() {
        let control = AdmissionControl::new(AdmissionConfig {
            rate_per_sec: 0.0,
            tenant_quota: 0,
            ..AdmissionConfig::default()
        });
        for i in 0..100 {
            assert!(control.admit(Some(&format!("t{i}"))).is_ok());
        }
        assert_eq!(control.stats().admitted, 100);
    }
}
