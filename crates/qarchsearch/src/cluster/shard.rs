//! The coordinator's side of the shard protocol: one persistent
//! JSON-lines TCP connection per shard.
//!
//! A shard is an ordinary `qas serve --port` process; the client speaks
//! the exact protocol a human would over `nc` — one JSON request per
//! line, one JSON response per line. Every I/O failure tears down the
//! connection and surfaces as [`SearchError::Cluster`]; the next request
//! reconnects from scratch, so a shard that restarts is re-reachable
//! without any coordinator state beyond its address.

use crate::error::SearchError;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::time::Duration;

/// Where a shard lives, and (optionally) where its journal does.
#[derive(Debug, Clone)]
pub struct ShardEndpoint {
    /// `host:port` of the shard's `qas serve --port` listener.
    pub addr: String,
    /// The shard's `--state-dir`, when the coordinator can reach it
    /// (same machine or shared filesystem). This is what checkpoint
    /// migration reads post-mortem: a dead shard's journal is replayed
    /// read-only to recover checkpoints and finished results. `None`
    /// means migration falls back to re-running jobs from scratch —
    /// still bit-identical, just slower.
    pub state_dir: Option<PathBuf>,
}

impl ShardEndpoint {
    /// An endpoint with no reachable state dir.
    pub fn new(addr: impl Into<String>) -> ShardEndpoint {
        ShardEndpoint {
            addr: addr.into(),
            state_dir: None,
        }
    }

    /// Attach the shard's journal directory for post-mortem recovery.
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> ShardEndpoint {
        self.state_dir = Some(dir.into());
        self
    }
}

struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A lazily-(re)connecting JSON-lines request client for one shard.
///
/// Not internally synchronized: the coordinator wraps each client in its
/// own mutex, which also serializes heartbeats against proxied requests
/// to the same shard.
pub struct ShardClient {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
    conn: Option<ShardConn>,
}

impl ShardClient {
    /// A client for `addr`; connects on first use.
    pub fn new(
        addr: impl Into<String>,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> ShardClient {
        ShardClient {
            addr: addr.into(),
            connect_timeout,
            io_timeout,
            conn: None,
        }
    }

    /// The shard's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Drop the connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// One request/response round trip. Any I/O or framing failure
    /// drops the connection and maps to [`SearchError::Cluster`].
    pub fn request(&mut self, request: &Value) -> Result<Value, SearchError> {
        match self.round_trip(request) {
            Ok(response) => Ok(response),
            Err(message) => {
                self.conn = None;
                Err(SearchError::Cluster {
                    message: format!("shard {}: {message}", self.addr),
                })
            }
        }
    }

    fn round_trip(&mut self, request: &Value) -> Result<Value, String> {
        self.ensure_connected()?;
        let conn = self.conn.as_mut().expect("just connected");
        let line = serde_json::to_string(request).map_err(|e| format!("encode request: {e}"))?;
        conn.writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.write_all(b"\n"))
            .and_then(|()| conn.writer.flush())
            .map_err(|e| format!("send request: {e}"))?;
        let mut response = String::new();
        let read = conn
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("read response: {e}"))?;
        if read == 0 {
            return Err("connection closed mid-request".to_string());
        }
        serde_json::from_str(response.trim()).map_err(|e| format!("decode response: {e}"))
    }

    fn ensure_connected(&mut self) -> Result<(), String> {
        if self.conn.is_some() {
            return Ok(());
        }
        let addrs: Vec<_> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve address: {e}"))?
            .collect();
        let mut last_err = format!("no socket addresses for '{}'", self.addr);
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(self.io_timeout))
                        .map_err(|e| format!("set read timeout: {e}"))?;
                    stream
                        .set_write_timeout(Some(self.io_timeout))
                        .map_err(|e| format!("set write timeout: {e}"))?;
                    let _ = stream.set_nodelay(true);
                    let reader = BufReader::new(
                        stream
                            .try_clone()
                            .map_err(|e| format!("clone stream: {e}"))?,
                    );
                    self.conn = Some(ShardConn {
                        reader,
                        writer: stream,
                    });
                    return Ok(());
                }
                Err(e) => last_err = format!("connect {addr}: {e}"),
            }
        }
        Err(last_err)
    }
}

impl std::fmt::Debug for ShardClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardClient")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_shard_is_a_cluster_error() {
        // Bind-then-drop reserves a port that nothing is listening on.
        let port = {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap().port()
        };
        let mut client = ShardClient::new(
            format!("127.0.0.1:{port}"),
            Duration::from_millis(200),
            Duration::from_millis(200),
        );
        let err = client
            .request(&serde_json::json!({ "cmd": "stats" }))
            .unwrap_err();
        assert!(matches!(err, SearchError::Cluster { .. }), "{err:?}");
        assert!(!client.is_connected());
    }

    #[test]
    fn round_trips_against_a_line_echo_server() {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                writer.write_all(line.as_bytes()).unwrap();
            }
        });
        let mut client = ShardClient::new(
            addr.to_string(),
            Duration::from_millis(500),
            Duration::from_millis(500),
        );
        for i in 0..2u64 {
            let request = serde_json::json!({ "cmd": "stats", "round": (i) });
            let response = client.request(&request).unwrap();
            assert_eq!(response, request);
        }
        assert!(client.is_connected());
        server.join().unwrap();
    }
}
