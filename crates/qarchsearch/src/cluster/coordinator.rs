//! The shard coordinator: content-keyed routing, heartbeat health
//! checks, checkpoint migration off dead shards, and request proxying.
//!
//! One [`Coordinator`] fronts N `qas serve --port` shards. Its client
//! surface mirrors the single-node protocol verbatim — the coordinator
//! is deliberately a *thin* layer whose only private state is the
//! coordinator-id → (shard, shard-job-id) mapping, per-job migration
//! overlays, and results adopted out of dead shards' journals. All
//! durable truth stays in the shards' own journals, which is what makes
//! two recovery paths compose without coordination:
//!
//! * a shard that **restarts before being declared dead** replays its
//!   own journal and resumes its jobs under the same shard-local ids —
//!   the coordinator's mapping is still valid and nothing moves;
//! * a shard **declared dead** (consecutive heartbeat misses) has its
//!   journal replayed read-only by the coordinator: journaled terminal
//!   results are adopted locally, incomplete jobs are re-submitted to a
//!   surviving shard from their last checkpoint (or from scratch when
//!   none was reached). Determinism makes both bit-identical to an
//!   undisturbed run.
//!
//! Lock discipline: the job registry mutex is never held across network
//! I/O; each shard's client mutex serializes heartbeats against proxied
//! requests; shard liveness metadata lives in its own short-hold mutex
//! so routing never blocks behind a timing-out connect.

use crate::cache::{rendezvous_route, spec_cache_key};
use crate::cluster::admission::{AdmissionControl, AdmissionStats};
use crate::cluster::shard::{ShardClient, ShardEndpoint};
use crate::error::SearchError;
use crate::events::SearchEvent;
use crate::fault::{site, FaultContext, FaultInjector};
use crate::report::SearchReport;
use crate::search::SearchOutcome;
use crate::server::{JobId, JobSpec, JobState};
use crate::session::SearchCheckpoint;
use crate::store::{self, ReplayedState};
use crate::sync::lock_recover;
use serde::Serialize;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::cluster::admission::AdmissionConfig;

/// Tuning of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The shard fleet (at least one; at least one must be reachable at
    /// start).
    pub shards: Vec<ShardEndpoint>,
    /// Admission gates at the cluster edge.
    pub admission: AdmissionConfig,
    /// TCP connect timeout per shard attempt.
    pub connect_timeout_ms: u64,
    /// Read/write timeout of one shard request.
    pub request_timeout_ms: u64,
    /// Heartbeat period: every shard is pinged (`stats`) this often.
    pub heartbeat_ms: u64,
    /// Consecutive failed contacts before a shard is declared dead and
    /// its jobs are migrated.
    pub heartbeat_misses: u32,
    /// Poll period of [`Coordinator::wait`] (the coordinator never
    /// issues blocking `wait` to a shard — a blocked connection could
    /// not notice the shard dying).
    pub wait_poll_ms: u64,
    /// Armed chaos plan for the coordinator's own sites
    /// (`coordinator.submit`, `coordinator.migrate`; inert in release
    /// builds like every [`crate::fault`] plan).
    pub faults: Option<Arc<FaultInjector>>,
}

impl ClusterConfig {
    /// A config with defaults tuned for same-host shard fleets.
    pub fn new(shards: Vec<ShardEndpoint>) -> ClusterConfig {
        ClusterConfig {
            shards,
            admission: AdmissionConfig::default(),
            connect_timeout_ms: 1_000,
            request_timeout_ms: 5_000,
            heartbeat_ms: 250,
            heartbeat_misses: 3,
            wait_poll_ms: 25,
            faults: None,
        }
    }
}

/// What [`Coordinator::submit`] accepted: the coordinator-scoped id plus
/// the placement facts a client sees in the response envelope.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Coordinator-scoped job id (shard-local ids never leak to clients).
    pub id: JobId,
    /// Address of the shard the job was placed on.
    pub shard: String,
    /// Post-submit state (a shard-side cache hit is born `Completed`).
    pub state: JobState,
    /// Served from the owning shard's result cache.
    pub cache_hit: bool,
    /// Coalesced onto an identical in-flight execution on that shard.
    pub coalesced: bool,
}

/// One shard's health as the coordinator sees it.
#[derive(Debug, Clone, Serialize)]
pub struct ShardSnapshot {
    /// The shard's address.
    pub addr: String,
    /// Whether the shard is currently considered live.
    pub alive: bool,
    /// The shard's self-reported `--shard-id`, once heard.
    pub shard_id: Option<String>,
    /// Restarts detected via `uptime_secs` going backwards.
    pub restarts: u64,
    /// Consecutive failed contacts (resets on success).
    pub consecutive_misses: u32,
    /// The shard's last reported `stats` payload.
    pub stats: Option<Value>,
}

/// Cluster-wide aggregate statistics (`{"cmd":"stats"}` at the
/// coordinator's front door).
#[derive(Debug, Clone, Serialize)]
pub struct ClusterStats {
    /// Seconds since the coordinator started.
    pub uptime_secs: f64,
    /// The coordinator crate's version.
    pub version: String,
    /// Configured shard count.
    pub shards_total: usize,
    /// Shards currently considered live.
    pub shards_alive: usize,
    /// Jobs the coordinator tracks (all states).
    pub jobs_tracked: usize,
    /// Tracked jobs not yet terminal.
    pub jobs_inflight: usize,
    /// Jobs re-submitted to a surviving shard after a shard death.
    pub migrations: u64,
    /// Terminal results adopted out of dead shards' journals.
    pub results_recovered: u64,
    /// Summed queue depth over the shards' last reported stats.
    pub queue_depth: u64,
    /// Summed result-cache hits over the shards' last reported stats.
    pub cache_hits: u64,
    /// Summed result-cache misses over the shards' last reported stats.
    pub cache_misses: u64,
    /// Summed coalesced submissions over the shards' last reported stats.
    pub cache_coalesced: u64,
    /// Admission-gate decision counters.
    pub admission: AdmissionStats,
    /// Per-shard health and last stats.
    pub shards: Vec<ShardSnapshot>,
}

/// Short-hold liveness metadata, deliberately outside the client mutex:
/// routing reads this without ever waiting behind a timing-out connect.
struct ShardMeta {
    alive: bool,
    misses: u32,
    shard_id: Option<String>,
    last_uptime_secs: Option<f64>,
    restarts: u64,
    last_stats: Option<Value>,
}

struct ShardSlot {
    client: Mutex<ShardClient>,
    meta: Mutex<ShardMeta>,
}

struct ClusterJob {
    tenant: Option<String>,
    spec: JobSpec,
    key_hash: u64,
    shard: usize,
    shard_job: u64,
    state: JobState,
    /// The tenant quota slot was returned (exactly once, on the first
    /// observed terminal transition).
    released: bool,
    migrations: u32,
    /// Coordinator-side events ([`SearchEvent::Migrated`]) prepended to
    /// the owning shard's stream.
    overlay: Vec<SearchEvent>,
    /// A result held by the coordinator itself: adopted from a dead
    /// shard's journal, or a terminal migration failure.
    local: Option<Result<SearchOutcome, SearchError>>,
}

struct ClusterRegistry {
    jobs: BTreeMap<u64, ClusterJob>,
    next_id: u64,
}

struct CoordinatorInner {
    config: ClusterConfig,
    shards: Vec<ShardSlot>,
    registry: Mutex<ClusterRegistry>,
    admission: AdmissionControl,
    shutdown: AtomicBool,
    started: Instant,
    migrations: AtomicU64,
    results_recovered: AtomicU64,
    faults: Option<FaultContext>,
}

/// The cluster front door; see the [module docs](crate::cluster).
pub struct Coordinator {
    inner: Arc<CoordinatorInner>,
    heartbeat: Option<JoinHandle<()>>,
}

/// What one placement attempt concluded.
enum PlaceError {
    /// The target shard's queue is full — retry within the bounded wait.
    QueueFull,
    /// No shard was reachable (or none is alive) — retry within the
    /// bounded wait; shards may be restarting.
    Unreachable(SearchError),
    /// The shard rejected the spec itself — retrying cannot help.
    Fatal(SearchError),
}

impl Coordinator {
    /// Connect to the shard fleet and start the heartbeat. Fails when no
    /// shard is reachable (a cluster with zero live shards cannot serve).
    pub fn start(config: ClusterConfig) -> Result<Coordinator, SearchError> {
        if config.shards.is_empty() {
            return Err(SearchError::InvalidConfig {
                message: "cluster config needs at least one shard".to_string(),
            });
        }
        let connect = Duration::from_millis(config.connect_timeout_ms.max(1));
        let io = Duration::from_millis(config.request_timeout_ms.max(1));
        let shards: Vec<ShardSlot> = config
            .shards
            .iter()
            .map(|endpoint| ShardSlot {
                client: Mutex::new(ShardClient::new(endpoint.addr.clone(), connect, io)),
                meta: Mutex::new(ShardMeta {
                    alive: false,
                    misses: 0,
                    shard_id: None,
                    last_uptime_secs: None,
                    restarts: 0,
                    last_stats: None,
                }),
            })
            .collect();
        let faults = config
            .faults
            .clone()
            .map(|injector| FaultContext::new(injector, None));
        let inner = Arc::new(CoordinatorInner {
            admission: AdmissionControl::new(config.admission.clone()),
            config,
            shards,
            registry: Mutex::new(ClusterRegistry {
                jobs: BTreeMap::new(),
                next_id: 1,
            }),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            migrations: AtomicU64::new(0),
            results_recovered: AtomicU64::new(0),
            faults,
        });
        for idx in 0..inner.shards.len() {
            inner.heartbeat_shard(idx);
        }
        if inner.alive_shards().is_empty() {
            let addrs: Vec<&str> = inner
                .config
                .shards
                .iter()
                .map(|s| s.addr.as_str())
                .collect();
            return Err(SearchError::Cluster {
                message: format!("no shard reachable at start (tried {})", addrs.join(", ")),
            });
        }
        let heartbeat = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("qas-coordinator-heartbeat".to_string())
                .spawn(move || heartbeat_loop(inner))
                .expect("spawn coordinator heartbeat")
        };
        Ok(Coordinator {
            inner,
            heartbeat: Some(heartbeat),
        })
    }

    /// Submit a job for `tenant` (`None` = anonymous, quota-exempt).
    ///
    /// Order of gates: spec validation (a malformed spec never burns a
    /// rate token), admission, then content-keyed placement with a
    /// bounded wait — while every live shard's queue is full the
    /// submission retries for up to `admission.max_wait_ms` before
    /// rejecting with [`SearchError::AdmissionDenied`].
    pub fn submit(&self, spec: JobSpec, tenant: Option<String>) -> Result<Submission, SearchError> {
        if let Some(faults) = &self.inner.faults {
            faults.trip(site::COORDINATOR_SUBMIT)?;
        }
        if spec.graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        spec.config.validate_for(spec.config.mode)?;
        self.inner.admission.admit(tenant.as_deref())?;
        match self.inner.place(&spec) {
            Ok((shard, response)) => self.inner.register(tenant, spec, shard, response),
            Err(error) => {
                // The job never entered the cluster: hand the tenant's
                // quota slot back before surfacing the error.
                self.inner.admission.release(tenant.as_deref());
                Err(error)
            }
        }
    }

    /// Proxied job status (single-node `status` shape, plus `shard` and
    /// `migrations` fields; `events_recorded` counts the overlay too).
    pub fn status(&self, id: JobId) -> Result<Value, SearchError> {
        self.inner.status(id.0)
    }

    /// Proxied event stream: the coordinator's migration overlay
    /// prepended to the owning shard's events. A migration resets the
    /// shard-side stream exactly like a single-node restart does (a
    /// fresh `Started` at the resume depth), so cursors obtained before
    /// a migration remain monotonic but may skip re-narrated prefixes.
    pub fn events(&self, id: JobId, since: usize) -> Result<(Vec<Value>, usize), SearchError> {
        self.inner.events(id.0, since)
    }

    /// Proxied result envelope (single-node shape plus `shard`,
    /// `migrations`, and `report.migrated` when the job moved).
    pub fn result(&self, id: JobId) -> Result<Value, SearchError> {
        self.inner.result(id.0)
    }

    /// Block until the job reaches a terminal state, surviving shard
    /// deaths mid-wait: the coordinator polls `result` so a dying shard
    /// never wedges the wait — the job migrates and the poll follows it.
    pub fn wait(&self, id: JobId) -> Result<Value, SearchError> {
        let poll = Duration::from_millis(self.inner.config.wait_poll_ms.max(1));
        loop {
            match self.inner.result(id.0) {
                Ok(envelope) => {
                    if envelope.get("done").and_then(Value::as_bool) == Some(true) {
                        return Ok(envelope);
                    }
                }
                Err(e @ SearchError::UnknownJob { .. }) => return Err(e),
                Err(e) => {
                    // The owning shard is unreachable. Migration will
                    // re-route the job; only give up once no shard is
                    // left to migrate to (then the job fails locally or
                    // the cluster is gone entirely).
                    if self.inner.alive_shards().is_empty() && !self.inner.is_local(id.0) {
                        return Err(e);
                    }
                }
            }
            std::thread::sleep(poll);
        }
    }

    /// Proxied cooperative cancel (`false` for unknown/terminal jobs).
    pub fn cancel(&self, id: JobId) -> Result<bool, SearchError> {
        self.inner.cancel(id.0)
    }

    /// Drop a terminal job's record here and on its shard.
    pub fn forget(&self, id: JobId) -> Result<bool, SearchError> {
        self.inner.forget(id.0)
    }

    /// Coordinator-level job listing (no network: the registry's view).
    pub fn jobs(&self) -> Vec<Value> {
        self.inner.jobs()
    }

    /// Cluster-wide aggregate stats; refreshes live shards' stats first.
    pub fn stats(&self) -> ClusterStats {
        self.inner.stats(true)
    }

    /// Indices of shards currently considered live.
    pub fn alive_shards(&self) -> Vec<usize> {
        self.inner.alive_shards()
    }

    /// Total jobs re-submitted after shard deaths so far.
    pub fn migrations(&self) -> u64 {
        self.inner.migrations.load(Ordering::Relaxed)
    }

    /// Address of the shard currently owning `id` (`None` when unknown
    /// or held locally by the coordinator).
    pub fn shard_of(&self, id: JobId) -> Option<String> {
        let registry = lock_recover(&self.inner.registry);
        let job = registry.jobs.get(&id.0)?;
        if job.local.is_some() {
            return None;
        }
        Some(self.inner.config.shards[job.shard].addr.clone())
    }

    /// Stop the heartbeat and disconnect. With `shutdown_shards` the
    /// coordinator also sends each live shard a best-effort `shutdown`.
    pub fn shutdown(mut self, shutdown_shards: bool) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
        if shutdown_shards {
            for idx in 0..self.inner.shards.len() {
                let _ = self.inner.shard_request(idx, &json!({ "cmd": "shutdown" }));
            }
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("shards", &self.inner.shards.len())
            .field("alive", &self.inner.alive_shards().len())
            .finish()
    }
}

/// A job to move off a dead (or amnesiac) shard.
struct MigrationTicket {
    id: u64,
    shard_job: u64,
    spec: JobSpec,
    key_hash: u64,
    last_state: JobState,
}

impl CoordinatorInner {
    fn addr_of(&self, idx: usize) -> &str {
        &self.config.shards[idx].addr
    }

    fn alive_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| lock_recover(&self.shards[i].meta).alive)
            .collect()
    }

    fn is_local(&self, id: u64) -> bool {
        lock_recover(&self.registry)
            .jobs
            .get(&id)
            .is_some_and(|job| job.local.is_some())
    }

    /// One request to shard `idx`; bumps/clears its miss counter. Death
    /// is only ever declared by the heartbeat, so a burst of failing
    /// client requests accelerates detection without racing migration.
    fn shard_request(&self, idx: usize, request: &Value) -> Result<Value, SearchError> {
        let outcome = lock_recover(&self.shards[idx].client).request(request);
        let mut meta = lock_recover(&self.shards[idx].meta);
        match &outcome {
            Ok(_) => meta.misses = 0,
            Err(_) => meta.misses = meta.misses.saturating_add(1),
        }
        outcome
    }

    // -- placement ---------------------------------------------------------

    fn place(&self, spec: &JobSpec) -> Result<(usize, Value), SearchError> {
        let key = spec_cache_key(spec)?;
        let spec_value = serde_json::to_value(spec).map_err(|e| SearchError::Cluster {
            message: format!("serialize spec: {e}"),
        })?;
        let request = json!({ "cmd": "submit_spec", "spec": spec_value });
        let max_wait = Duration::from_millis(self.admission.config().max_wait_ms);
        let poll = Duration::from_millis(self.admission.config().retry_poll_ms.max(1));
        let started = Instant::now();
        let mut saw_queue_full = false;
        loop {
            let error = match self.try_place_once(key.hash, &request) {
                Ok(placed) => return Ok(placed),
                Err(PlaceError::Fatal(e)) => return Err(e),
                Err(PlaceError::QueueFull) => {
                    saw_queue_full = true;
                    SearchError::AdmissionDenied {
                        reason: "cluster queue is full".to_string(),
                        retry_after_ms: self.admission.config().retry_poll_ms.max(1) * 4,
                    }
                }
                Err(PlaceError::Unreachable(e)) => e,
            };
            if started.elapsed() >= max_wait {
                if saw_queue_full {
                    self.admission.note_backpressure_rejection();
                }
                return Err(error);
            }
            std::thread::sleep(poll);
        }
    }

    fn try_place_once(&self, key: u64, request: &Value) -> Result<(usize, Value), PlaceError> {
        let alive = self.alive_shards();
        if alive.is_empty() {
            return Err(PlaceError::Unreachable(SearchError::Cluster {
                message: "no live shards".to_string(),
            }));
        }
        let candidates: Vec<u64> = alive.iter().map(|&i| i as u64).collect();
        let target = rendezvous_route(key, &candidates).expect("candidates non-empty") as usize;
        match self.shard_request(target, request) {
            Ok(response) => {
                if response.get("ok").and_then(Value::as_bool) == Some(true) {
                    Ok((target, response))
                } else if response.get("queue_full").and_then(Value::as_bool) == Some(true) {
                    Err(PlaceError::QueueFull)
                } else {
                    let message = response
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("malformed shard response");
                    Err(PlaceError::Fatal(SearchError::Cluster {
                        message: format!("shard {}: {message}", self.addr_of(target)),
                    }))
                }
            }
            Err(e) => Err(PlaceError::Unreachable(e)),
        }
    }

    fn register(
        &self,
        tenant: Option<String>,
        spec: JobSpec,
        shard: usize,
        response: Value,
    ) -> Result<Submission, SearchError> {
        let shard_job =
            response
                .get("job")
                .and_then(Value::as_u64)
                .ok_or_else(|| SearchError::Cluster {
                    message: format!(
                        "shard {} accepted a submission without a job id",
                        self.addr_of(shard)
                    ),
                })?;
        let state: JobState = response
            .get("state")
            .and_then(|v| serde_json::from_value(v).ok())
            .unwrap_or(JobState::Queued);
        let cache_hit = response
            .get("cache_hit")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let coalesced = response
            .get("coalesced")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let key_hash = spec_cache_key(&spec).map(|k| k.hash).unwrap_or_default();
        let terminal = state.is_terminal();
        let id = {
            let mut registry = lock_recover(&self.registry);
            let id = registry.next_id;
            registry.next_id += 1;
            registry.jobs.insert(
                id,
                ClusterJob {
                    tenant: tenant.clone(),
                    spec,
                    key_hash,
                    shard,
                    shard_job,
                    state: state.clone(),
                    released: terminal,
                    migrations: 0,
                    overlay: Vec::new(),
                    local: None,
                },
            );
            id
        };
        if terminal {
            // Born terminal (shard-side cache hit): the quota slot is
            // returned immediately.
            self.admission.release(tenant.as_deref());
        }
        Ok(Submission {
            id: JobId(id),
            shard: self.addr_of(shard).to_string(),
            state,
            cache_hit,
            coalesced,
        })
    }

    // -- proxying ----------------------------------------------------------

    /// The routing facts of one tracked job, snapshotted briefly.
    fn route_of(&self, id: u64) -> Result<(usize, u64, usize, u32, bool), SearchError> {
        let registry = lock_recover(&self.registry);
        let job = registry
            .jobs
            .get(&id)
            .ok_or(SearchError::UnknownJob { id })?;
        Ok((
            job.shard,
            job.shard_job,
            job.overlay.len(),
            job.migrations,
            job.local.is_some(),
        ))
    }

    fn overlay_values(&self, id: u64) -> Vec<Value> {
        lock_recover(&self.registry)
            .jobs
            .get(&id)
            .map(|job| {
                job.overlay
                    .iter()
                    .map(|e| serde_json::to_value(e).unwrap_or(Value::Null))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Fold an observed state into the registry; releases the tenant
    /// quota slot on the first terminal observation.
    fn note_state(&self, id: u64, state: JobState) {
        let release = {
            let mut registry = lock_recover(&self.registry);
            let Some(job) = registry.jobs.get_mut(&id) else {
                return;
            };
            job.state = state;
            if job.state.is_terminal() && !job.released {
                job.released = true;
                job.tenant.clone()
            } else {
                return;
            }
        };
        self.admission.release(release.as_deref());
    }

    fn proxy_ok(&self, shard: usize, response: Value) -> Result<Value, SearchError> {
        if response.get("ok").and_then(Value::as_bool) == Some(true) {
            Ok(response)
        } else {
            let message = response
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("malformed shard response");
            Err(SearchError::Cluster {
                message: format!("shard {}: {message}", self.addr_of(shard)),
            })
        }
    }

    fn status(&self, id: u64) -> Result<Value, SearchError> {
        let (shard, shard_job, overlay_len, migrations, local) = self.route_of(id)?;
        if local {
            return Ok(self.local_status(id));
        }
        let response =
            self.shard_request(shard, &json!({ "cmd": "status", "job": (shard_job) }))?;
        let response = self.proxy_ok(shard, response)?;
        let mut status = response.get("status").cloned().unwrap_or(Value::Null);
        if let Some(state) = status
            .get("state")
            .and_then(|v| serde_json::from_value::<JobState>(v).ok())
        {
            self.note_state(id, state);
        }
        set_field(&mut status, "id", json!(id));
        set_field(&mut status, "shard", json!(self.addr_of(shard)));
        set_field(&mut status, "migrations", json!(migrations));
        if overlay_len > 0 {
            let recorded = status
                .get("events_recorded")
                .and_then(Value::as_u64)
                .unwrap_or(0);
            set_field(
                &mut status,
                "events_recorded",
                json!(recorded + overlay_len as u64),
            );
        }
        Ok(status)
    }

    fn local_status(&self, id: u64) -> Value {
        let registry = lock_recover(&self.registry);
        let Some(job) = registry.jobs.get(&id) else {
            return Value::Null;
        };
        json!({
            "id": (id),
            "name": (job.spec.name.clone()),
            "priority": (job.spec.priority),
            "state": (job.state.clone()),
            "retries": 0,
            "events_recorded": (job.overlay.len()),
            "progress": null,
            "cache_hit": false,
            "coalesced": false,
            "shard": "coordinator",
            "recovered": true,
            "migrations": (job.migrations),
        })
    }

    fn events(&self, id: u64, since: usize) -> Result<(Vec<Value>, usize), SearchError> {
        let (shard, shard_job, _, _, local) = self.route_of(id)?;
        let overlay = self.overlay_values(id);
        let mut shown: Vec<Value> = overlay.get(since..).unwrap_or(&[]).to_vec();
        if local {
            let next = overlay.len();
            return Ok((shown, next));
        }
        let shard_since = since.saturating_sub(overlay.len());
        let response = self.shard_request(
            shard,
            &json!({ "cmd": "events", "job": (shard_job), "since": (shard_since) }),
        )?;
        let response = self.proxy_ok(shard, response)?;
        let shard_events = response
            .get("events")
            .and_then(Value::as_array)
            .cloned()
            .unwrap_or_default();
        let shard_next = response.get("next").and_then(Value::as_u64).unwrap_or(0) as usize;
        shown.extend(shard_events);
        Ok((shown, overlay.len() + shard_next))
    }

    fn result(&self, id: u64) -> Result<Value, SearchError> {
        let (shard, shard_job, _, _, local) = self.route_of(id)?;
        if local {
            return Ok(self.local_result_envelope(id));
        }
        let response =
            self.shard_request(shard, &json!({ "cmd": "result", "job": (shard_job) }))?;
        let mut envelope = self.proxy_ok(shard, response)?;
        if let Some(state) = envelope
            .get("state")
            .and_then(|v| serde_json::from_value::<JobState>(v).ok())
        {
            self.note_state(id, state);
        }
        let (_, _, _, migrations, _) = self.route_of(id)?;
        set_field(&mut envelope, "job", json!(id));
        set_field(&mut envelope, "shard", json!(self.addr_of(shard)));
        set_field(&mut envelope, "migrations", json!(migrations));
        if migrations > 0 {
            if let Some(report) = get_field_mut(&mut envelope, "report") {
                set_field(report, "migrated", Value::Bool(true));
            }
        }
        Ok(envelope)
    }

    fn local_result_envelope(&self, id: u64) -> Value {
        let registry = lock_recover(&self.registry);
        let Some(job) = registry.jobs.get(&id) else {
            return Value::Null;
        };
        let state = serde_json::to_value(&job.state).unwrap_or(Value::Null);
        match &job.local {
            Some(Ok(outcome)) => {
                let mut report = SearchReport::from(outcome);
                report.migrated = job.migrations > 0;
                let report = serde_json::to_value(&report).unwrap_or(Value::Null);
                json!({
                    "ok": true,
                    "job": (id),
                    "state": state,
                    "done": true,
                    "cache_hit": false,
                    "coalesced": false,
                    "recovered": true,
                    "shard": "coordinator",
                    "migrations": (job.migrations),
                    "report": report,
                })
            }
            Some(Err(e)) => json!({
                "ok": true,
                "job": (id),
                "state": state,
                "done": true,
                "recovered": true,
                "shard": "coordinator",
                "migrations": (job.migrations),
                "error": (e.to_string()),
            }),
            None => Value::Null,
        }
    }

    fn cancel(&self, id: u64) -> Result<bool, SearchError> {
        let (shard, shard_job, _, _, local) = self.route_of(id)?;
        if local {
            return Ok(false); // Locally-held results are already terminal.
        }
        let response =
            self.shard_request(shard, &json!({ "cmd": "cancel", "job": (shard_job) }))?;
        let response = self.proxy_ok(shard, response)?;
        Ok(response
            .get("cancelled")
            .and_then(Value::as_bool)
            .unwrap_or(false))
    }

    fn forget(&self, id: u64) -> Result<bool, SearchError> {
        let (shard, shard_job, _, _, local) = self.route_of(id)?;
        if local {
            let removed = lock_recover(&self.registry).jobs.remove(&id).is_some();
            return Ok(removed);
        }
        let response =
            self.shard_request(shard, &json!({ "cmd": "forget", "job": (shard_job) }))?;
        let response = self.proxy_ok(shard, response)?;
        let forgotten = response
            .get("forgotten")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        if forgotten {
            let release = {
                let mut registry = lock_recover(&self.registry);
                registry.jobs.remove(&id).and_then(
                    |job| {
                        if job.released {
                            None
                        } else {
                            job.tenant
                        }
                    },
                )
            };
            self.admission.release(release.as_deref());
        }
        Ok(forgotten)
    }

    fn jobs(&self) -> Vec<Value> {
        let registry = lock_recover(&self.registry);
        registry
            .jobs
            .iter()
            .map(|(&id, job)| {
                let shard = if job.local.is_some() {
                    "coordinator".to_string()
                } else {
                    self.addr_of(job.shard).to_string()
                };
                json!({
                    "id": (id),
                    "name": (job.spec.name.clone()),
                    "state": (job.state.clone()),
                    "shard": shard,
                    "shard_job": (job.shard_job),
                    "migrations": (job.migrations),
                    "tenant": (job.tenant.clone()),
                })
            })
            .collect()
    }

    fn stats(&self, refresh: bool) -> ClusterStats {
        if refresh {
            for idx in self.alive_shards() {
                if let Ok(response) = self.shard_request(idx, &json!({ "cmd": "stats" })) {
                    let stats = response.get("stats").cloned().unwrap_or(Value::Null);
                    self.absorb_shard_stats(idx, stats);
                }
            }
        }
        let mut snapshots = Vec::with_capacity(self.shards.len());
        let (mut queue_depth, mut hits, mut misses, mut coalesced) = (0u64, 0u64, 0u64, 0u64);
        for (idx, slot) in self.shards.iter().enumerate() {
            let meta = lock_recover(&slot.meta);
            if let Some(stats) = &meta.last_stats {
                queue_depth += stats
                    .get("queue_depth")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                if let Some(cache) = stats.get("cache") {
                    hits += cache.get("hits").and_then(Value::as_u64).unwrap_or(0);
                    misses += cache.get("misses").and_then(Value::as_u64).unwrap_or(0);
                    coalesced += cache.get("coalesced").and_then(Value::as_u64).unwrap_or(0);
                }
            }
            snapshots.push(ShardSnapshot {
                addr: self.addr_of(idx).to_string(),
                alive: meta.alive,
                shard_id: meta.shard_id.clone(),
                restarts: meta.restarts,
                consecutive_misses: meta.misses,
                stats: meta.last_stats.clone(),
            });
        }
        let (jobs_tracked, jobs_inflight) = {
            let registry = lock_recover(&self.registry);
            let inflight = registry
                .jobs
                .values()
                .filter(|job| !job.state.is_terminal())
                .count();
            (registry.jobs.len(), inflight)
        };
        ClusterStats {
            uptime_secs: self.started.elapsed().as_secs_f64(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            shards_total: self.shards.len(),
            shards_alive: snapshots.iter().filter(|s| s.alive).count(),
            jobs_tracked,
            jobs_inflight,
            migrations: self.migrations.load(Ordering::Relaxed),
            results_recovered: self.results_recovered.load(Ordering::Relaxed),
            queue_depth,
            cache_hits: hits,
            cache_misses: misses,
            cache_coalesced: coalesced,
            admission: self.admission.stats(),
            shards: snapshots,
        }
    }

    fn absorb_shard_stats(&self, idx: usize, stats: Value) {
        let mut meta = lock_recover(&self.shards[idx].meta);
        if let Some(uptime) = stats.get("uptime_secs").and_then(Value::as_f64) {
            if meta
                .last_uptime_secs
                .is_some_and(|previous| uptime < previous)
            {
                meta.restarts += 1;
            }
            meta.last_uptime_secs = Some(uptime);
        }
        if let Some(shard_id) = stats.get("shard_id").and_then(Value::as_str) {
            meta.shard_id = Some(shard_id.to_string());
        }
        meta.last_stats = Some(stats);
    }

    // -- health + migration ------------------------------------------------

    /// Ping shard `idx`; flips liveness and triggers migration when the
    /// miss threshold is crossed. Called from the heartbeat thread (and
    /// once per shard at start, before the thread exists).
    fn heartbeat_shard(&self, idx: usize) {
        match self.shard_request(idx, &json!({ "cmd": "stats" })) {
            Ok(response) => {
                let stats = response.get("stats").cloned().unwrap_or(Value::Null);
                self.absorb_shard_stats(idx, stats);
                let mut meta = lock_recover(&self.shards[idx].meta);
                meta.misses = 0;
                meta.alive = true;
            }
            Err(_) => {
                let declare_dead = {
                    let mut meta = lock_recover(&self.shards[idx].meta);
                    // `shard_request` already bumped the miss counter.
                    if meta.alive && meta.misses >= self.config.heartbeat_misses.max(1) {
                        meta.alive = false;
                        true
                    } else {
                        false
                    }
                };
                if declare_dead {
                    self.migrate_dead_shard(idx);
                }
            }
        }
    }

    /// Compare the shard's own job listing against the registry: update
    /// states (terminal transitions release quotas even if no client
    /// ever polls), and re-submit tracked jobs the shard no longer knows
    /// — a shard that restarted without a state dir comes back amnesiac.
    fn refresh_tracked_jobs(&self) {
        for idx in self.alive_shards() {
            let tracked: Vec<(u64, u64)> = {
                let registry = lock_recover(&self.registry);
                registry
                    .jobs
                    .iter()
                    .filter(|(_, job)| {
                        job.shard == idx && job.local.is_none() && !job.state.is_terminal()
                    })
                    .map(|(&id, job)| (id, job.shard_job))
                    .collect()
            };
            if tracked.is_empty() {
                continue;
            }
            let Ok(response) = self.shard_request(idx, &json!({ "cmd": "jobs" })) else {
                continue;
            };
            let Some(listing) = response.get("jobs").and_then(Value::as_array) else {
                continue;
            };
            let mut listed: BTreeMap<u64, JobState> = BTreeMap::new();
            for status in listing {
                let Some(job_id) = status.get("id").and_then(Value::as_u64) else {
                    continue;
                };
                if let Some(state) = status
                    .get("state")
                    .and_then(|v| serde_json::from_value::<JobState>(v).ok())
                {
                    listed.insert(job_id, state);
                }
            }
            let mut tickets = Vec::new();
            {
                let mut registry = lock_recover(&self.registry);
                let mut releases = Vec::new();
                for (id, shard_job) in tracked {
                    let Some(job) = registry.jobs.get_mut(&id) else {
                        continue;
                    };
                    if job.shard != idx || job.local.is_some() {
                        continue; // Migrated concurrently.
                    }
                    match listed.get(&shard_job) {
                        Some(state) => {
                            job.state = state.clone();
                            if job.state.is_terminal() && !job.released {
                                job.released = true;
                                releases.push(job.tenant.clone());
                            }
                        }
                        None => tickets.push(MigrationTicket {
                            id,
                            shard_job,
                            spec: job.spec.clone(),
                            key_hash: job.key_hash,
                            last_state: job.state.clone(),
                        }),
                    }
                }
                drop(registry);
                for tenant in releases {
                    self.admission.release(tenant.as_deref());
                }
            }
            if !tickets.is_empty() {
                self.migrate_tickets(idx, tickets, None);
            }
        }
    }

    fn migrate_dead_shard(&self, dead: usize) {
        let tickets: Vec<MigrationTicket> = {
            let registry = lock_recover(&self.registry);
            registry
                .jobs
                .iter()
                .filter(|(_, job)| job.shard == dead && job.local.is_none())
                .map(|(&id, job)| MigrationTicket {
                    id,
                    shard_job: job.shard_job,
                    spec: job.spec.clone(),
                    key_hash: job.key_hash,
                    last_state: job.state.clone(),
                })
                .collect()
        };
        if tickets.is_empty() {
            return;
        }
        // Post-mortem: replay the dead shard's journal read-only. The
        // journal is the shard's durable truth — terminal results are
        // adopted outright, and the latest checkpoints seed resumed
        // re-submissions.
        let replayed: Option<ReplayedState> = self.config.shards[dead]
            .state_dir
            .as_ref()
            .and_then(|dir| store::replay(&store::journal_path_in(dir)).ok());
        self.migrate_tickets(dead, tickets, replayed.as_ref());
    }

    fn migrate_tickets(
        &self,
        from: usize,
        tickets: Vec<MigrationTicket>,
        replayed: Option<&ReplayedState>,
    ) {
        let from_addr = self.addr_of(from).to_string();
        for ticket in tickets {
            if let Some(faults) = &self.faults {
                if let Err(e) = faults.trip(site::COORDINATOR_MIGRATE) {
                    self.settle_locally(ticket.id, Err(e));
                    continue;
                }
            }
            let recovered = replayed.and_then(|state| state.jobs.get(&ticket.shard_job));
            if let Some(job) = recovered {
                if let Some(result) = &job.result {
                    // The journal holds the job's terminal result: adopt
                    // it — nothing re-runs, nothing is lost.
                    self.adopt_result(ticket.id, job.state.clone(), result.clone());
                    continue;
                }
            }
            if ticket.last_state.is_terminal() {
                // The coordinator saw this job finish but the result died
                // with a journal-less shard. Re-running a cancelled or
                // failed job would change its meaning, so fail honestly.
                self.settle_locally(
                    ticket.id,
                    Err(SearchError::Cluster {
                        message: format!(
                            "shard {from_addr} died holding the terminal result of a \
                             journal-less job"
                        ),
                    }),
                );
                continue;
            }
            let checkpoint = recovered.and_then(|job| job.checkpoint.clone());
            self.resubmit(&from_addr, ticket, checkpoint);
        }
    }

    /// Re-submit one job to a surviving shard, resuming from
    /// `checkpoint` when one was journaled.
    fn resubmit(
        &self,
        from_addr: &str,
        ticket: MigrationTicket,
        checkpoint: Option<SearchCheckpoint>,
    ) {
        let spec_value = match serde_json::to_value(&ticket.spec) {
            Ok(v) => v,
            Err(e) => {
                self.settle_locally(
                    ticket.id,
                    Err(SearchError::Cluster {
                        message: format!("serialize spec for migration: {e}"),
                    }),
                );
                return;
            }
        };
        let mut request = json!({ "cmd": "submit_spec", "spec": spec_value });
        let resumed = checkpoint.is_some();
        if let Some(checkpoint) = &checkpoint {
            let rendered = serde_json::to_value(checkpoint).unwrap_or(Value::Null);
            set_field(&mut request, "checkpoint", rendered);
        }
        let poll = Duration::from_millis(self.admission.config().retry_poll_ms.max(1));
        let deadline =
            Instant::now() + Duration::from_millis(self.admission.config().max_wait_ms.max(1));
        loop {
            match self.try_place_once(ticket.key_hash, &request) {
                Ok((target, response)) => {
                    let Some(shard_job) = response.get("job").and_then(Value::as_u64) else {
                        self.settle_locally(
                            ticket.id,
                            Err(SearchError::Cluster {
                                message: format!(
                                    "shard {} accepted a migration without a job id",
                                    self.addr_of(target)
                                ),
                            }),
                        );
                        return;
                    };
                    let state: JobState = response
                        .get("state")
                        .and_then(|v| serde_json::from_value(v).ok())
                        .unwrap_or(JobState::Queued);
                    let to_addr = self.addr_of(target).to_string();
                    {
                        let mut registry = lock_recover(&self.registry);
                        if let Some(job) = registry.jobs.get_mut(&ticket.id) {
                            job.shard = target;
                            job.shard_job = shard_job;
                            job.state = state;
                            job.migrations += 1;
                            job.overlay.push(SearchEvent::Migrated {
                                from: from_addr.to_string(),
                                to: to_addr,
                                resumed,
                            });
                        }
                    }
                    self.migrations.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(PlaceError::Fatal(e)) => {
                    self.settle_locally(ticket.id, Err(e));
                    return;
                }
                Err(PlaceError::QueueFull) | Err(PlaceError::Unreachable(_))
                    if Instant::now() < deadline =>
                {
                    std::thread::sleep(poll);
                }
                Err(PlaceError::QueueFull) => {
                    self.settle_locally(
                        ticket.id,
                        Err(SearchError::Cluster {
                            message: "every surviving shard's queue stayed full during \
                                      migration"
                                .to_string(),
                        }),
                    );
                    return;
                }
                Err(PlaceError::Unreachable(e)) => {
                    self.settle_locally(ticket.id, Err(e));
                    return;
                }
            }
        }
    }

    /// Adopt a terminal result recovered from a dead shard's journal.
    fn adopt_result(&self, id: u64, state: JobState, result: Result<SearchOutcome, SearchError>) {
        let release = {
            let mut registry = lock_recover(&self.registry);
            let Some(job) = registry.jobs.get_mut(&id) else {
                return;
            };
            job.state = state;
            job.local = Some(result);
            if job.released {
                None
            } else {
                job.released = true;
                job.tenant.clone()
            }
        };
        self.admission.release(release.as_deref());
        self.results_recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// Terminate a job locally with an error (migration impossible).
    fn settle_locally(&self, id: u64, result: Result<SearchOutcome, SearchError>) {
        let release = {
            let mut registry = lock_recover(&self.registry);
            let Some(job) = registry.jobs.get_mut(&id) else {
                return;
            };
            job.state = JobState::Failed { panic: None };
            job.local = Some(result);
            if job.released {
                None
            } else {
                job.released = true;
                job.tenant.clone()
            }
        };
        self.admission.release(release.as_deref());
    }
}

fn heartbeat_loop(inner: Arc<CoordinatorInner>) {
    let period = Duration::from_millis(inner.config.heartbeat_ms.max(10));
    while !inner.shutdown.load(Ordering::SeqCst) {
        for idx in 0..inner.shards.len() {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            inner.heartbeat_shard(idx);
        }
        inner.refresh_tracked_jobs();
        // Sleep in slices so shutdown stays responsive under long periods.
        let mut remaining = period;
        while remaining > Duration::ZERO && !inner.shutdown.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// Set (or append) `key` in a JSON object value; no-op on non-objects.
fn set_field(value: &mut Value, key: &str, new: Value) {
    if let Value::Object(entries) = value {
        for (k, v) in entries.iter_mut() {
            if k == key {
                *v = new;
                return;
            }
        }
        entries.push((key.to_string(), new));
    }
}

/// Mutable lookup of `key` in a JSON object value.
fn get_field_mut<'a>(value: &'a mut Value, key: &str) -> Option<&'a mut Value> {
    if let Value::Object(entries) = value {
        entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_field_overwrites_and_appends() {
        let mut value = json!({ "a": 1 });
        set_field(&mut value, "a", json!(2u64));
        set_field(&mut value, "b", json!("x"));
        assert_eq!(value.get("a").and_then(Value::as_u64), Some(2));
        assert_eq!(value.get("b").and_then(Value::as_str), Some("x"));
        // Non-objects are left alone.
        let mut scalar = json!(7u64);
        set_field(&mut scalar, "a", json!(1u64));
        assert_eq!(scalar.as_u64(), Some(7));
    }

    #[test]
    fn coordinator_refuses_empty_and_unreachable_fleets() {
        let err = Coordinator::start(ClusterConfig::new(Vec::new())).unwrap_err();
        assert!(matches!(err, SearchError::InvalidConfig { .. }));

        let port = {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap().port()
        };
        let mut config = ClusterConfig::new(vec![ShardEndpoint::new(format!("127.0.0.1:{port}"))]);
        config.connect_timeout_ms = 100;
        config.request_timeout_ms = 100;
        let err = Coordinator::start(config).unwrap_err();
        assert!(matches!(err, SearchError::Cluster { .. }), "{err:?}");
    }
}
