//! Deterministic fault injection for chaos-testing the serve tier.
//!
//! Fault tolerance that is only exercised by real crashes is fault
//! tolerance that is never exercised. This module provides a small,
//! reproducible harness: a [`FaultPlan`] names **sites** (fixed string
//! labels compiled into the server, store, session, and pipeline layers)
//! and arms each with an action — panic, synthetic I/O error, or delay —
//! on a specific hit count. Because sites fire at deterministic points of
//! the (seeded, thread-count-independent) search loop, a plan like *"panic
//! at `pipeline.rung` on hit 3 of job 2"* reproduces the same crash every
//! run, which is what lets `tests/fault_recovery.rs` sweep kill points
//! exhaustively and assert bit-identical recovery.
//!
//! Injection is **armed only in debug builds** (`cfg(debug_assertions)`,
//! i.e. `cargo test`): in release builds [`FaultInjector::fire`] still
//! counts hits (so observability stays identical) but never returns an
//! action, making the harness a guaranteed no-op in production binaries.
//!
//! The injector is never global: it is an [`Arc`] explicitly threaded
//! through [`crate::server::ServerOptions`] into each job's
//! [`FaultContext`], so concurrent tests cannot contaminate each other.

use crate::error::SearchError;
use crate::sync::lock_recover;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// The named injection sites compiled into the serve tier.
///
/// Each constant marks one deterministic point in the job lifecycle; plans
/// refer to sites by these strings.
pub mod site {
    /// Entry of a worker's job execution, before the session starts.
    pub const WORKER_JOB: &str = "worker.job";
    /// The server's event-drain loop, once per observed
    /// [`crate::events::SearchEvent::RungCompleted`].
    pub const WORKER_RUNG: &str = "worker.rung";
    /// The search engine thread, at the start of each depth.
    pub const SESSION_ADVANCE: &str = "session.advance";
    /// The budgeted scheduler, at the top of each successive-halving rung.
    pub const PIPELINE_RUNG: &str = "pipeline.rung";
    /// The durable job store, before appending a journal record.
    pub const STORE_APPEND: &str = "store.append";
    /// The cluster coordinator's submit path, before routing to a shard.
    pub const COORDINATOR_SUBMIT: &str = "coordinator.submit";
    /// The cluster coordinator's migration loop, once per job being moved
    /// off a dead shard.
    pub const COORDINATOR_MIGRATE: &str = "coordinator.migrate";
}

/// What an armed site does when it fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Panic with the given message (exercises `catch_unwind` isolation).
    Panic {
        /// The panic payload.
        message: String,
    },
    /// Surface a synthetic transient I/O error
    /// ([`SearchError::Transient`]) — the retry/backoff trigger.
    IoError {
        /// The error description.
        message: String,
    },
    /// Sleep for the given duration (widens race windows for timeout and
    /// cancellation tests).
    Delay {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// One armed site: where, for whom, on which hit, and what happens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The site label (one of the [`site`] constants).
    pub site: String,
    /// Restrict to one job id (`None` fires for any job — and for sites
    /// that run outside a job context).
    pub job: Option<u64>,
    /// Fire on the k-th matching hit (1-based); `0` fires on every hit.
    pub hit: u64,
    /// The action taken when the spec fires.
    pub action: FaultAction,
}

/// A serializable set of armed faults — the chaos-test input format.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The armed faults; each keeps an independent hit counter.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no sites armed).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single armed fault.
    pub fn single(spec: FaultSpec) -> FaultPlan {
        FaultPlan { faults: vec![spec] }
    }

    /// Arm `site` to panic on its `hit`-th hit (any job).
    pub fn panic_at(site: &str, hit: u64, message: &str) -> FaultPlan {
        FaultPlan::single(FaultSpec {
            site: site.to_string(),
            job: None,
            hit,
            action: FaultAction::Panic {
                message: message.to_string(),
            },
        })
    }

    /// Arm `site` to raise a transient I/O error on its `hit`-th hit.
    pub fn io_error_at(site: &str, hit: u64, message: &str) -> FaultPlan {
        FaultPlan::single(FaultSpec {
            site: site.to_string(),
            job: None,
            hit,
            action: FaultAction::IoError {
                message: message.to_string(),
            },
        })
    }

    /// Arm another fault on top of an existing plan.
    pub fn and(mut self, spec: FaultSpec) -> FaultPlan {
        self.faults.push(spec);
        self
    }

    /// Restrict every armed fault in the plan to one job id.
    pub fn for_job(mut self, job: u64) -> FaultPlan {
        for f in &mut self.faults {
            f.job = Some(job);
        }
        self
    }
}

/// The runtime state of a [`FaultPlan`]: per-spec hit counters behind a
/// mutex, shared via [`Arc`] between the server, store, and every job's
/// engine thread.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Hit counters, one per `plan.faults` entry (counting matching hits).
    counters: Mutex<Vec<u64>>,
}

impl FaultInjector {
    /// Arm a plan. The returned injector is shared by reference.
    pub fn new(plan: FaultPlan) -> Arc<FaultInjector> {
        let counters = Mutex::new(vec![0; plan.faults.len()]);
        Arc::new(FaultInjector { plan, counters })
    }

    /// Record a hit at `site` (scoped to `job` when given) and return the
    /// action of the first spec that fires, if any.
    ///
    /// Counting always happens; in release builds
    /// (`cfg(not(debug_assertions))`) the returned action is forced to
    /// `None`, so armed plans are inert outside tests.
    pub fn fire(&self, site: &str, job: Option<u64>) -> Option<FaultAction> {
        let mut counters = lock_recover(&self.counters);
        let mut fired = None;
        for (spec, count) in self.plan.faults.iter().zip(counters.iter_mut()) {
            if spec.site != site {
                continue;
            }
            if let (Some(want), Some(have)) = (spec.job, job) {
                if want != have {
                    continue;
                }
            } else if spec.job.is_some() {
                // Job-scoped spec, but this hit has no job context.
                continue;
            }
            *count += 1;
            if fired.is_none() && (spec.hit == 0 || spec.hit == *count) {
                fired = Some(spec.action.clone());
            }
        }
        if cfg!(debug_assertions) {
            fired
        } else {
            None
        }
    }

    /// Total matching hits recorded at `site` across all specs watching it
    /// (test observability: did the sweep actually cover the site?).
    pub fn hits(&self, site: &str) -> u64 {
        let counters = lock_recover(&self.counters);
        self.plan
            .faults
            .iter()
            .zip(counters.iter())
            .filter(|(spec, _)| spec.site == site)
            .map(|(_, count)| *count)
            .sum()
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("faults", &self.plan.faults.len())
            .finish()
    }
}

/// A job-scoped view of an injector: what the server threads through the
/// session and pipeline layers so sites can fire without knowing job ids.
#[derive(Clone, Debug)]
pub struct FaultContext {
    injector: Arc<FaultInjector>,
    job: Option<u64>,
}

impl FaultContext {
    /// A context firing on behalf of `job` (or site-global when `None`).
    pub fn new(injector: Arc<FaultInjector>, job: Option<u64>) -> FaultContext {
        FaultContext { injector, job }
    }

    /// Fire `site` under this context's job scope.
    pub fn fire(&self, site: &str) -> Option<FaultAction> {
        self.injector.fire(site, self.job)
    }

    /// Fire `site` and **apply** the action in place: panics panic, delays
    /// sleep, and I/O errors come back as `Err(SearchError::Transient)`.
    pub fn trip(&self, site: &str) -> Result<(), SearchError> {
        match self.fire(site) {
            None => Ok(()),
            Some(FaultAction::Panic { message }) => {
                panic!("injected fault at {site}: {message}")
            }
            Some(FaultAction::Delay { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                Ok(())
            }
            Some(FaultAction::IoError { message }) => Err(SearchError::Transient {
                message: format!("injected fault at {site}: {message}"),
            }),
        }
    }
}

/// [`FaultContext::trip`] lifted over the optional contexts the engine and
/// scheduler carry (`None` — the common case — is free).
pub(crate) fn trip(faults: Option<&FaultContext>, site: &str) -> Result<(), SearchError> {
    match faults {
        Some(ctx) => ctx.trip(site),
        None => Ok(()),
    }
}

/// Best-effort extraction of a panic payload into a message (panics carry
/// `&str` or `String` payloads in practice).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::panic_at(site::PIPELINE_RUNG, 3, "boom").and(FaultSpec {
            site: site::STORE_APPEND.to_string(),
            job: Some(7),
            hit: 0,
            action: FaultAction::IoError {
                message: "disk full".to_string(),
            },
        });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn fires_on_the_exact_hit_only() {
        let injector = FaultInjector::new(FaultPlan::io_error_at("s", 2, "x"));
        assert!(injector.fire("s", None).is_none());
        assert!(matches!(
            injector.fire("s", None),
            Some(FaultAction::IoError { .. })
        ));
        assert!(injector.fire("s", None).is_none());
        assert_eq!(injector.hits("s"), 3);
        assert_eq!(injector.hits("other"), 0);
    }

    #[test]
    fn hit_zero_fires_every_time() {
        let injector = FaultInjector::new(FaultPlan::io_error_at("s", 0, "x"));
        for _ in 0..3 {
            assert!(injector.fire("s", None).is_some());
        }
    }

    #[test]
    fn job_scoping_filters_hits() {
        let plan = FaultPlan::io_error_at("s", 1, "x").for_job(2);
        let injector = FaultInjector::new(plan);
        // Wrong job and no-job hits neither count nor fire.
        assert!(injector.fire("s", Some(1)).is_none());
        assert!(injector.fire("s", None).is_none());
        assert_eq!(injector.hits("s"), 0);
        assert!(injector.fire("s", Some(2)).is_some());
    }

    #[test]
    fn trip_maps_io_error_to_transient() {
        let injector = FaultInjector::new(FaultPlan::io_error_at("s", 1, "flaky"));
        let ctx = FaultContext::new(injector, None);
        let err = ctx.trip("s").unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(ctx.trip("s").is_ok());
    }

    #[test]
    #[should_panic(expected = "injected fault at s: boom")]
    fn trip_applies_panics() {
        let injector = FaultInjector::new(FaultPlan::panic_at("s", 1, "boom"));
        FaultContext::new(injector, None).trip("s").unwrap();
    }
}
